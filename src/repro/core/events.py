"""Observer hooks for the optimization pipeline.

An observer subscribes to the event stream of an
:class:`~repro.core.session.OptimizationSession` (and the
:class:`~repro.egraph.runner.Runner` it drives).  Stats collection,
per-phase timing, progress display, and benchmark instrumentation are all
subscribers of this stream instead of fields hand-carried through the
pipeline.

Events, in emission order for one run:

* ``on_iteration_start(iteration, egraph)`` -- before an exploration
  iteration searches the (frozen) e-graph.
* ``on_match_batch(iteration, rule, n_matches, admitted)`` -- once per
  searched rule per iteration, with the rule's match count and whether the
  scheduler admitted the matches into the apply plan.  Scheduler-banned
  rules are never searched, so they emit nothing.
* ``on_iteration_end(iteration, report)`` -- after the iteration's rebuild,
  with the fully populated :class:`~repro.egraph.runner.IterationReport`.
* ``on_extraction(result)`` -- when extraction completes, with the
  :class:`~repro.egraph.extraction.base.ExtractionResult` (carrying the
  per-stage timing/cost breakdown and problem-reduction stats).
* ``on_phase(phase, seconds)`` -- when a pipeline phase completes:
  ``"exploration"`` (once saturation stops), ``"extraction"``, and
  ``"materialization"``.

Observers are notified synchronously on the optimizer's thread and must not
mutate the e-graph: the golden-trajectory tests pin that attaching observers
never changes results.  Events are dispatched by duck typing (only the hooks
an object defines are called), but subclassing :class:`OptimizationObserver`
is the supported way to stay compatible with future events.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["OptimizationObserver", "PhaseTimingObserver", "RecordingObserver", "dispatch_event"]


def dispatch_event(observers: Iterable[object], event: str, *args) -> None:
    """Fan one event out to every observer that defines the hook.

    Dispatch is duck-typed -- only the hooks an object defines are called --
    and synchronous; both the session and the runner route their emissions
    through this one function.
    """
    for observer in observers:
        hook = getattr(observer, event, None)
        if hook is not None:
            hook(*args)


class OptimizationObserver:
    """Base observer: every hook is a no-op.  Subclass and override."""

    def on_phase(self, phase: str, seconds: float) -> None:
        """A pipeline phase (exploration / extraction / materialization) completed."""

    def on_iteration_start(self, iteration: int, egraph) -> None:
        """An exploration iteration is about to search the frozen e-graph."""

    def on_iteration_end(self, iteration: int, report) -> None:
        """An exploration iteration finished; ``report`` is its IterationReport."""

    def on_match_batch(self, iteration: int, rule: str, n_matches: int, admitted: bool) -> None:
        """One rule's matches were searched (and scheduled) this iteration."""

    def on_extraction(self, result) -> None:
        """Extraction completed; ``result`` is its ExtractionResult."""


class RecordingObserver(OptimizationObserver):
    """Records every event as a tuple, in order.  For tests and debugging.

    ``events`` holds ``("phase", name, seconds)``,
    ``("iteration_start", iteration)``,
    ``("iteration_end", iteration, report)``,
    ``("match_batch", iteration, rule, n_matches, admitted)``, and
    ``("extraction", result)`` entries.
    """

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def on_phase(self, phase: str, seconds: float) -> None:
        self.events.append(("phase", phase, seconds))

    def on_iteration_start(self, iteration: int, egraph) -> None:
        self.events.append(("iteration_start", iteration))

    def on_iteration_end(self, iteration: int, report) -> None:
        self.events.append(("iteration_end", iteration, report))

    def on_match_batch(self, iteration: int, rule: str, n_matches: int, admitted: bool) -> None:
        self.events.append(("match_batch", iteration, rule, n_matches, admitted))

    def on_extraction(self, result) -> None:
        self.events.append(("extraction", result))

    def of_kind(self, kind: str) -> List[Tuple]:
        """The recorded events of one kind, in order."""
        return [e for e in self.events if e[0] == kind]


class PhaseTimingObserver(OptimizationObserver):
    """Accumulates the timing breakdown benchmarks report.

    ``phase_seconds`` maps each completed pipeline phase to its duration;
    the ``search_seconds`` / ``apply_seconds`` / ``rebuild_seconds`` /
    ``multi_join_seconds`` / ``condition_seconds`` attributes break
    exploration down by pipeline stage, summed over iterations
    (``per_iteration`` keeps the unsummed per-iteration values for
    profiles); ``condition_cache_hits`` / ``condition_cache_misses``
    aggregate the condition-check cache traffic.  When search is sharded
    (``search_jobs > 1``), ``search_shard_seconds`` sums each worker's busy
    time and :attr:`parallel_search_utilisation` reports how evenly that
    work spread across the pool.  ``extraction_stage_seconds`` breaks the
    extraction phase into its pipeline stages (prune / greedy / bnb / ilp)
    and ``extraction_prune_ratio`` records the problem-reduction shrink.
    """

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {}
        self.iterations = 0
        self.search_seconds = 0.0
        self.apply_seconds = 0.0
        self.rebuild_seconds = 0.0
        self.multi_join_seconds = 0.0
        self.condition_seconds = 0.0
        self.condition_cache_hits = 0
        self.condition_cache_misses = 0
        #: Busy seconds per shard index, summed over iterations (empty when
        #: search ran unsharded).
        self.search_shard_seconds: Dict[int, float] = {}
        self.per_iteration: List[Dict[str, float]] = []
        #: Extraction stage -> seconds, summed over extractions (empty until
        #: an extraction completes).
        self.extraction_stage_seconds: Dict[str, float] = {}
        #: Variable-space shrink of the extraction problem-reduction pass.
        self.extraction_prune_ratio = 1.0

    def on_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def on_iteration_end(self, iteration: int, report) -> None:
        self.iterations += 1
        self.search_seconds += report.search_seconds
        self.apply_seconds += report.apply_seconds
        self.rebuild_seconds += report.rebuild_seconds
        self.multi_join_seconds += report.multi_join_seconds
        self.condition_seconds += report.condition_seconds
        self.condition_cache_hits += report.condition_cache_hits
        self.condition_cache_misses += report.condition_cache_misses
        for shard in getattr(report, "search_shards", ()):
            idx = shard["shard"]
            self.search_shard_seconds[idx] = (
                self.search_shard_seconds.get(idx, 0.0) + shard["seconds"]
            )
        self.per_iteration.append(
            {
                "search_seconds": report.search_seconds,
                "apply_seconds": report.apply_seconds,
                "rebuild_seconds": report.rebuild_seconds,
                "multi_join_seconds": report.multi_join_seconds,
                "condition_seconds": report.condition_seconds,
            }
        )

    def on_extraction(self, result) -> None:
        for name, secs in result.stages.items():
            self.extraction_stage_seconds[name] = (
                self.extraction_stage_seconds.get(name, 0.0) + secs
            )
        if result.reduction is not None:
            before = result.reduction.get("nodes_before", 0)
            after = result.reduction.get("nodes_after", 0)
            if after > 0:
                self.extraction_prune_ratio = before / after

    @property
    def total_seconds(self) -> float:
        """Sum of all completed phases."""
        return sum(self.phase_seconds.values())

    @property
    def parallel_search_utilisation(self) -> float:
        """How busy the search pool was, in [0, 1]; 0.0 when never sharded.

        Sum of per-shard busy seconds divided by (number of shards x the
        search phase's wall time): 1.0 means every worker swept for the whole
        phase (perfect balance), 1/N means one shard carried everything.
        """
        if not self.search_shard_seconds or self.search_seconds <= 0.0:
            return 0.0
        n_shards = len(self.search_shard_seconds)
        busy = sum(self.search_shard_seconds.values())
        return min(1.0, busy / (n_shards * self.search_seconds))
