"""The TENSAT optimizer: equality-saturation exploration followed by extraction.

This is the paper's primary contribution assembled end-to-end:

1. the input :class:`~repro.ir.graph.TensorGraph` is loaded into an e-graph
   carrying the tensor analysis (shape / split-location metadata),
2. the exploration phase applies all rewrite rules simultaneously, with
   multi-pattern rules limited to the first ``k_multi`` iterations and cycle
   filtering keeping the e-graph extractable (Sections 4 and 5.2),
3. the extraction phase selects the cheapest equivalent graph with either the
   greedy algorithm or the ILP (Section 5.1),
4. the selected term is converted back to a :class:`TensorGraph`, validated,
   and returned together with detailed statistics.

The phases live on :class:`~repro.core.session.OptimizationSession`;
:class:`TensatOptimizer` is the configured front door whose
:meth:`~TensatOptimizer.optimize` is a thin composition of the session's
steps.  The old tuple-returning ``explore()`` / ``extract()`` helpers remain
as deprecated shims.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.core.config import TensatConfig
from repro.core.registry import EXTRACTORS
from repro.core.session import OptimizationResult, OptimizationSession
from repro.costs.model import AnalyticCostModel, CostModel
from repro.egraph.extraction.base import ExtractionResult
from repro.ir.graph import TensorGraph
from repro.rules.library import RuleSet, default_ruleset

__all__ = ["OptimizationResult", "TensatOptimizer", "optimize"]


class TensatOptimizer:
    """Tensor graph superoptimizer based on equality saturation.

    Parameters
    ----------
    cost_model:
        Per-operator cost model (defaults to the analytic T4-like model).
    rules:
        Rewrite rules (defaults to the full library).
    config:
        Pipeline configuration (defaults to the paper's settings).
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        rules: Optional[RuleSet] = None,
        config: Optional[TensatConfig] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else AnalyticCostModel()
        self.rules = rules if rules is not None else default_ruleset()
        self.config = config if config is not None else TensatConfig()

    # ------------------------------------------------------------------ #

    def session(self, graph: TensorGraph, observers: Sequence[object] = ()) -> OptimizationSession:
        """Start an :class:`OptimizationSession` for ``graph`` (nothing runs yet)."""
        return OptimizationSession(
            graph,
            cost_model=self.cost_model,
            rules=self.rules,
            config=self.config,
            observers=observers,
        )

    def optimize(self, graph: TensorGraph, observers: Sequence[object] = ()) -> OptimizationResult:
        """Optimize ``graph`` end-to-end (the one-shot session composition)."""
        return self.session(graph, observers=observers).result()

    # -- deprecated tuple-returning shims ------------------------------- #

    def explore(self, graph: TensorGraph):
        """Deprecated: use ``optimizer.session(graph).explore()``.

        Returns the legacy ``(egraph, root, cycle_filter, report)`` tuple;
        the session object carries the same state as attributes.
        """
        warnings.warn(
            "TensatOptimizer.explore() is deprecated; use "
            "TensatOptimizer.session(graph) and its explore()/step() methods",
            DeprecationWarning,
            stacklevel=2,
        )
        session = self.session(graph)
        report = session.explore()
        return session.egraph, session.root, session.cycle_filter, report

    def extract(self, egraph, root, cycle_filter) -> ExtractionResult:
        """Deprecated: use ``session.extract()`` on an :class:`OptimizationSession`."""
        warnings.warn(
            "TensatOptimizer.extract() is deprecated; use "
            "OptimizationSession.extract() (or the EXTRACTORS registry directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        extractor = EXTRACTORS.create(
            self.config.extraction,
            node_cost=self.cost_model.extraction_cost_function(),
            config=self.config,
            filter_list=cycle_filter.filter_list,
        )
        return extractor.extract(egraph, root)


def optimize(
    graph: TensorGraph,
    cost_model: Optional[CostModel] = None,
    rules: Optional[RuleSet] = None,
    config: Optional[TensatConfig] = None,
    observers: Sequence[object] = (),
    **config_overrides,
) -> OptimizationResult:
    """One-call convenience wrapper around :class:`TensatOptimizer`.

    Keyword arguments are applied as overrides on top of ``config`` (or the
    default configuration), e.g. ``optimize(graph, k_multi=2, extraction="greedy")``.
    """
    base = config if config is not None else TensatConfig()
    if config_overrides:
        base = base.with_overrides(**config_overrides)
    return TensatOptimizer(cost_model=cost_model, rules=rules, config=base).optimize(
        graph, observers=observers
    )
