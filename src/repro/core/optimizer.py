"""The TENSAT optimizer: equality-saturation exploration followed by extraction.

This is the paper's primary contribution assembled end-to-end:

1. the input :class:`~repro.ir.graph.TensorGraph` is loaded into an e-graph
   carrying the tensor analysis (shape / split-location metadata),
2. the exploration phase applies all rewrite rules simultaneously, with
   multi-pattern rules limited to the first ``k_multi`` iterations and cycle
   filtering keeping the e-graph extractable (Sections 4 and 5.2),
3. the extraction phase selects the cheapest equivalent graph with either the
   greedy algorithm or the ILP (Section 5.1),
4. the selected term is converted back to a :class:`TensorGraph`, validated,
   and returned together with detailed statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.backend.executor import execute_graph, outputs_allclose
from repro.core.config import TensatConfig
from repro.core.stats import OptimizationStats
from repro.costs.model import AnalyticCostModel, CostModel
from repro.egraph.extraction.base import ExtractionResult
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.runner import Runner, RunnerLimits, RunnerReport, make_cycle_filter
from repro.ir.convert import egraph_from_graph, recexpr_to_graph
from repro.ir.graph import TensorGraph
from repro.ir.validate import check_same_interface, validate_graph
from repro.rules.library import RuleSet, default_ruleset

__all__ = ["OptimizationResult", "TensatOptimizer", "optimize"]


@dataclass
class OptimizationResult:
    """Everything produced by one optimization run."""

    original: TensorGraph
    optimized: TensorGraph
    stats: OptimizationStats
    runner_report: Optional[RunnerReport] = None
    extraction: Optional[ExtractionResult] = None

    @property
    def speedup_percent(self) -> float:
        return self.stats.speedup_percent

    @property
    def original_cost(self) -> float:
        return self.stats.original_cost

    @property
    def optimized_cost(self) -> float:
        return self.stats.optimized_cost

    def summary(self) -> str:
        s = self.stats
        return (
            f"{self.original.name}: cost {s.original_cost:.4f} ms -> {s.optimized_cost:.4f} ms "
            f"({s.speedup_percent:+.1f}%), exploration {s.exploration_seconds:.2f}s "
            f"({s.num_enodes} e-nodes, stop: {s.stop_reason}), "
            f"extraction {s.extraction_seconds:.2f}s ({s.extraction_status})"
        )


class TensatOptimizer:
    """Tensor graph superoptimizer based on equality saturation.

    Parameters
    ----------
    cost_model:
        Per-operator cost model (defaults to the analytic T4-like model).
    rules:
        Rewrite rules (defaults to the full library).
    config:
        Pipeline configuration (defaults to the paper's settings).
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        rules: Optional[RuleSet] = None,
        config: Optional[TensatConfig] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else AnalyticCostModel()
        self.rules = rules if rules is not None else default_ruleset()
        self.config = config if config is not None else TensatConfig()

    # ------------------------------------------------------------------ #

    def explore(self, graph: TensorGraph):
        """Run only the exploration phase; returns ``(egraph, root, cycle_filter, report)``."""
        config = self.config
        egraph, root = egraph_from_graph(graph)
        cycle_filter = make_cycle_filter(config.cycle_filter)
        limits = RunnerLimits(
            node_limit=config.node_limit,
            iter_limit=config.iter_limit,
            time_limit=config.exploration_time_limit,
            k_multi=config.k_multi,
            max_multi_combinations=config.max_multi_combinations,
            scheduler=config.scheduler,
            match_limit=config.scheduler_match_limit,
            ban_length=config.scheduler_ban_length,
            matcher=config.matcher,
            search_mode=config.search_mode,
            use_delta=config.delta_matching,
            multipattern_join=config.multipattern_join,
        )
        runner = Runner(
            egraph,
            rewrites=self.rules.rewrites,
            multi_rewrites=self.rules.multi_rewrites,
            limits=limits,
            cycle_filter=cycle_filter,
        )
        report = runner.run()
        return egraph, root, cycle_filter, report

    def extract(self, egraph, root, cycle_filter) -> ExtractionResult:
        """Run only the extraction phase on an explored e-graph."""
        config = self.config
        node_cost = self.cost_model.extraction_cost_function()
        if config.extraction == "greedy":
            extractor = GreedyExtractor(node_cost, filter_list=cycle_filter.filter_list)
        else:
            extractor = ILPExtractor(
                node_cost,
                with_cycle_constraints=config.ilp_cycle_constraints,
                integer_topo=config.ilp_integer_topo,
                filter_list=cycle_filter.filter_list,
                time_limit=config.ilp_time_limit,
                backend=config.ilp_backend,
                fallback_to_greedy=config.ilp_fallback_to_greedy,
                mip_rel_gap=config.ilp_mip_gap,
            )
        return extractor.extract(egraph, root)

    def _materialize(self, graph, egraph, root, cycle_filter, extraction):
        """Turn the extracted term into a concrete graph, falling back when needed.

        The tensor analysis attaches split locations (the cut position of the
        most recent concat) to e-classes, but an e-class can end up holding
        concats with *different* cut positions; an extraction that pairs a
        ``split`` with the "other" concat then fails shape inference when the
        concrete graph is rebuilt.  This is rare (it needs several interacting
        merge rewrites, typically at k_multi >= 2) and the safe response is the
        one TASO-style systems take: reject the candidate and fall back, first
        to greedy extraction and ultimately to the original graph.
        """
        from repro.ir.tensor import ShapeError

        try:
            return recexpr_to_graph(extraction.expr, name=f"{graph.name}-optimized"), extraction
        except (ShapeError, ValueError):
            pass
        try:
            node_cost = self.cost_model.extraction_cost_function()
            greedy = GreedyExtractor(node_cost, filter_list=cycle_filter.filter_list).extract(egraph, root)
            optimized = recexpr_to_graph(greedy.expr, name=f"{graph.name}-optimized")
            greedy.status = f"{extraction.status}_rejected_greedy_fallback"
            return optimized, greedy
        except (ShapeError, ValueError):
            extraction.status = f"{extraction.status}_rejected_original_kept"
            return graph, extraction

    def optimize(self, graph: TensorGraph) -> OptimizationResult:
        """Optimize ``graph`` end-to-end."""
        config = self.config
        t_start = time.perf_counter()
        original_cost = self.cost_model.graph_cost(graph)

        egraph, root, cycle_filter, report = self.explore(graph)

        t_extract = time.perf_counter()
        extraction = self.extract(egraph, root, cycle_filter)
        extraction_seconds = time.perf_counter() - t_extract

        optimized, extraction = self._materialize(graph, egraph, root, cycle_filter, extraction)
        optimized_cost = self.cost_model.graph_cost(optimized)

        # The e-graph always represents the original term, so extraction can
        # never do worse than the input graph; guard against cost-model /
        # bookkeeping regressions anyway.
        if optimized_cost > original_cost + 1e-9:
            optimized = graph
            optimized_cost = original_cost

        if config.validate_output:
            validate_graph(optimized)
            check_same_interface(graph, optimized)
        if config.verify_numerically:
            if not outputs_allclose(execute_graph(graph), execute_graph(optimized), rtol=1e-4, atol=1e-5):
                raise RuntimeError(
                    f"optimized graph for {graph.name!r} is not numerically equivalent to the original"
                )

        stats = OptimizationStats.from_runner_report(report)
        stats.extraction_seconds = extraction_seconds
        stats.total_seconds = time.perf_counter() - t_start
        stats.original_cost = original_cost
        stats.optimized_cost = optimized_cost
        stats.extraction_status = extraction.status

        return OptimizationResult(
            original=graph,
            optimized=optimized,
            stats=stats,
            runner_report=report,
            extraction=extraction,
        )


def optimize(
    graph: TensorGraph,
    cost_model: Optional[CostModel] = None,
    rules: Optional[RuleSet] = None,
    config: Optional[TensatConfig] = None,
    **config_overrides,
) -> OptimizationResult:
    """One-call convenience wrapper around :class:`TensatOptimizer`.

    Keyword arguments are applied as overrides on top of ``config`` (or the
    default configuration), e.g. ``optimize(graph, k_multi=2, extraction="greedy")``.
    """
    base = config if config is not None else TensatConfig()
    if config_overrides:
        base = base.with_overrides(**config_overrides)
    return TensatOptimizer(cost_model=cost_model, rules=rules, config=base).optimize(graph)
