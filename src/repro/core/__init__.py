"""The TENSAT optimizer: equality-saturation exploration + extraction."""

from repro.core.config import TensatConfig
from repro.core.optimizer import OptimizationResult, TensatOptimizer, optimize
from repro.core.stats import OptimizationStats

__all__ = ["TensatConfig", "TensatOptimizer", "OptimizationResult", "OptimizationStats", "optimize"]
