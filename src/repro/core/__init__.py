"""The TENSAT optimizer: equality-saturation exploration + extraction.

The driver layer: :class:`OptimizationSession` (steppable phases),
:class:`TensatOptimizer` / :func:`optimize` (one-shot composition),
:func:`optimize_many` / :func:`compare` (batch front door), the component
registries (:mod:`repro.core.registry`), and the observer hooks
(:mod:`repro.core.events`).
"""

from repro.core.batch import ComparisonResult, compare, compile_shared_trie, optimize_many
from repro.core.config import ConfigError, TensatConfig
from repro.core.events import OptimizationObserver, PhaseTimingObserver, RecordingObserver
from repro.core.optimizer import OptimizationResult, TensatOptimizer, optimize
from repro.core.registry import (
    CYCLE_FILTERS,
    EXTRACTORS,
    ILP_BACKENDS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    Registry,
    SCHEDULERS,
    SEARCH_EXECUTORS,
    SEARCH_MODES,
)
from repro.core.session import OptimizationSession, materialize_extraction
from repro.core.stats import OptimizationStats

__all__ = [
    "ComparisonResult",
    "ConfigError",
    "CYCLE_FILTERS",
    "EXTRACTORS",
    "ILP_BACKENDS",
    "MATCHERS",
    "MULTIPATTERN_JOINS",
    "OptimizationObserver",
    "OptimizationResult",
    "OptimizationSession",
    "OptimizationStats",
    "PhaseTimingObserver",
    "RecordingObserver",
    "Registry",
    "SCHEDULERS",
    "SEARCH_EXECUTORS",
    "SEARCH_MODES",
    "TensatConfig",
    "TensatOptimizer",
    "compare",
    "compile_shared_trie",
    "materialize_extraction",
    "optimize",
    "optimize_many",
]
