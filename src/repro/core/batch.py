"""Batch front door: many graphs, one compiled search state, plus compare().

``optimize_many`` amortises the per-run setup the paper's single-graph flow
repeats: the rule trie (every rule's compiled program merged into one
shared-prefix trie per root operator) is compiled **once** and reused by
every run.  Compilation depends only on the rule set, never on the e-graph,
and the trie matcher's per-e-graph cache resets itself on a new e-graph, so
batched results are bit-for-bit identical to sequential ``optimize`` calls
(pinned by ``tests/test_session.py``).

``compare`` is the one implementation of the "TENSAT vs. TASO-style
backtracking" evaluation that both the CLI's ``compare`` subcommand and the
benchmark harness (``benchmarks/common.py``) call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import TensatConfig
from repro.core.session import OptimizationResult, OptimizationSession
from repro.costs.model import AnalyticCostModel, CostModel
from repro.egraph.machine import TrieMatcher
from repro.egraph.multipattern import MultiPatternSearcher
from repro.egraph.parallel import ConfigError, ensure_picklable
from repro.egraph.runner import collect_trie_patterns
from repro.ir.graph import TensorGraph
from repro.rules.library import RuleSet, default_ruleset
from repro.search.backtracking import BacktrackingResult, BacktrackingSearch

__all__ = ["ComparisonResult", "compare", "compile_shared_trie", "optimize_many"]


def compile_shared_trie(rules: RuleSet, config: TensatConfig) -> Optional[TrieMatcher]:
    """Compile the rule trie one run under ``config`` would build, or None.

    Returns ``None`` when ``config`` does not use trie search (the other
    search paths keep per-run state that is cheap to build).  The result can
    be passed to any number of :class:`OptimizationSession` s over the same
    rules, as long as the sessions run one after another -- interleaving
    steps of two sessions stays *correct* (the cache self-invalidates per
    e-graph) but forfeits the delta-search speedup.
    """
    if config.matcher != "vm" or config.search_mode != "trie":
        return None
    searcher = MultiPatternSearcher(rules.multi_rewrites) if rules.multi_rewrites else None
    patterns, _keys = collect_trie_patterns(rules.rewrites, searcher)
    return TrieMatcher(patterns) if patterns else None


class _SynchronizedObserver:
    """Serialise event delivery when sessions run on concurrent threads.

    Observers are written for the single-threaded event stream; one shared
    lock around every dispatch preserves that contract (events from parallel
    runs interleave between calls, never inside one).
    """

    def __init__(self, observers: Sequence[object]) -> None:
        import threading

        self._observers = tuple(observers)
        self._lock = threading.Lock()

    def __getattr__(self, event: str):
        if event.startswith("_"):
            raise AttributeError(event)

        def relay(*args):
            from repro.core.events import dispatch_event

            with self._lock:
                dispatch_event(self._observers, event, *args)

        return relay


def _optimize_one(graph, cost_model, rules, config, observers, shared_trie):
    """One whole session; module-level so the process fan-out can pickle it."""
    return OptimizationSession(
        graph,
        cost_model=cost_model,
        rules=rules,
        config=config,
        observers=observers,
        shared_trie=shared_trie,
    ).result()


def optimize_many(
    graphs: Iterable[TensorGraph],
    cost_model: Optional[CostModel] = None,
    rules: Optional[RuleSet] = None,
    config: Optional[TensatConfig] = None,
    observers: Sequence[object] = (),
    jobs: int = 1,
    executor: str = "thread",
    shared_trie: Optional[TrieMatcher] = None,
    **config_overrides,
) -> List[OptimizationResult]:
    """Optimize several graphs under one configuration, sharing compiled state.

    Results are returned in input order and are identical to calling
    :func:`repro.core.optimizer.optimize` per graph; ``observers`` subscribe
    to every run's event stream.  Keyword arguments override ``config``
    fields, as in :func:`~repro.core.optimizer.optimize`.

    ``jobs > 1`` fans whole sessions out to ``executor`` workers ("thread"
    or "process"); each run is unchanged -- its own e-graph, its own serial
    pipeline -- so per-run results stay bit-identical to ``jobs=1`` and only
    wall-clock changes.  Thread workers share the one compiled trie through
    :meth:`~repro.egraph.machine.TrieMatcher.fork` (same immutable trie,
    private delta caches); process workers recompile it once per worker from
    the pickled rules.  Observer events are serialised under one lock in
    thread mode; process mode runs workers detached and raises
    :class:`~repro.core.config.ConfigError` if observers are passed, rather
    than silently dropping their event stream.

    ``shared_trie`` lets a long-lived caller (the optimization service)
    pass in an already-compiled rule trie for ``rules`` under ``config``
    instead of recompiling per call; it must come from
    :func:`compile_shared_trie` (or a :meth:`~repro.egraph.machine.TrieMatcher.fork`
    of its result) over the same rule set.
    """
    config = config if config is not None else TensatConfig()
    if config_overrides:
        config = config.with_overrides(**config_overrides)
    cost_model = cost_model if cost_model is not None else AnalyticCostModel()
    rules = rules if rules is not None else default_ruleset()
    graphs = list(graphs)
    if shared_trie is None:
        shared_trie = compile_shared_trie(rules, config)

    if jobs == 1:
        results: List[OptimizationResult] = []
        for graph in graphs:
            results.append(
                _optimize_one(graph, cost_model, rules, config, observers, shared_trie)
            )
        return results

    if jobs < 1:
        raise ConfigError(f"optimize_many jobs must be >= 1, got {jobs}")
    if executor not in ("thread", "process"):
        raise ConfigError(
            f"optimize_many executor must be 'thread' or 'process', got {executor!r}"
        )

    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor

        shared = _SynchronizedObserver(observers) if observers else None
        with ThreadPoolExecutor(max_workers=jobs, thread_name_prefix="repro-batch") as pool:
            futures = [
                pool.submit(
                    _optimize_one,
                    graph,
                    cost_model,
                    rules,
                    config,
                    (shared,) if shared is not None else (),
                    shared_trie.fork() if shared_trie is not None else None,
                )
                for graph in graphs
            ]
            return [f.result() for f in futures]  # submission order

    # Process fan-out: everything a worker needs crosses a pickle boundary,
    # so preflight the user-supplied pieces and name the offender instead of
    # dying inside the pool.
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    if observers:
        raise ConfigError(
            "optimize_many(executor='process') cannot deliver observer events "
            "(workers run in separate processes); use executor='thread' or drop "
            "the observers"
        )
    ensure_picklable(
        {
            "the cost model": cost_model,
            "the rule set": rules,
            "the configuration": config,
            "the input graphs": graphs,
        },
        "optimize_many(executor='process')",
    )
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=multiprocessing.get_context("fork")
    ) as pool:
        futures = [
            pool.submit(_optimize_one, graph, cost_model, rules, config, (), None)
            for graph in graphs
        ]
        return [f.result() for f in futures]  # submission order


@dataclass
class ComparisonResult:
    """TENSAT and the TASO-style backtracking baseline on one graph."""

    graph: TensorGraph
    original_cost: float
    tensat: OptimizationResult
    tensat_seconds: float
    taso: BacktrackingResult

    def as_dict(self) -> Dict[str, object]:
        """The CLI's ``compare --json`` payload (stable schema)."""
        return {
            "model": self.graph.name,
            "original_cost_ms": self.original_cost,
            "tensat": {
                "speedup_percent": self.tensat.speedup_percent,
                "seconds": self.tensat_seconds,
            },
            "taso": {
                "speedup_percent": self.taso.speedup_percent,
                "total_seconds": self.taso.total_seconds,
                "best_seconds": self.taso.best_seconds,
            },
        }


def compare(
    graph: TensorGraph,
    cost_model: Optional[CostModel] = None,
    rules: Optional[RuleSet] = None,
    config: Optional[TensatConfig] = None,
    observers: Sequence[object] = (),
    taso_budget: int = 30,
    taso_time_limit: float = 3600.0,
    taso_alpha: float = 1.0,
) -> ComparisonResult:
    """Optimize ``graph`` with TENSAT and with the backtracking baseline.

    ``config`` defaults to :meth:`TensatConfig.fast` (the comparison exists
    for interactive evaluation, not paper-scale runs); the ``taso_*`` knobs
    mirror :class:`~repro.search.backtracking.BacktrackingSearch` and share
    its defaults.  ``tensat_seconds`` covers the whole TENSAT run including
    e-graph construction.
    """
    cost_model = cost_model if cost_model is not None else AnalyticCostModel()
    config = config if config is not None else TensatConfig.fast()

    start = time.perf_counter()
    tensat = OptimizationSession(
        graph, cost_model=cost_model, rules=rules, config=config, observers=observers
    ).result()
    tensat_seconds = time.perf_counter() - start

    taso = BacktrackingSearch(
        cost_model, budget=taso_budget, time_limit=taso_time_limit, alpha=taso_alpha
    ).optimize(graph)

    return ComparisonResult(
        graph=graph,
        original_cost=cost_model.graph_cost(graph),
        tensat=tensat,
        tensat_seconds=tensat_seconds,
        taso=taso,
    )
