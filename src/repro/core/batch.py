"""Batch front door: many graphs, one compiled search state, plus compare().

``optimize_many`` amortises the per-run setup the paper's single-graph flow
repeats: the rule trie (every rule's compiled program merged into one
shared-prefix trie per root operator) is compiled **once** and reused by
every run.  Compilation depends only on the rule set, never on the e-graph,
and the trie matcher's per-e-graph cache resets itself on a new e-graph, so
batched results are bit-for-bit identical to sequential ``optimize`` calls
(pinned by ``tests/test_session.py``).

``compare`` is the one implementation of the "TENSAT vs. TASO-style
backtracking" evaluation that both the CLI's ``compare`` subcommand and the
benchmark harness (``benchmarks/common.py``) call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import TensatConfig
from repro.core.session import OptimizationResult, OptimizationSession
from repro.costs.model import AnalyticCostModel, CostModel
from repro.egraph.machine import TrieMatcher
from repro.egraph.multipattern import MultiPatternSearcher
from repro.egraph.runner import collect_trie_patterns
from repro.ir.graph import TensorGraph
from repro.rules.library import RuleSet, default_ruleset
from repro.search.backtracking import BacktrackingResult, BacktrackingSearch

__all__ = ["ComparisonResult", "compare", "compile_shared_trie", "optimize_many"]


def compile_shared_trie(rules: RuleSet, config: TensatConfig) -> Optional[TrieMatcher]:
    """Compile the rule trie one run under ``config`` would build, or None.

    Returns ``None`` when ``config`` does not use trie search (the other
    search paths keep per-run state that is cheap to build).  The result can
    be passed to any number of :class:`OptimizationSession` s over the same
    rules, as long as the sessions run one after another -- interleaving
    steps of two sessions stays *correct* (the cache self-invalidates per
    e-graph) but forfeits the delta-search speedup.
    """
    if config.matcher != "vm" or config.search_mode != "trie":
        return None
    searcher = MultiPatternSearcher(rules.multi_rewrites) if rules.multi_rewrites else None
    patterns, _keys = collect_trie_patterns(rules.rewrites, searcher)
    return TrieMatcher(patterns) if patterns else None


def optimize_many(
    graphs: Iterable[TensorGraph],
    cost_model: Optional[CostModel] = None,
    rules: Optional[RuleSet] = None,
    config: Optional[TensatConfig] = None,
    observers: Sequence[object] = (),
    **config_overrides,
) -> List[OptimizationResult]:
    """Optimize several graphs under one configuration, sharing compiled state.

    Results are returned in input order and are identical to calling
    :func:`repro.core.optimizer.optimize` per graph; ``observers`` subscribe
    to every run's event stream.  Keyword arguments override ``config``
    fields, as in :func:`~repro.core.optimizer.optimize`.
    """
    config = config if config is not None else TensatConfig()
    if config_overrides:
        config = config.with_overrides(**config_overrides)
    cost_model = cost_model if cost_model is not None else AnalyticCostModel()
    rules = rules if rules is not None else default_ruleset()
    shared_trie = compile_shared_trie(rules, config)
    results: List[OptimizationResult] = []
    for graph in graphs:
        session = OptimizationSession(
            graph,
            cost_model=cost_model,
            rules=rules,
            config=config,
            observers=observers,
            shared_trie=shared_trie,
        )
        results.append(session.result())
    return results


@dataclass
class ComparisonResult:
    """TENSAT and the TASO-style backtracking baseline on one graph."""

    graph: TensorGraph
    original_cost: float
    tensat: OptimizationResult
    tensat_seconds: float
    taso: BacktrackingResult

    def as_dict(self) -> Dict[str, object]:
        """The CLI's ``compare --json`` payload (stable schema)."""
        return {
            "model": self.graph.name,
            "original_cost_ms": self.original_cost,
            "tensat": {
                "speedup_percent": self.tensat.speedup_percent,
                "seconds": self.tensat_seconds,
            },
            "taso": {
                "speedup_percent": self.taso.speedup_percent,
                "total_seconds": self.taso.total_seconds,
                "best_seconds": self.taso.best_seconds,
            },
        }


def compare(
    graph: TensorGraph,
    cost_model: Optional[CostModel] = None,
    rules: Optional[RuleSet] = None,
    config: Optional[TensatConfig] = None,
    observers: Sequence[object] = (),
    taso_budget: int = 30,
    taso_time_limit: float = 3600.0,
    taso_alpha: float = 1.0,
) -> ComparisonResult:
    """Optimize ``graph`` with TENSAT and with the backtracking baseline.

    ``config`` defaults to :meth:`TensatConfig.fast` (the comparison exists
    for interactive evaluation, not paper-scale runs); the ``taso_*`` knobs
    mirror :class:`~repro.search.backtracking.BacktrackingSearch` and share
    its defaults.  ``tensat_seconds`` covers the whole TENSAT run including
    e-graph construction.
    """
    cost_model = cost_model if cost_model is not None else AnalyticCostModel()
    config = config if config is not None else TensatConfig.fast()

    start = time.perf_counter()
    tensat = OptimizationSession(
        graph, cost_model=cost_model, rules=rules, config=config, observers=observers
    ).result()
    tensat_seconds = time.perf_counter() - start

    taso = BacktrackingSearch(
        cost_model, budget=taso_budget, time_limit=taso_time_limit, alpha=taso_alpha
    ).optimize(graph)

    return ComparisonResult(
        graph=graph,
        original_cost=cost_model.graph_cost(graph),
        tensat=tensat,
        tensat_seconds=tensat_seconds,
        taso=taso,
    )
