"""Statistics reported by the TENSAT optimizer.

These mirror the quantities the paper reports: optimization-time breakdown
into exploration and extraction (Table 3), e-graph sizes (Figure 7), and the
cost/speedup of the optimized graph (Table 1, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.egraph.runner import RunnerReport

__all__ = ["OptimizationStats"]


@dataclass
class OptimizationStats:
    """Phase timings, e-graph sizes, and costs of one optimization run."""

    exploration_seconds: float = 0.0
    extraction_seconds: float = 0.0
    total_seconds: float = 0.0

    #: Exploration broken into the pipeline's phases: searching for matches,
    #: planning + applying them, and flushing unions / restoring congruence.
    search_seconds: float = 0.0
    apply_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    #: Time spent joining multi-pattern per-source matches into combinations
    #: (a sub-span of the search phase; 0.0 when no multi-pattern rule ran).
    multi_join_seconds: float = 0.0
    #: Time spent in shape/condition checks (a sub-span of the search phase,
    #: partially inside the multi-pattern join), including cache lookups.
    condition_seconds: float = 0.0
    #: Condition-check cache traffic; with ``condition_cache="off"`` every
    #: check counts as a miss, so hits + misses is the total check count.
    condition_cache_hits: int = 0
    condition_cache_misses: int = 0
    #: Per-worker totals of the sharded search phase (``search_jobs > 1``):
    #: one dict per shard with buckets / candidates swept and busy seconds.
    #: Empty when search ran unsharded.
    search_shards: List[Dict[str, object]] = field(default_factory=list)

    exploration_iterations: int = 0
    stop_reason: str = ""
    num_enodes: int = 0
    num_eclasses: int = 0
    num_filtered_nodes: int = 0
    cycles_resolved: int = 0

    original_cost: float = 0.0
    optimized_cost: float = 0.0
    extraction_status: str = ""
    ilp_num_variables: int = 0
    ilp_num_constraints: int = 0
    #: Extraction wall time split into pipeline stages (``"prune"`` /
    #: ``"greedy"`` / ``"bnb"`` / ``"ilp"``); empty when the extractor
    #: predates the stage accounting.
    extraction_stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Variable-space shrink factor of the dominated-node pruning pass
    #: (nodes before / nodes after; 1.0 when pruning was off or free).
    extraction_prune_ratio: float = 1.0

    @property
    def speedup_percent(self) -> float:
        """Cost-model speedup of the optimized graph over the original (paper convention)."""
        if self.optimized_cost <= 0:
            return 0.0
        return (self.original_cost / self.optimized_cost - 1.0) * 100.0

    @classmethod
    def from_runner_report(cls, report: RunnerReport) -> "OptimizationStats":
        stats = cls(
            exploration_seconds=report.total_seconds,
            search_seconds=report.search_seconds,
            apply_seconds=report.apply_seconds,
            rebuild_seconds=report.rebuild_seconds,
            multi_join_seconds=report.multi_join_seconds,
            condition_seconds=report.condition_seconds,
            condition_cache_hits=report.condition_cache_hits,
            condition_cache_misses=report.condition_cache_misses,
            search_shards=list(report.search_shards),
            exploration_iterations=report.num_iterations,
            stop_reason=report.stop_reason.value,
            num_enodes=report.n_enodes,
            num_eclasses=report.n_eclasses,
            num_filtered_nodes=report.n_filtered,
            cycles_resolved=sum(it.n_cycles_resolved for it in report.iterations),
        )
        return stats

    def as_dict(self) -> Dict[str, object]:
        return {
            "exploration_seconds": round(self.exploration_seconds, 4),
            "search_seconds": round(self.search_seconds, 4),
            "apply_seconds": round(self.apply_seconds, 4),
            "rebuild_seconds": round(self.rebuild_seconds, 4),
            "multi_join_seconds": round(self.multi_join_seconds, 4),
            "condition_seconds": round(self.condition_seconds, 4),
            "condition_cache_hits": self.condition_cache_hits,
            "condition_cache_misses": self.condition_cache_misses,
            "search_shards": self.search_shards,
            "extraction_seconds": round(self.extraction_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
            "iterations": self.exploration_iterations,
            "stop_reason": self.stop_reason,
            "enodes": self.num_enodes,
            "eclasses": self.num_eclasses,
            "filtered_nodes": self.num_filtered_nodes,
            "cycles_resolved": self.cycles_resolved,
            "original_cost_ms": self.original_cost,
            "optimized_cost_ms": self.optimized_cost,
            "speedup_percent": round(self.speedup_percent, 2),
            "extraction_status": self.extraction_status,
            "extraction_stage_seconds": {
                name: round(secs, 4) for name, secs in self.extraction_stage_seconds.items()
            },
            "extraction_prune_ratio": round(self.extraction_prune_ratio, 4),
            "ilp_num_variables": self.ilp_num_variables,
            "ilp_num_constraints": self.ilp_num_constraints,
        }
