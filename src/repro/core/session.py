"""The session-based driver API: one optimization run as an object.

An :class:`OptimizationSession` owns everything one run produces -- the input
graph, the e-graph and its root, the cycle filter, the exploration reports,
the extraction, the materialized graph -- and exposes the pipeline as
explicit, individually callable steps::

    session = OptimizationSession(graph, config=TensatConfig.fast())
    while session.step() is not None:       # one saturation iteration at a
        inspect(session.egraph)             # time, resumable and inspectable
    extraction = session.extract()
    optimized = session.materialize()
    result = session.result()

Each phase method is idempotent and auto-runs its prerequisites, so
``OptimizationSession(graph).result()`` is the one-shot path --
:meth:`TensatOptimizer.optimize` is exactly that composition.  Observers
(:mod:`repro.core.events`) subscribe to the run's event stream; the
step-at-a-time loop, the one-shot path, and the batch front door
(:mod:`repro.core.batch`) all walk bit-for-bit identical trajectories
(pinned by ``tests/test_session.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.executor import execute_graph, outputs_allclose
from repro.core.config import TensatConfig
from repro.core.events import dispatch_event
from repro.core.registry import EXTRACTORS
from repro.core.stats import OptimizationStats
from repro.costs.model import AnalyticCostModel, CostModel
from repro.egraph.cycles import CycleFilter
from repro.egraph.extraction.base import ExtractionResult
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.machine import TrieMatcher
from repro.egraph.runner import (
    IterationReport,
    Runner,
    RunnerLimits,
    RunnerReport,
    make_cycle_filter,
)
from repro.ir.convert import egraph_from_graph, recexpr_to_graph
from repro.ir.graph import TensorGraph
from repro.ir.tensor import ShapeError
from repro.ir.validate import check_same_interface, validate_graph
from repro.rules.library import RuleSet, default_ruleset

__all__ = [
    "OptimizationResult",
    "OptimizationSession",
    "materialize_extraction",
    "runner_limits_from_config",
]


@dataclass
class OptimizationResult:
    """Everything produced by one optimization run."""

    original: TensorGraph
    optimized: TensorGraph
    stats: OptimizationStats
    runner_report: Optional[RunnerReport] = None
    extraction: Optional[ExtractionResult] = None

    @property
    def speedup_percent(self) -> float:
        return self.stats.speedup_percent

    @property
    def original_cost(self) -> float:
        return self.stats.original_cost

    @property
    def optimized_cost(self) -> float:
        return self.stats.optimized_cost

    def summary(self) -> str:
        s = self.stats
        return (
            f"{self.original.name}: cost {s.original_cost:.4f} ms -> {s.optimized_cost:.4f} ms "
            f"({s.speedup_percent:+.1f}%), exploration {s.exploration_seconds:.2f}s "
            f"({s.num_enodes} e-nodes, stop: {s.stop_reason}), "
            f"extraction {s.extraction_seconds:.2f}s ({s.extraction_status})"
        )


def runner_limits_from_config(config: TensatConfig) -> RunnerLimits:
    """The exploration limits a :class:`TensatConfig` prescribes."""
    return RunnerLimits(
        node_limit=config.node_limit,
        iter_limit=config.iter_limit,
        time_limit=config.exploration_time_limit,
        k_multi=config.k_multi,
        max_multi_combinations=config.max_multi_combinations,
        scheduler=config.scheduler,
        match_limit=config.scheduler_match_limit,
        ban_length=config.scheduler_ban_length,
        matcher=config.matcher,
        search_mode=config.search_mode,
        use_delta=config.delta_matching,
        multipattern_join=config.multipattern_join,
        condition_cache=config.condition_cache,
        search_jobs=config.search_jobs,
        search_executor=config.search_executor,
    )


def materialize_extraction(
    graph: TensorGraph,
    egraph,
    root: int,
    cycle_filter: CycleFilter,
    extraction: ExtractionResult,
    cost_model: CostModel,
) -> Tuple[TensorGraph, ExtractionResult, str]:
    """Turn an extracted term into a concrete graph, falling back when needed.

    The tensor analysis attaches split locations (the cut position of the
    most recent concat) to e-classes, but an e-class can end up holding
    concats with *different* cut positions; an extraction that pairs a
    ``split`` with the "other" concat then fails shape inference when the
    concrete graph is rebuilt.  This is rare (it needs several interacting
    merge rewrites, typically at k_multi >= 2) and the safe response is the
    one TASO-style systems take: reject the candidate and fall back, first
    to greedy extraction and ultimately to the original graph.

    Returns ``(optimized_graph, extraction_result, status)``.  The status
    records the fallback provenance (``"<status>_rejected_greedy_fallback"``
    / ``"<status>_rejected_original_kept"``); the passed-in
    :class:`ExtractionResult` is never mutated.
    """
    try:
        optimized = recexpr_to_graph(extraction.expr, name=f"{graph.name}-optimized")
        return optimized, extraction, extraction.status
    except (ShapeError, ValueError):
        pass
    try:
        node_cost = cost_model.extraction_cost_function()
        greedy = GreedyExtractor(node_cost, filter_list=cycle_filter.filter_list).extract(egraph, root)
        optimized = recexpr_to_graph(greedy.expr, name=f"{graph.name}-optimized")
        return optimized, greedy, f"{extraction.status}_rejected_greedy_fallback"
    except (ShapeError, ValueError):
        return graph, extraction, f"{extraction.status}_rejected_original_kept"


class OptimizationSession:
    """One optimization run: steppable phases over owned state.

    Parameters
    ----------
    graph:
        The input :class:`TensorGraph` (loaded into a fresh e-graph).
    cost_model:
        Per-operator cost model (defaults to the analytic T4-like model).
    rules:
        Rewrite rules (defaults to the full library).
    config:
        Pipeline configuration (defaults to the paper's settings).
    observers:
        Subscribers to the run's event stream (see :mod:`repro.core.events`).
    shared_trie:
        A pre-compiled rule trie to reuse (see
        :func:`repro.core.batch.compile_shared_trie`); it must correspond to
        ``rules`` + ``config``.  Sharing only skips recompilation -- results
        are identical.

    Attributes of interest between phases: ``egraph``, ``root``,
    ``cycle_filter``, ``runner`` (with ``runner.iterations`` /
    ``runner.stop_reason``), ``report``, ``extraction``,
    ``extraction_status``, ``optimized``, ``phase_seconds``.
    """

    def __init__(
        self,
        graph: TensorGraph,
        cost_model: Optional[CostModel] = None,
        rules: Optional[RuleSet] = None,
        config: Optional[TensatConfig] = None,
        observers: Sequence[object] = (),
        shared_trie: Optional[TrieMatcher] = None,
    ) -> None:
        self.graph = graph
        self.cost_model = cost_model if cost_model is not None else AnalyticCostModel()
        self.rules = rules if rules is not None else default_ruleset()
        self.config = config if config is not None else TensatConfig()
        self.observers = tuple(observers)
        self.egraph, self.root = egraph_from_graph(
            graph, shape_analysis=(self.config.shape_analysis == "on")
        )
        self.cycle_filter = make_cycle_filter(self.config.cycle_filter)
        self.runner = Runner(
            self.egraph,
            rewrites=self.rules.rewrites,
            multi_rewrites=self.rules.multi_rewrites,
            limits=runner_limits_from_config(self.config),
            cycle_filter=self.cycle_filter,
            observers=self.observers,
            trie_matcher=shared_trie,
        )
        self.original_cost = self.cost_model.graph_cost(graph)
        #: Aggregate exploration report, set once exploration stops.
        self.report: Optional[RunnerReport] = None
        #: Primary extraction (or the greedy fallback that replaced it).
        self.extraction: Optional[ExtractionResult] = None
        #: Effective extraction status, including fallback / guard provenance.
        self.extraction_status: str = ""
        #: The materialized output graph, set by :meth:`materialize`.
        self.optimized: Optional[TensorGraph] = None
        self.optimized_cost: Optional[float] = None
        #: Completed pipeline phases -> seconds (mirrors the ``on_phase`` events).
        self.phase_seconds: Dict[str, float] = {}
        self._result: Optional[OptimizationResult] = None
        #: The extractor built by :meth:`extract` (exposes ``last_solve_info``).
        self._extractor = None

    # -- events --------------------------------------------------------- #

    def _emit(self, event: str, *args) -> None:
        dispatch_event(self.observers, event, *args)

    def _end_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = seconds
        self._emit("on_phase", phase, seconds)

    # -- exploration ----------------------------------------------------- #

    @property
    def iteration_reports(self) -> List[IterationReport]:
        """Per-iteration exploration reports so far (valid mid-exploration)."""
        return self.runner.iterations

    def step(self) -> Optional[IterationReport]:
        """Advance exploration by one saturation iteration.

        Returns the iteration's report, or ``None`` once exploration has
        stopped (saturation or a limit) -- at which point :attr:`report`
        is populated and the ``"exploration"`` phase event fires.  The
        e-graph is inspectable (but must not be mutated) between steps.
        """
        if self.report is not None:
            return None
        iteration = self.runner.step()
        if iteration is None:
            self.report = self.runner.report()
            self._end_phase("exploration", self.report.total_seconds)
        return iteration

    def explore(self) -> RunnerReport:
        """Run exploration to completion (no-op if already finished)."""
        while self.step() is not None:
            pass
        return self.report

    # -- extraction ------------------------------------------------------ #

    def extract(self) -> ExtractionResult:
        """Extract the cheapest represented graph (exploring first if needed).

        The extractor is built from the :data:`~repro.core.registry.EXTRACTORS`
        registry entry named by ``config.extraction``.
        """
        if self.extraction is not None:
            return self.extraction
        if self.report is None:
            self.explore()
        t0 = time.perf_counter()
        extractor = EXTRACTORS.create(
            self.config.extraction,
            node_cost=self.cost_model.extraction_cost_function(),
            config=self.config,
            filter_list=self.cycle_filter.filter_list,
        )
        self._extractor = extractor
        self.extraction = extractor.extract(self.egraph, self.root)
        self.extraction_status = self.extraction.status
        self._emit("on_extraction", self.extraction)
        self._end_phase("extraction", time.perf_counter() - t0)
        return self.extraction

    # -- materialization ------------------------------------------------- #

    def materialize(self) -> TensorGraph:
        """Turn the extraction into a validated output graph.

        Runs the fallback chain (:func:`materialize_extraction`), then the
        cost-regression guard: the e-graph always represents the original
        term, so extraction can never *really* do worse than the input --
        but cost-model or bookkeeping regressions are guarded against by
        keeping the original graph and recording
        ``"<status>_regression_guard_original_kept"`` in
        :attr:`extraction_status`.
        """
        if self.optimized is not None:
            return self.optimized
        extraction = self.extract()
        t0 = time.perf_counter()
        optimized, extraction, status = materialize_extraction(
            self.graph, self.egraph, self.root, self.cycle_filter, extraction, self.cost_model
        )
        optimized_cost = self.cost_model.graph_cost(optimized)
        if optimized_cost > self.original_cost + 1e-9:
            optimized = self.graph
            optimized_cost = self.original_cost
            status = f"{status}_regression_guard_original_kept"

        if self.config.validate_output:
            validate_graph(optimized)
            check_same_interface(self.graph, optimized)
        if self.config.verify_numerically:
            if not outputs_allclose(
                execute_graph(self.graph), execute_graph(optimized), rtol=1e-4, atol=1e-5
            ):
                raise RuntimeError(
                    f"optimized graph for {self.graph.name!r} is not numerically "
                    "equivalent to the original"
                )

        self.extraction = extraction
        self.extraction_status = status
        self.optimized = optimized
        self.optimized_cost = optimized_cost
        self._end_phase("materialization", time.perf_counter() - t0)
        return optimized

    # -- result ---------------------------------------------------------- #

    def result(self) -> OptimizationResult:
        """The run's :class:`OptimizationResult` (running remaining phases)."""
        if self._result is not None:
            return self._result
        self.materialize()
        if self.report is None:
            # A custom/stubbed extract() may have skipped exploration.
            self.explore()
        stats = OptimizationStats.from_runner_report(self.report)
        stats.extraction_seconds = self.phase_seconds.get("extraction", 0.0)
        stats.total_seconds = sum(self.phase_seconds.values())
        stats.original_cost = self.original_cost
        stats.optimized_cost = self.optimized_cost
        stats.extraction_status = self.extraction_status
        if self.extraction is not None:
            stats.extraction_stage_seconds = dict(self.extraction.stages)
            reduction = self.extraction.reduction
            if reduction and reduction.get("nodes_after", 0) > 0:
                stats.extraction_prune_ratio = reduction["nodes_before"] / reduction["nodes_after"]
        solve_info = getattr(self._extractor, "last_solve_info", None)
        if solve_info is not None:
            stats.ilp_num_variables = solve_info.num_variables
            stats.ilp_num_constraints = solve_info.num_constraints
        self._result = OptimizationResult(
            original=self.graph,
            optimized=self.optimized,
            stats=stats,
            runner_report=self.report,
            extraction=self.extraction,
        )
        return self._result
