"""Component registries: the single source of truth for pluggable strategies.

Every pluggable piece of the pipeline -- extractors, rule schedulers,
e-matcher implementations, search organisations, multi-pattern joins, cycle
filters, ILP backends -- is named in exactly one place: a :class:`Registry`
in this module.  :class:`~repro.core.config.TensatConfig` validation, the
CLI's ``choices=`` lists, and the factory functions (``make_scheduler``,
``make_cycle_filter``, the session's extractor construction, the
multi-pattern ``combine``) all consult these registries, so a third-party
component plugs in with one ``register`` call and no edits to
``optimizer.py`` or ``cli.py``::

    from repro.core.registry import SCHEDULERS

    SCHEDULERS.register("alternating", lambda match_limit, ban_length: AlternatingScheduler())
    config = TensatConfig(scheduler="alternating")   # now validates

Factory signatures by registry:

* ``SCHEDULERS``         -- ``factory(match_limit: int, ban_length: int) -> Scheduler``
* ``EXTRACTORS``         -- ``factory(node_cost, config, filter_list) -> Extractor``
* ``CYCLE_FILTERS``      -- ``factory() -> CycleFilter``
* ``MULTIPATTERN_JOINS`` -- ``join(rule, egraph, per_source_matches, max_combinations, checker=None) -> List[MultiMatch]``
* ``CONDITION_CACHES``   -- ``factory() -> ConditionChecker`` ("auto" is a
  descriptor entry resolved by the runner before construction, see
  :func:`repro.egraph.checkcache.resolve_condition_cache`)
* ``SEARCH_EXECUTORS``   -- ``factory(jobs: int) -> search executor`` (the
  parallel shard sweeper consulted when ``search_jobs > 1``, see
  :mod:`repro.egraph.parallel`)
* ``MATCHERS`` / ``SEARCH_MODES`` / ``SHAPE_ANALYSES`` / ``ILP_BACKENDS`` --
  mode descriptors (the entry value is a description string); the
  implementations are structural dispatch inside
  :mod:`repro.egraph.runner` / :mod:`repro.ir.convert` /
  :mod:`repro.egraph.extraction.ilp`, so these registries govern the
  *valid names* only.

This module must stay importable from :mod:`repro.egraph` modules' function
bodies, so it may import from :mod:`repro.egraph` but never from
:mod:`repro.core.config` or :mod:`repro.core.optimizer`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.egraph.checkcache import DirectConditionChecker, MemoizedConditionChecker
from repro.egraph.cycles import EfficientCycleFilter, NoCycleFilter, VanillaCycleFilter
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.portfolio import PortfolioExtractor
from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.parallel import (
    ProcessSearchExecutor,
    SerialSearchExecutor,
    ThreadSearchExecutor,
)
from repro.egraph.scheduler import BackoffScheduler, SimpleScheduler

__all__ = [
    "Registry",
    "CONDITION_CACHES",
    "CYCLE_FILTERS",
    "EXTRACTORS",
    "ILP_BACKENDS",
    "MATCHERS",
    "MULTIPATTERN_JOINS",
    "SCHEDULERS",
    "SEARCH_EXECUTORS",
    "SEARCH_MODES",
    "SHAPE_ANALYSES",
]


class Registry:
    """An ordered ``name -> component`` mapping with helpful errors.

    Registration order is preserved: :meth:`names` returns the entries in the
    order they were registered, which is the order the CLI presents them and
    the first entry is conventionally the default.
    """

    def __init__(self, kind: str) -> None:
        #: Human-readable component kind, used in error messages ("scheduler").
        self.kind = kind
        self._entries: Dict[str, object] = {}

    # -- registration -------------------------------------------------- #

    def register(self, name: str, value: Optional[object] = None):
        """Register ``value`` under ``name``; usable as a decorator.

        Raises :class:`ValueError` if ``name`` is already taken (re-register
        by calling :meth:`unregister` first -- silent replacement would make
        component resolution order-of-import dependent).
        """
        if value is None:

            def decorator(fn):
                self.register(name, fn)
                return fn

            return decorator
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = value
        return value

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests and plugin teardown)."""
        if name not in self._entries:
            raise ValueError(self._unknown(name))
        del self._entries[name]

    # -- lookup -------------------------------------------------------- #

    def get(self, name: str) -> object:
        """Return the registered component, raising a listing error when unknown."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(self._unknown(name)) from None

    def create(self, name: str, **kwargs):
        """Call the registered factory with ``kwargs`` (see module docstring)."""
        factory = self.get(name)
        if not callable(factory):
            raise TypeError(f"{self.kind} {name!r} is not constructible (entry is {factory!r})")
        return factory(**kwargs)

    def check(self, name: str) -> str:
        """Validate that ``name`` is registered; return it (for chaining)."""
        if name not in self._entries:
            raise ValueError(self._unknown(name))
        return name

    def names(self) -> Tuple[str, ...]:
        """Registered names in registration order (the first is the default)."""
        return tuple(self._entries)

    def _unknown(self, name: str) -> str:
        return f"unknown {self.kind} {name!r}; available: {', '.join(self._entries) or '<none>'}"

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, names={list(self._entries)})"


# --------------------------------------------------------------------- #
# Built-in components.  Registration order == CLI presentation order,
# first entry == the TensatConfig default.
# --------------------------------------------------------------------- #

#: Rule schedulers (exploration): which single-pattern rules run per iteration.
SCHEDULERS = Registry("scheduler")
SCHEDULERS.register("simple", lambda match_limit, ban_length: SimpleScheduler())
SCHEDULERS.register(
    "backoff",
    lambda match_limit, ban_length: BackoffScheduler(match_limit=match_limit, ban_length=ban_length),
)

#: Extractors (post-saturation): select the cheapest represented graph.
EXTRACTORS = Registry("extractor")


@EXTRACTORS.register("ilp")
def _make_ilp_extractor(node_cost, config, filter_list):
    return ILPExtractor(
        node_cost,
        with_cycle_constraints=config.ilp_cycle_constraints,
        integer_topo=config.ilp_integer_topo,
        filter_list=filter_list,
        time_limit=config.ilp_time_limit,
        backend=config.ilp_backend,
        fallback_to_greedy=config.ilp_fallback_to_greedy,
        mip_rel_gap=config.ilp_mip_gap,
        reduce_problem=config.extraction_prune,
        warm_start=config.ilp_warm_start,
    )


@EXTRACTORS.register("greedy")
def _make_greedy_extractor(node_cost, config, filter_list):
    return GreedyExtractor(node_cost, filter_list=filter_list)


@EXTRACTORS.register("portfolio")
def _make_portfolio_extractor(node_cost, config, filter_list):
    return PortfolioExtractor(
        node_cost,
        deadline=config.extraction_deadline,
        filter_list=filter_list,
        with_cycle_constraints=config.ilp_cycle_constraints,
        integer_topo=config.ilp_integer_topo,
        mip_rel_gap=config.ilp_mip_gap,
        reduce_problem=config.extraction_prune,
        warm_start=config.ilp_warm_start,
        ilp_time_limit=config.ilp_time_limit,
    )


#: Cycle-filtering strategies (paper Section 5.2).
CYCLE_FILTERS = Registry("cycle filter")
CYCLE_FILTERS.register("efficient", EfficientCycleFilter)
CYCLE_FILTERS.register("vanilla", VanillaCycleFilter)
CYCLE_FILTERS.register("none", NoCycleFilter)

#: Multi-pattern match-combination joins.  Entries are callables
#: ``(rule, egraph, per_source_matches, max_combinations) -> List[MultiMatch]``
#: and every join must return the *identical* ordered combination list (the
#: saturation trajectory is join-blind; ``product`` is the executable spec).
MULTIPATTERN_JOINS = Registry("multipattern join")
MULTIPATTERN_JOINS.register("hash", MultiPatternRewrite._combine_hash)
MULTIPATTERN_JOINS.register("product", MultiPatternRewrite._combine_product)

#: Condition-check caching (paper Section 4 shape checks).  "memo" and "off"
#: are factories ``() -> ConditionChecker``: "memo" memoizes verdicts per
#: canonical binding with generation invalidation at each rebuild, "off"
#: evaluates every check directly.  "auto" (the default) is a descriptor the
#: runner resolves against the e-graph's analysis before construction --
#: "off" when compiled shape facts make every check an O(1) lookup, "memo"
#: otherwise (see :func:`repro.egraph.checkcache.resolve_condition_cache`).
#: Every setting yields identical match lists, so the saturation trajectory
#: is cache-blind (pinned by the golden tests).
CONDITION_CACHES = Registry("condition cache")
CONDITION_CACHES.register("auto", "off with compiled shape facts, memo otherwise")
CONDITION_CACHES.register("memo", MemoizedConditionChecker)
CONDITION_CACHES.register("off", DirectConditionChecker)

#: E-matcher implementations (mode descriptors; dispatch lives in the runner).
MATCHERS = Registry("matcher")
MATCHERS.register("vm", "compiled e-matching virtual machine (docs/ematching.md)")
MATCHERS.register("naive", "interpretive reference matcher (the executable spec)")

#: Parallel search executors (``docs/parallel.md``).  Factories
#: ``(jobs: int) -> executor``; the executor sweeps shards of trie op buckets
#: (``run(matcher, egraph, op_candidates)``) and exposes ``prepare`` /
#: ``close`` / per-shard timings.  Only consulted when ``search_jobs > 1``
#: (at 1 job the runner sweeps in-line with no executor in the way):
#: "thread" shares the frozen e-graph across a thread pool, "process" ships a
#: pickled snapshot to a fork-spawned process pool, "serial" runs the shards
#: in-line (the determinism fixture).  Every executor produces bit-identical
#: match lists (pinned by the golden parity tests).
SEARCH_EXECUTORS = Registry("search executor")
SEARCH_EXECUTORS.register("thread", lambda jobs: ThreadSearchExecutor(jobs))
SEARCH_EXECUTORS.register("process", lambda jobs: ProcessSearchExecutor(jobs))
SEARCH_EXECUTORS.register("serial", lambda jobs: SerialSearchExecutor(jobs))

#: VM search organisations (mode descriptors; dispatch lives in the runner).
SEARCH_MODES = Registry("search mode")
SEARCH_MODES.register("trie", "one shared-prefix rule trie per root operator")
SEARCH_MODES.register("per-rule", "one compiled program per rule")

#: How rewrite conditions consume the tensor e-class analysis (mode
#: descriptors; dispatch lives in :func:`repro.ir.convert.egraph_from_graph`
#: and :mod:`repro.rules.conditions`).  "on" compiles target patterns into
#: flat programs over the interned per-e-class facts
#: (:mod:`repro.egraph.shapeanalysis`); "off" keeps the on-demand bottom-up
#: inference per candidate binding (the executable spec).  Both walk
#: bit-identical trajectories (pinned by the golden tests).
SHAPE_ANALYSES = Registry("shape analysis")
SHAPE_ANALYSES.register("on", "compiled condition programs over interned per-e-class facts")
SHAPE_ANALYSES.register("off", "on-demand shape inference per candidate binding (the spec)")

#: ILP solver backends (mode descriptors; dispatch lives in extraction/ilp.py).
ILP_BACKENDS = Registry("ilp backend")
ILP_BACKENDS.register("scipy", "HiGHS via scipy.optimize.milp")
ILP_BACKENDS.register("bnb", "pure-Python branch and bound")
