"""Configuration of the TENSAT optimizer (paper Section 6.1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "TensatConfig",
    "MATCHER_CHOICES",
    "SCHEDULER_CHOICES",
    "SEARCH_MODE_CHOICES",
    "MULTIPATTERN_JOIN_CHOICES",
    "CYCLE_FILTER_CHOICES",
    "EXTRACTION_CHOICES",
]

#: Valid values for the corresponding knobs; the CLI imports these so its
#: ``choices=`` lists can never drift from the config validation.
MATCHER_CHOICES = ("vm", "naive")
SCHEDULER_CHOICES = ("simple", "backoff")
SEARCH_MODE_CHOICES = ("trie", "per-rule")
MULTIPATTERN_JOIN_CHOICES = ("hash", "product")
CYCLE_FILTER_CHOICES = ("efficient", "vanilla", "none")
EXTRACTION_CHOICES = ("ilp", "greedy")


@dataclass(frozen=True)
class TensatConfig:
    """All knobs of the TENSAT pipeline.

    The defaults mirror the paper's experimental setup: at most 50 000 e-nodes,
    at most 15 exploration iterations, one iteration of multi-pattern rewrites
    (``k_multi = 1``), efficient cycle filtering, and ILP extraction without
    cycle constraints with a one-hour solver limit.
    """

    # ------------------------------------------------------------------ #
    # Exploration limits
    # ------------------------------------------------------------------ #
    #: Maximum number of e-nodes (paper: N_max = 50 000).
    node_limit: int = 50_000
    #: Maximum number of exploration iterations (paper: k_max = 15).
    iter_limit: int = 15
    #: Iterations in which multi-pattern rules are applied (paper: k_multi = 1).
    k_multi: int = 1
    #: Exploration wall-clock limit in seconds.
    exploration_time_limit: float = 3600.0
    #: Optional safety cap on the Cartesian-product size per multi-pattern rule
    #: per iteration (None reproduces the paper exactly).
    max_multi_combinations: Optional[int] = None
    #: Rule scheduling during exploration: "simple" (paper behaviour -- every
    #: rule fires every iteration) or "backoff" (egg-style: rules whose match
    #: count explodes are temporarily banned, keeping the e-graph focused when
    #: the node budget is much smaller than the paper's 50 000).
    scheduler: str = "simple"
    #: Backoff scheduler match budget per rule per iteration.
    scheduler_match_limit: int = 1_000
    #: Backoff scheduler base ban length in iterations.
    scheduler_ban_length: int = 5
    #: E-matcher implementation: "vm" (compiled virtual machine) or "naive"
    #: (the interpretive reference matcher).  Both yield identical match
    #: lists; "naive" exists for regression testing and benchmarking.
    matcher: str = "vm"
    #: How the VM matcher organises each iteration's search: "trie" (default)
    #: merges every rule program into one shared-prefix trie per root operator
    #: and matches all rules in a single traversal per op bucket; "per-rule"
    #: runs each rule's own compiled program.  Ignored when matcher="naive".
    #: All settings yield identical match lists and saturation trajectories.
    search_mode: str = "trie"
    #: Seed each exploration iteration's search from the e-classes dirtied by
    #: the previous iteration ("vm" only); iteration 0 is always a full search.
    delta_matching: bool = True
    #: How a multi-pattern rule's per-source match lists are combined into
    #: match combinations: "hash" (default) equi-joins on the shared-variable
    #: tuple -- index the smaller match set, probe with the other, chain joins
    #: in ascending-selectivity order for 3+ sources -- while "product"
    #: enumerates the full Cartesian product and filters (the executable
    #: spec).  Both produce identical combination lists, so the saturation
    #: trajectory is join-blind; see docs/multipattern.md.
    multipattern_join: str = "hash"

    # ------------------------------------------------------------------ #
    # Cycle handling
    # ------------------------------------------------------------------ #
    #: "efficient" (Algorithm 2), "vanilla", or "none" (requires ILP cycle constraints).
    cycle_filter: str = "efficient"

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #
    #: "ilp" or "greedy".
    extraction: str = "ilp"
    #: Include the topological-order (cycle) constraints in the ILP.
    ilp_cycle_constraints: bool = False
    #: Use integer instead of real topological-order variables.
    ilp_integer_topo: bool = False
    #: ILP solver time limit in seconds (paper: 3600).
    ilp_time_limit: float = 3600.0
    #: "scipy" (HiGHS) or "bnb" (pure-Python branch and bound).
    ilp_backend: str = "scipy"
    #: Fall back to greedy extraction when the ILP solver fails or times out.
    ilp_fallback_to_greedy: bool = True
    #: Relative MIP optimality gap (0 = prove optimality, as the paper's SCIP setup does).
    ilp_mip_gap: float = 0.0

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    #: Re-run shape validation and interface checks on the optimized graph.
    validate_output: bool = True
    #: Additionally execute original and optimized graphs on random data and
    #: compare outputs (slow; intended for tests and examples).
    verify_numerically: bool = False

    def __post_init__(self) -> None:
        if self.extraction not in EXTRACTION_CHOICES:
            raise ValueError(f"extraction must be 'ilp' or 'greedy', got {self.extraction!r}")
        if self.scheduler not in SCHEDULER_CHOICES:
            raise ValueError(f"scheduler must be 'simple' or 'backoff', got {self.scheduler!r}")
        if self.matcher not in MATCHER_CHOICES:
            raise ValueError(f"matcher must be 'vm' or 'naive', got {self.matcher!r}")
        if self.search_mode not in SEARCH_MODE_CHOICES:
            raise ValueError(f"search_mode must be 'trie' or 'per-rule', got {self.search_mode!r}")
        if self.multipattern_join not in MULTIPATTERN_JOIN_CHOICES:
            raise ValueError(
                f"multipattern_join must be 'hash' or 'product', got {self.multipattern_join!r}"
            )
        if self.cycle_filter not in CYCLE_FILTER_CHOICES:
            raise ValueError(
                f"cycle_filter must be 'efficient', 'vanilla' or 'none', got {self.cycle_filter!r}"
            )
        if self.ilp_backend not in ("scipy", "bnb"):
            raise ValueError(f"ilp_backend must be 'scipy' or 'bnb', got {self.ilp_backend!r}")
        if self.node_limit <= 0 or self.iter_limit <= 0:
            raise ValueError("node_limit and iter_limit must be positive")
        if self.k_multi < 0:
            raise ValueError("k_multi must be non-negative")
        if self.cycle_filter == "none" and self.extraction == "ilp" and not self.ilp_cycle_constraints:
            raise ValueError(
                "with cycle_filter='none' the ILP needs cycle constraints "
                "(set ilp_cycle_constraints=True) or extraction may return a cyclic graph"
            )

    def with_overrides(self, **kwargs) -> "TensatConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper_defaults(cls) -> "TensatConfig":
        """The configuration used for the paper's headline results (Table 1)."""
        return cls()

    @classmethod
    def fast(cls) -> "TensatConfig":
        """A small configuration for unit tests and quick demos."""
        return cls(node_limit=5_000, iter_limit=6, k_multi=1, ilp_time_limit=60.0)
