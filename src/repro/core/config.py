"""Configuration of the TENSAT optimizer (paper Section 6.1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.registry import (
    CONDITION_CACHES,
    CYCLE_FILTERS,
    EXTRACTORS,
    ILP_BACKENDS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    SCHEDULERS,
    SEARCH_EXECUTORS,
    SEARCH_MODES,
    SHAPE_ANALYSES,
)
from repro.egraph.parallel import ConfigError

__all__ = [
    "TensatConfig",
    "ConfigError",
    "MATCHER_CHOICES",
    "SCHEDULER_CHOICES",
    "SEARCH_MODE_CHOICES",
    "SEARCH_EXECUTOR_CHOICES",
    "MULTIPATTERN_JOIN_CHOICES",
    "CONDITION_CACHE_CHOICES",
    "CYCLE_FILTER_CHOICES",
    "EXTRACTION_CHOICES",
    "SHAPE_ANALYSIS_CHOICES",
]

#: Import-time snapshots of the registry names, kept for backward
#: compatibility.  Validation and the CLI consult the *live* registries in
#: :mod:`repro.core.registry`, so components registered after import are
#: accepted everywhere even though they are absent from these tuples.
MATCHER_CHOICES = MATCHERS.names()
SCHEDULER_CHOICES = SCHEDULERS.names()
SEARCH_MODE_CHOICES = SEARCH_MODES.names()
MULTIPATTERN_JOIN_CHOICES = MULTIPATTERN_JOINS.names()
CONDITION_CACHE_CHOICES = CONDITION_CACHES.names()
CYCLE_FILTER_CHOICES = CYCLE_FILTERS.names()
EXTRACTION_CHOICES = EXTRACTORS.names()
SHAPE_ANALYSIS_CHOICES = SHAPE_ANALYSES.names()
SEARCH_EXECUTOR_CHOICES = SEARCH_EXECUTORS.names()

#: Knob name -> the registry its value must name an entry of.
_KNOB_REGISTRIES = (
    ("extraction", EXTRACTORS),
    ("scheduler", SCHEDULERS),
    ("matcher", MATCHERS),
    ("search_mode", SEARCH_MODES),
    ("multipattern_join", MULTIPATTERN_JOINS),
    ("condition_cache", CONDITION_CACHES),
    ("shape_analysis", SHAPE_ANALYSES),
    ("cycle_filter", CYCLE_FILTERS),
    ("ilp_backend", ILP_BACKENDS),
    ("search_executor", SEARCH_EXECUTORS),
)


@dataclass(frozen=True)
class TensatConfig:
    """All knobs of the TENSAT pipeline.

    The defaults mirror the paper's experimental setup: at most 50 000 e-nodes,
    at most 15 exploration iterations, one iteration of multi-pattern rewrites
    (``k_multi = 1``), efficient cycle filtering, and ILP extraction without
    cycle constraints with a one-hour solver limit.
    """

    # ------------------------------------------------------------------ #
    # Exploration limits
    # ------------------------------------------------------------------ #
    #: Maximum number of e-nodes (paper: N_max = 50 000).
    node_limit: int = 50_000
    #: Maximum number of exploration iterations (paper: k_max = 15).
    iter_limit: int = 15
    #: Iterations in which multi-pattern rules are applied (paper: k_multi = 1).
    k_multi: int = 1
    #: Exploration wall-clock limit in seconds.
    exploration_time_limit: float = 3600.0
    #: Optional safety cap on the Cartesian-product size per multi-pattern rule
    #: per iteration (None reproduces the paper exactly).
    max_multi_combinations: Optional[int] = None
    #: Rule scheduling during exploration: "simple" (paper behaviour -- every
    #: rule fires every iteration) or "backoff" (egg-style: rules whose match
    #: count explodes are temporarily banned, keeping the e-graph focused when
    #: the node budget is much smaller than the paper's 50 000).
    scheduler: str = "simple"
    #: Backoff scheduler match budget per rule per iteration.
    scheduler_match_limit: int = 1_000
    #: Backoff scheduler base ban length in iterations.
    scheduler_ban_length: int = 5
    #: E-matcher implementation: "vm" (compiled virtual machine) or "naive"
    #: (the interpretive reference matcher).  Both yield identical match
    #: lists; "naive" exists for regression testing and benchmarking.
    matcher: str = "vm"
    #: How the VM matcher organises each iteration's search: "trie" (default)
    #: merges every rule program into one shared-prefix trie per root operator
    #: and matches all rules in a single traversal per op bucket; "per-rule"
    #: runs each rule's own compiled program.  Ignored when matcher="naive".
    #: All settings yield identical match lists and saturation trajectories.
    search_mode: str = "trie"
    #: Seed each exploration iteration's search from the e-classes dirtied by
    #: the previous iteration ("vm" only); iteration 0 is always a full search.
    delta_matching: bool = True
    #: How a multi-pattern rule's per-source match lists are combined into
    #: match combinations: "hash" (default) equi-joins on the shared-variable
    #: tuple -- index the smaller match set, probe with the other, chain joins
    #: in ascending-selectivity order for 3+ sources -- while "product"
    #: enumerates the full Cartesian product and filters (the executable
    #: spec).  Both produce identical combination lists, so the saturation
    #: trajectory is join-blind; see docs/multipattern.md.
    multipattern_join: str = "hash"
    #: Shape/condition-check caching: "auto" (default) resolves against the
    #: e-graph's analysis -- "off" when the shape analysis serves compiled
    #: per-class facts (a direct check is then an O(1) lookup the memo cannot
    #: beat), "memo" on the on-demand inference path.  "memo" memoizes
    #: condition verdicts per (rule, canonical binding), invalidated at each
    #: rebuild for the e-classes whose state changed; "off" re-evaluates
    #: every check.  Identical match lists (and trajectories) in every
    #: setting -- pinned by the golden tests; see docs/apply_plan.md.
    condition_cache: str = "auto"
    #: How rewrite conditions consume the tensor e-class analysis: "on"
    #: (default) precomputes interned per-e-class facts and compiles
    #: ``targets_shape_valid`` targets into flat programs over them; "off"
    #: re-runs bottom-up shape inference per candidate binding (the
    #: executable spec).  Bit-identical trajectories either way -- pinned by
    #: the golden tests; see docs/shape_analysis.md.
    shape_analysis: str = "on"
    #: Number of parallel search shards per exploration iteration.  1 (the
    #: default) sweeps the rule-trie buckets in-line; > 1 fans the buckets
    #: out to ``search_executor`` workers and requires matcher="vm" with
    #: search_mode="trie".  Bit-identical trajectories for every jobs count
    #: and executor -- pinned by the golden tests; see docs/parallel.md.
    search_jobs: int = 1
    #: Which search executor sweeps the shards when ``search_jobs > 1``:
    #: "thread" (shared frozen e-graph, no copying; overlaps only without a
    #: GIL), "process" (pickled snapshot per iteration; escapes the GIL), or
    #: "serial" (shards swept in-line -- the determinism fixture).
    search_executor: str = "thread"

    # ------------------------------------------------------------------ #
    # Cycle handling
    # ------------------------------------------------------------------ #
    #: "efficient" (Algorithm 2), "vanilla", or "none" (requires ILP cycle constraints).
    cycle_filter: str = "efficient"

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #
    #: "ilp", "greedy", or "portfolio" (anytime greedy -> BnB -> ILP race
    #: under ``extraction_deadline``; see docs/extraction.md).
    extraction: str = "ilp"
    #: Prune dominated e-nodes and fix singleton e-classes before solving
    #: (optimum-preserving; shrinks the ILP variable space).
    extraction_prune: bool = True
    #: Seed the exact solvers from the greedy solution (BnB incumbent /
    #: objective cutoff for HiGHS).  Optimum-preserving.
    ilp_warm_start: bool = True
    #: Total wall-clock budget in seconds for extraction="portfolio".
    extraction_deadline: float = 60.0
    #: Include the topological-order (cycle) constraints in the ILP.
    ilp_cycle_constraints: bool = False
    #: Use integer instead of real topological-order variables.
    ilp_integer_topo: bool = False
    #: ILP solver time limit in seconds (paper: 3600).
    ilp_time_limit: float = 3600.0
    #: "scipy" (HiGHS) or "bnb" (pure-Python branch and bound).
    ilp_backend: str = "scipy"
    #: Fall back to greedy extraction when the ILP solver fails or times out.
    ilp_fallback_to_greedy: bool = True
    #: Relative MIP optimality gap (0 = prove optimality, as the paper's SCIP setup does).
    ilp_mip_gap: float = 0.0

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    #: Re-run shape validation and interface checks on the optimized graph.
    validate_output: bool = True
    #: Additionally execute original and optimized graphs on random data and
    #: compare outputs (slow; intended for tests and examples).
    verify_numerically: bool = False

    def __post_init__(self) -> None:
        # Strategy knobs validate against the live component registries, so
        # a third-party extractor/scheduler registered before this config is
        # constructed is accepted without touching this module.
        for knob, registry in _KNOB_REGISTRIES:
            registry.check(getattr(self, knob))
        if self.node_limit <= 0 or self.iter_limit <= 0:
            raise ValueError("node_limit and iter_limit must be positive")
        if self.k_multi < 0:
            raise ValueError("k_multi must be non-negative")
        if (
            self.cycle_filter == "none"
            and self.extraction in ("ilp", "portfolio")
            and not self.ilp_cycle_constraints
        ):
            raise ValueError(
                "with cycle_filter='none' the ILP needs cycle constraints "
                "(set ilp_cycle_constraints=True) or extraction may return a cyclic graph"
            )
        if self.extraction_deadline <= 0:
            raise ValueError(
                f"extraction_deadline must be positive, got {self.extraction_deadline}"
            )
        if self.search_jobs < 1:
            raise ConfigError(f"search_jobs must be >= 1, got {self.search_jobs}")
        if self.search_jobs > 1 and not (self.matcher == "vm" and self.search_mode == "trie"):
            raise ConfigError(
                "search_jobs > 1 requires matcher='vm' with search_mode='trie' "
                f"(got matcher={self.matcher!r}, search_mode={self.search_mode!r}): "
                "only the rule trie's op buckets shard across workers"
            )

    def with_overrides(self, **kwargs) -> "TensatConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper_defaults(cls) -> "TensatConfig":
        """The configuration used for the paper's headline results (Table 1)."""
        return cls()

    @classmethod
    def fast(cls) -> "TensatConfig":
        """A small configuration for unit tests and quick demos."""
        return cls(node_limit=5_000, iter_limit=6, k_multi=1, ilp_time_limit=60.0)
