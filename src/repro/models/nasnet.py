"""NasNet-A (Zoph et al., 2018): architecture-search cells.

A (simplified) normal cell combines five pairwise blocks; each block adds the
results of two branches chosen among separable convolutions (depthwise +
pointwise), pooling, and identity, all reading from the two cell inputs.  The
pairs of convolution chains feeding an addition are the Figure-10 structure
("two convs into two convs into an add" collapse to two convolutions over
concatenated weights), and the parallel separable convolutions over the same
input feed the Figure-9 merge.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding

__all__ = ["build_nasnet"]

_PRESETS: Dict[str, Dict[str, int]] = {
    "tiny": {"image": 14, "channels": 8, "cells": 1, "blocks": 2},
    "small": {"image": 14, "channels": 16, "cells": 2, "blocks": 3},
    "full": {"image": 28, "channels": 32, "cells": 4, "blocks": 5},
}


def _separable(b: GraphBuilder, x: int, name: str, channels: int, k: int) -> int:
    """Separable convolution: depthwise (grouped, one group per channel) then pointwise 1x1."""
    w_dw = b.weight(f"{name}_dw", (channels, 1, k, k))
    dw = b.conv(x, w_dw, stride=(1, 1), padding=Padding.SAME, activation=Activation.NONE)
    w_pw = b.weight(f"{name}_pw", (channels, channels, 1, 1))
    return b.conv(dw, w_pw, stride=(1, 1), padding=Padding.SAME, activation=Activation.NONE)


def _plain_conv(b: GraphBuilder, x: int, name: str, channels: int, k: int) -> int:
    w = b.weight(name, (channels, channels, k, k))
    return b.conv(x, w, stride=(1, 1), padding=Padding.SAME, activation=Activation.NONE)


def _normal_cell(b: GraphBuilder, prev: int, cur: int, name: str, channels: int, blocks: int) -> int:
    """A NasNet-A normal cell with ``blocks`` pairwise-combined branches."""
    outputs = []
    for blk in range(blocks):
        left_src = cur if blk % 2 == 0 else prev
        right_src = prev if blk % 3 == 0 else cur
        if blk % 3 == 0:
            # Two stacked plain convolutions on each side feeding an add: the
            # Figure-10 pattern.
            left = _plain_conv(b, _plain_conv(b, left_src, f"{name}_b{blk}_l1", channels, 3),
                               f"{name}_b{blk}_l2", channels, 1)
            right = _plain_conv(b, _plain_conv(b, right_src, f"{name}_b{blk}_r1", channels, 3),
                                f"{name}_b{blk}_r2", channels, 1)
        elif blk % 3 == 1:
            left = _separable(b, left_src, f"{name}_b{blk}_sep3", channels, 3)
            right = b.poolavg(right_src, (3, 3), (1, 1), Padding.SAME)
        else:
            left = _separable(b, left_src, f"{name}_b{blk}_sep5", channels, 5)
            right = b.poolmax(right_src, (3, 3), (1, 1), Padding.SAME)
        outputs.append(b.relu(b.ewadd(left, right)))

    cell_out = outputs[0]
    for other in outputs[1:]:
        cell_out = b.ewadd(cell_out, other)
    return cell_out


def build_nasnet(scale: str = "small", **overrides) -> TensorGraph:
    """Build a NasNet-A-style inference graph.

    Overrides: ``image``, ``channels``, ``cells``, ``blocks``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    image, channels, cells, blocks = params["image"], params["channels"], params["cells"], params["blocks"]

    b = GraphBuilder(f"nasnet-{scale}")
    x = b.input("image", (1, 3, image, image))
    w_stem = b.weight("stem", (channels, 3, 3, 3))
    x = b.conv(x, w_stem, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)

    prev, cur = x, x
    for c in range(cells):
        nxt = _normal_cell(b, prev, cur, f"cell{c}", channels, blocks)
        prev, cur = cur, nxt

    final_hw = b.data(cur).shape[2]
    out = b.poolavg(cur, (final_hw, final_hw), (final_hw, final_hw), Padding.VALID)
    return b.finish(outputs=[out])
