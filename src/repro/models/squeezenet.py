"""SqueezeNet (Iandola et al., 2017): fire modules.

A fire module squeezes channels with a 1x1 convolution and then expands with a
1x1 and a 3x3 convolution *that share the squeeze output*, concatenating the
two expansions.  The shared-input expand convolutions have different kernel
sizes, so merging them needs the ``enlarge``-based convolution merge; this is
the structure behind the paper's 24.5% speedup on SqueezeNet.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding

__all__ = ["build_squeezenet"]

_PRESETS: Dict[str, Dict[str, object]] = {
    "tiny": {"image": 16, "fire_modules": 2, "squeeze": 4, "expand": 8},
    "small": {"image": 28, "fire_modules": 4, "squeeze": 8, "expand": 16},
    "full": {"image": 56, "fire_modules": 8, "squeeze": 16, "expand": 32},
}


def _fire(b: GraphBuilder, x: int, name: str, in_channels: int, squeeze: int, expand: int) -> int:
    """One fire module: squeeze 1x1 -> (expand 1x1 || expand 3x3) -> concat."""
    w_squeeze = b.weight(f"{name}_squeeze", (squeeze, in_channels, 1, 1))
    squeezed = b.conv(x, w_squeeze, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)

    w_e1 = b.weight(f"{name}_expand1x1", (expand, squeeze, 1, 1))
    w_e3 = b.weight(f"{name}_expand3x3", (expand, squeeze, 3, 3))
    e1 = b.conv(squeezed, w_e1, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)
    e3 = b.conv(squeezed, w_e3, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)
    return b.concat(1, e1, e3)


def build_squeezenet(scale: str = "small", **overrides) -> TensorGraph:
    """Build a SqueezeNet-style inference graph.

    Overrides: ``image``, ``fire_modules``, ``squeeze``, ``expand``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    image = int(params["image"])
    n_fire = int(params["fire_modules"])
    squeeze = int(params["squeeze"])
    expand = int(params["expand"])

    b = GraphBuilder(f"squeezenet-{scale}")
    x = b.input("image", (1, 3, image, image))
    w_stem = b.weight("stem", (squeeze * 2, 3, 3, 3))
    x = b.conv(x, w_stem, stride=(2, 2), padding=Padding.SAME, activation=Activation.RELU)
    x = b.poolmax(x, (2, 2), (2, 2), Padding.VALID)
    channels = squeeze * 2

    for i in range(n_fire):
        x = _fire(b, x, f"fire{i}", channels, squeeze, expand)
        channels = 2 * expand
        if i == n_fire // 2:
            x = b.poolmax(x, (2, 2), (2, 2), Padding.VALID)

    # Classifier: 1x1 conv to "classes" then global average pooling.
    classes = max(8, expand)
    w_cls = b.weight("classifier", (classes, channels, 1, 1))
    x = b.conv(x, w_cls, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)
    final_hw = b.data(x).shape[2]
    x = b.poolavg(x, (final_hw, final_hw), (final_hw, final_hw), Padding.VALID)
    return b.finish(outputs=[x])
