"""VGG-19 (Liu & Deng, 2015): a plain chain of 3x3 convolutions and pooling.

VGG has no parallel branches, so the only rewrite opportunities are local
(activation fusion, and merging the classifier matmuls when the e-graph
exposes them); the paper reports a comparatively small 8.9% speedup that both
TASO and TENSAT reach.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding

__all__ = ["build_vgg"]

_PRESETS: Dict[str, Dict[str, object]] = {
    "tiny": {"image": 16, "stages": ((8, 1),), "fc": 32},
    "small": {"image": 32, "stages": ((8, 2), (16, 2)), "fc": 64},
    "full": {"image": 64, "stages": ((16, 2), (32, 2), (64, 4), (64, 4)), "fc": 128},
}


def build_vgg(scale: str = "small", **overrides) -> TensorGraph:
    """Build a VGG-style inference graph.

    Overrides: ``image``, ``stages`` (sequence of ``(channels, convs)``), ``fc``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    image = int(params["image"])
    stages: Sequence[Tuple[int, int]] = tuple(params["stages"])
    fc = int(params["fc"])

    b = GraphBuilder(f"vgg-{scale}")
    x = b.input("image", (1, 3, image, image))
    in_c = 3
    for stage, (channels, convs) in enumerate(stages):
        for conv in range(convs):
            w = b.weight(f"s{stage}c{conv}", (channels, in_c, 3, 3))
            x = b.conv(x, w, stride=(1, 1), padding=Padding.SAME, activation=Activation.NONE)
            x = b.relu(x)
            in_c = channels
        x = b.poolmax(x, (2, 2), (2, 2), Padding.VALID)

    # Classifier: flatten then three fully-connected layers (as in VGG).
    data = b.data(x)
    feat = data.shape[1] * data.shape[2] * data.shape[3]
    x = b.reshape(x, (1, feat))
    w1 = b.weight("fc1", (feat, fc))
    w2 = b.weight("fc2", (fc, fc))
    w3 = b.weight("fc3", (fc, max(fc // 4, 8)))
    x = b.relu(b.matmul(x, w1))
    x = b.relu(b.matmul(x, w2))
    x = b.matmul(x, w3)
    return b.finish(outputs=[x])
