"""Inception-v3 (Szegedy et al., 2016): inception modules with parallel branches.

Every inception module applies several convolution branches to the *same*
input (1x1, 1x1->3x3, 1x1->5x5 (factorised to two 3x3), pool->1x1) and
concatenates them.  The parallel 1x1 convolutions sharing the module input are
the textbook Figure-9 merge opportunity.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding

__all__ = ["build_inception"]

_PRESETS: Dict[str, Dict[str, int]] = {
    "tiny": {"image": 16, "channels": 8, "modules": 1},
    "small": {"image": 28, "channels": 16, "modules": 2},
    "full": {"image": 56, "channels": 32, "modules": 4},
}


def _conv_bn_relu(b: GraphBuilder, x: int, name: str, in_c: int, out_c: int, k: int, stride: int = 1) -> int:
    w = b.weight(name, (out_c, in_c, k, k))
    return b.conv(x, w, stride=(stride, stride), padding=Padding.SAME, activation=Activation.RELU)


def _inception_module(b: GraphBuilder, x: int, name: str, in_c: int, width: int) -> int:
    """One inception-A style module with four branches concatenated on channels."""
    # Branch 1: 1x1.
    b1 = _conv_bn_relu(b, x, f"{name}_b1_1x1", in_c, width, 1)
    # Branch 2: 1x1 -> 3x3.
    b2 = _conv_bn_relu(b, x, f"{name}_b2_1x1", in_c, width, 1)
    b2 = _conv_bn_relu(b, b2, f"{name}_b2_3x3", width, width, 3)
    # Branch 3: 1x1 -> 3x3 -> 3x3 (factorised 5x5).
    b3 = _conv_bn_relu(b, x, f"{name}_b3_1x1", in_c, width, 1)
    b3 = _conv_bn_relu(b, b3, f"{name}_b3_3x3a", width, width, 3)
    b3 = _conv_bn_relu(b, b3, f"{name}_b3_3x3b", width, width, 3)
    # Branch 4: avg pool -> 1x1.
    b4 = b.poolavg(x, (3, 3), (1, 1), Padding.SAME)
    b4 = _conv_bn_relu(b, b4, f"{name}_b4_1x1", in_c, width, 1)

    return b.concat(1, b1, b2, b3, b4)


def build_inception(scale: str = "small", **overrides) -> TensorGraph:
    """Build an Inception-v3-style inference graph.

    Overrides: ``image``, ``channels``, ``modules``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    image, channels, modules = params["image"], params["channels"], params["modules"]

    b = GraphBuilder(f"inception-{scale}")
    x = b.input("image", (1, 3, image, image))
    x = _conv_bn_relu(b, x, "stem_conv", 3, channels, 3, stride=2)
    x = b.poolmax(x, (3, 3), (2, 2), Padding.SAME)

    in_c = channels
    width = channels
    for m in range(modules):
        x = _inception_module(b, x, f"mixed{m}", in_c, width)
        in_c = 4 * width

    final_hw = b.data(x).shape[2]
    x = b.poolavg(x, (final_hw, final_hw), (final_hw, final_hw), Padding.VALID)
    # Classifier matmul over flattened features.
    feat = b.data(x).shape[1]
    x = b.reshape(x, (1, feat))
    w_cls = b.weight("classifier", (feat, max(feat // 2, 8)))
    x = b.matmul(x, w_cls)
    return b.finish(outputs=[x])
