"""ResNeXt-50 (Xie et al., 2017): residual bottleneck blocks with grouped convolutions.

Each block reduces channels with a 1x1 convolution, applies a grouped 3x3
convolution (cardinality groups), expands back with another 1x1 convolution,
and adds the identity shortcut.  The 1x1 convolutions of sibling blocks and
the projection shortcuts provide shared-input convolution merge opportunities
(Figure 9), which is where the paper's 8.8% speedup comes from.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding

__all__ = ["build_resnext"]

_PRESETS: Dict[str, Dict[str, object]] = {
    "tiny": {"image": 16, "stem_channels": 8, "stage_blocks": (1,), "cardinality": 4},
    "small": {"image": 28, "stem_channels": 16, "stage_blocks": (2, 2), "cardinality": 8},
    "full": {"image": 56, "stem_channels": 32, "stage_blocks": (3, 4, 3), "cardinality": 32},
}


def _bottleneck(
    b: GraphBuilder,
    x: int,
    name: str,
    in_channels: int,
    bottleneck_channels: int,
    out_channels: int,
    cardinality: int,
    stride: int,
) -> int:
    """A ResNeXt bottleneck: 1x1 reduce -> grouped 3x3 -> 1x1 expand + shortcut."""
    w_reduce = b.weight(f"{name}_reduce", (bottleneck_channels, in_channels, 1, 1))
    reduced = b.conv(x, w_reduce, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)

    group_width = bottleneck_channels // cardinality
    w_group = b.weight(f"{name}_group", (bottleneck_channels, group_width, 3, 3))
    grouped = b.conv(
        reduced, w_group, stride=(stride, stride), padding=Padding.SAME, activation=Activation.RELU
    )

    w_expand = b.weight(f"{name}_expand", (out_channels, bottleneck_channels, 1, 1))
    expanded = b.conv(grouped, w_expand, stride=(1, 1), padding=Padding.SAME, activation=Activation.NONE)

    if stride != 1 or in_channels != out_channels:
        w_proj = b.weight(f"{name}_proj", (out_channels, in_channels, 1, 1))
        shortcut = b.conv(x, w_proj, stride=(stride, stride), padding=Padding.SAME, activation=Activation.NONE)
    else:
        shortcut = x
    return b.relu(b.ewadd(expanded, shortcut))


def build_resnext(scale: str = "small", **overrides) -> TensorGraph:
    """Build a ResNeXt-style inference graph.

    Overrides: ``image``, ``stem_channels``, ``stage_blocks``, ``cardinality``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    image = int(params["image"])
    stem_channels = int(params["stem_channels"])
    stage_blocks = tuple(params["stage_blocks"])
    cardinality = int(params["cardinality"])

    b = GraphBuilder(f"resnext-{scale}")
    x = b.input("image", (1, 3, image, image))
    w_stem = b.weight("stem", (stem_channels, 3, 3, 3))
    x = b.conv(x, w_stem, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)
    x = b.poolmax(x, (2, 2), (2, 2), Padding.VALID)

    channels = stem_channels
    for stage, blocks in enumerate(stage_blocks):
        out_channels = stem_channels * (2 ** (stage + 1))
        bottleneck = max(out_channels // 2, cardinality)
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            x = _bottleneck(
                b,
                x,
                name=f"s{stage}b{block}",
                in_channels=channels,
                bottleneck_channels=bottleneck,
                out_channels=out_channels,
                cardinality=cardinality,
                stride=stride,
            )
            channels = out_channels

    x = b.poolavg(x, (2, 2), (2, 2), Padding.VALID)
    return b.finish(outputs=[x])
