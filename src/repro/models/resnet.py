"""ResNet-50 (He et al., 2016): residual bottleneck blocks.

The paper experimented with ResNet-50 as well but found that TASO's rewrite
rules give no speedup on a T4; the model is included so that result (both
optimizers returning the original cost, or very close to it) can be
reproduced and used as a negative control in tests.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding

__all__ = ["build_resnet"]

_PRESETS: Dict[str, Dict[str, object]] = {
    "tiny": {"image": 16, "stem_channels": 8, "stage_blocks": (1,)},
    "small": {"image": 28, "stem_channels": 16, "stage_blocks": (2, 2)},
    "full": {"image": 56, "stem_channels": 32, "stage_blocks": (3, 4, 6, 3)},
}


def _bottleneck(b: GraphBuilder, x: int, name: str, in_c: int, mid_c: int, out_c: int, stride: int) -> int:
    w1 = b.weight(f"{name}_1x1a", (mid_c, in_c, 1, 1))
    y = b.conv(x, w1, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)
    w2 = b.weight(f"{name}_3x3", (mid_c, mid_c, 3, 3))
    y = b.conv(y, w2, stride=(stride, stride), padding=Padding.SAME, activation=Activation.RELU)
    w3 = b.weight(f"{name}_1x1b", (out_c, mid_c, 1, 1))
    y = b.conv(y, w3, stride=(1, 1), padding=Padding.SAME, activation=Activation.NONE)
    if stride != 1 or in_c != out_c:
        w_proj = b.weight(f"{name}_proj", (out_c, in_c, 1, 1))
        shortcut = b.conv(x, w_proj, stride=(stride, stride), padding=Padding.SAME, activation=Activation.NONE)
    else:
        shortcut = x
    return b.relu(b.ewadd(y, shortcut))


def build_resnet(scale: str = "small", **overrides) -> TensorGraph:
    """Build a ResNet-style inference graph.

    Overrides: ``image``, ``stem_channels``, ``stage_blocks``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    image = int(params["image"])
    stem = int(params["stem_channels"])
    stage_blocks = tuple(params["stage_blocks"])

    b = GraphBuilder(f"resnet-{scale}")
    x = b.input("image", (1, 3, image, image))
    w_stem = b.weight("stem", (stem, 3, 3, 3))
    x = b.conv(x, w_stem, stride=(1, 1), padding=Padding.SAME, activation=Activation.RELU)
    x = b.poolmax(x, (2, 2), (2, 2), Padding.VALID)

    channels = stem
    for stage, blocks in enumerate(stage_blocks):
        out_c = stem * (2 ** (stage + 1))
        mid_c = max(out_c // 4, 4)
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            x = _bottleneck(b, x, f"s{stage}b{block}", channels, mid_c, out_c, stride)
            channels = out_c

    x = b.poolavg(x, (2, 2), (2, 2), Padding.VALID)
    return b.finish(outputs=[x])
