"""BERT (Devlin et al., 2019): transformer encoder layers.

Following TASO's benchmark graph, attention is expressed over 2-D
``(sequence, hidden)`` tensors: the query/key/value projections are three
matmuls sharing the layer input (the Figure-8 pattern), attention mixes them
with further matmuls, and the feed-forward block is two more matmuls.  The
softmax is approximated by a ``sigmoid`` since Table 2 has no softmax
operator; this keeps the arithmetic structure (and therefore the rewrite
opportunities) intact.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation

__all__ = ["build_bert"]

_PRESETS: Dict[str, Dict[str, int]] = {
    "tiny": {"seq": 16, "hidden": 32, "ffn": 64, "layers": 1},
    "small": {"seq": 32, "hidden": 64, "ffn": 128, "layers": 2},
    "full": {"seq": 64, "hidden": 128, "ffn": 256, "layers": 4},
}


def _encoder_layer(b: GraphBuilder, x: int, layer: int, hidden: int, ffn: int) -> int:
    # Self-attention: Q, K, V projections share the same input.
    wq = b.weight(f"l{layer}_wq", (hidden, hidden))
    wk = b.weight(f"l{layer}_wk", (hidden, hidden))
    wv = b.weight(f"l{layer}_wv", (hidden, hidden))
    q = b.matmul(x, wq)
    k = b.matmul(x, wk)
    v = b.matmul(x, wv)

    scores = b.matmul(q, b.transpose(k, (1, 0)))
    attn = b.sigmoid(scores)  # softmax stand-in (see module docstring)
    context = b.matmul(attn, v)

    wo = b.weight(f"l{layer}_wo", (hidden, hidden))
    attn_out = b.ewadd(b.matmul(context, wo), x)  # residual connection

    # Feed-forward block.
    w1 = b.weight(f"l{layer}_ffn1", (hidden, ffn))
    w2 = b.weight(f"l{layer}_ffn2", (ffn, hidden))
    ffn_out = b.matmul(b.relu(b.matmul(attn_out, w1)), w2)
    return b.ewadd(ffn_out, attn_out)  # residual connection


def build_bert(scale: str = "small", **overrides) -> TensorGraph:
    """Build a BERT-style encoder inference graph.

    Overrides: ``seq``, ``hidden``, ``ffn``, ``layers``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    seq, hidden, ffn, layers = params["seq"], params["hidden"], params["ffn"], params["layers"]

    b = GraphBuilder(f"bert-{scale}")
    x = b.input("tokens", (seq, hidden))
    for layer in range(layers):
        x = _encoder_layer(b, x, layer, hidden, ffn)
    return b.finish(outputs=[x])
