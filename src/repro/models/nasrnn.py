"""NasRNN (Zoph & Le, 2017): an RNN cell discovered by neural architecture search.

The cell combines many small matrix multiplications of the step input ``x_t``
and the hidden state ``h_{t-1}`` through element-wise gates.  All those
matmuls share ``x_t`` or ``h_{t-1}``, which is exactly the structure the
Figure-11 rewrite (merge matmuls feeding an add) and the multi-pattern
shared-operand merges exploit -- the paper reports its largest speedup (68.9%)
on this model.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation

__all__ = ["build_nasrnn"]

_PRESETS: Dict[str, Dict[str, int]] = {
    "tiny": {"hidden": 32, "input_size": 32, "steps": 1, "gates": 4},
    "small": {"hidden": 64, "input_size": 64, "steps": 2, "gates": 8},
    "full": {"hidden": 128, "input_size": 128, "steps": 4, "gates": 8},
}


def _nas_cell(b: GraphBuilder, x: int, h: int, step: int, hidden: int, input_size: int, gates: int) -> int:
    """One NasRNN cell: ``gates`` parallel (x W_i + h U_i) gate activations combined pairwise."""
    gate_outputs = []
    for g in range(gates):
        wx = b.weight(f"cell{step}_wx{g}", (input_size, hidden))
        wh = b.weight(f"cell{step}_wh{g}", (hidden, hidden))
        pre = b.ewadd(b.matmul(x, wx), b.matmul(h, wh))
        # NasRNN alternates activation functions across gates.
        if g % 2 == 0:
            gate_outputs.append(b.relu(pre))
        elif g % 4 == 1:
            gate_outputs.append(b.sigmoid(pre))
        else:
            gate_outputs.append(b.tanh(pre))

    # Combine gates pairwise (elementwise multiply) then reduce by addition,
    # mirroring the binary combination tree of the published cell.
    combined = []
    for i in range(0, len(gate_outputs) - 1, 2):
        combined.append(b.ewmul(gate_outputs[i], gate_outputs[i + 1]))
    if len(gate_outputs) % 2 == 1:
        combined.append(gate_outputs[-1])
    new_h = combined[0]
    for other in combined[1:]:
        new_h = b.ewadd(new_h, other)
    return b.tanh(new_h)


def build_nasrnn(scale: str = "small", **overrides) -> TensorGraph:
    """Build an unrolled NasRNN inference graph.

    Overrides: ``hidden``, ``input_size``, ``steps``, ``gates``.
    """
    params = dict(_PRESETS[scale])
    params.update(overrides)
    hidden, input_size = params["hidden"], params["input_size"]
    steps, gates = params["steps"], params["gates"]

    b = GraphBuilder(f"nasrnn-{scale}")
    h = b.input("h0", (1, hidden))
    for t in range(steps):
        x = b.input(f"x{t}", (1, input_size))
        h = _nas_cell(b, x, h, t, hidden, input_size, gates)
    return b.finish(outputs=[h])
