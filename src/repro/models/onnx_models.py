"""Imported (ONNX) models as first-class benchmark graphs.

The built-in models in :mod:`repro.models.registry` are constructed
programmatically; this module is the front door for graphs that arrive from
outside as serialized ONNX files.  :func:`load_onnx_model` wraps
:func:`repro.ir.onnx_import.import_onnx` with model-layer conveniences --
a default graph name derived from the file stem and ``NAME=VALUE`` symbolic
dimension overrides in string form (the shape the CLI's ``--fix-dim`` flag
collects) -- so CLI handlers and benchmarks can treat an imported model
exactly like a registry one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.ir.graph import TensorGraph
from repro.ir.onnx_import import OnnxImportError, import_onnx

__all__ = ["load_onnx_model", "parse_dim_overrides"]


def parse_dim_overrides(pairs: Sequence[str]) -> Dict[str, int]:
    """Parse ``NAME=VALUE`` strings (the CLI's repeatable ``--fix-dim``) into
    the ``dim_overrides`` mapping :func:`import_onnx` expects.

    Raises :class:`OnnxImportError` on malformed entries so CLI handlers can
    funnel every import-path failure through one typed exception.
    """
    overrides: Dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise OnnxImportError(
                f"--fix-dim expects NAME=VALUE, got {pair!r}"
            )
        try:
            overrides[name] = int(value)
        except ValueError:
            raise OnnxImportError(
                f"--fix-dim {name}: value must be an integer, got {value!r}"
            ) from None
    return overrides


def load_onnx_model(
    path: Union[str, Path],
    name: Optional[str] = None,
    dim_overrides: Optional[Mapping[str, int]] = None,
) -> TensorGraph:
    """Import the ONNX model at ``path`` as a :class:`TensorGraph`.

    The graph name defaults to the model's embedded graph name, falling back
    to the file stem (``models/mlp_tiny.onnx`` -> ``mlp_tiny``), so
    downstream reports always have something readable.
    """
    path = Path(path)
    if not path.exists():
        raise OnnxImportError(f"ONNX file not found: {path}")
    return import_onnx(path, name=name, dim_overrides=dict(dim_overrides or {}))
