"""Benchmark model graphs.

Programmatic constructors for the inference graphs the paper evaluates on
(Section 6.1): NasRNN, BERT, ResNeXt-50, NasNet-A, SqueezeNet, VGG-19 and
Inception-v3, plus ResNet-50 (which the paper also tried and found no speedup
for on a T4).  The constructors follow each architecture's block structure --
the parts the rewrite rules act on (parallel matmuls/convolutions sharing an
input, concat/split plumbing, activation placement) -- with a ``scale`` knob
("tiny" / "small" / "full") that controls depth and width so the pure-Python
reproduction stays tractable.
"""

from repro.models.onnx_models import load_onnx_model, parse_dim_overrides
from repro.models.registry import MODEL_NAMES, build_model, model_registry

__all__ = [
    "build_model",
    "model_registry",
    "MODEL_NAMES",
    "load_onnx_model",
    "parse_dim_overrides",
]
