"""Model registry: name -> graph constructor."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ir.graph import TensorGraph

__all__ = ["MODEL_NAMES", "build_model", "model_registry"]

#: Scales supported by every constructor.
SCALES = ("tiny", "small", "full")


def model_registry() -> Dict[str, Callable[..., TensorGraph]]:
    """Map model names to their constructors (imported lazily)."""
    from repro.models.bert import build_bert
    from repro.models.inception import build_inception
    from repro.models.nasnet import build_nasnet
    from repro.models.nasrnn import build_nasrnn
    from repro.models.resnet import build_resnet
    from repro.models.resnext import build_resnext
    from repro.models.squeezenet import build_squeezenet
    from repro.models.vgg import build_vgg

    return {
        "nasrnn": build_nasrnn,
        "bert": build_bert,
        "resnext": build_resnext,
        "nasnet": build_nasnet,
        "squeezenet": build_squeezenet,
        "vgg": build_vgg,
        "inception": build_inception,
        "resnet": build_resnet,
    }


MODEL_NAMES: List[str] = [
    "nasrnn",
    "bert",
    "resnext",
    "nasnet",
    "squeezenet",
    "vgg",
    "inception",
    "resnet",
]


def build_model(name: str, scale: str = "small", **kwargs) -> TensorGraph:
    """Build a benchmark model graph by name.

    Parameters
    ----------
    name:
        One of :data:`MODEL_NAMES` (case-insensitive).
    scale:
        ``"tiny"`` (unit tests), ``"small"`` (benchmark default), or
        ``"full"`` (closest to the published architecture's block counts that
        remains tractable in pure Python).
    kwargs:
        Constructor-specific overrides (e.g. ``hidden=128``).
    """
    key = name.lower().replace("-", "").replace("_", "")
    aliases = {
        "nasneta": "nasnet",
        "resnext50": "resnext",
        "resnet50": "resnet",
        "vgg19": "vgg",
        "inceptionv3": "inception",
        "squeeze": "squeezenet",
    }
    key = aliases.get(key, key)
    registry = model_registry()
    if key not in registry:
        raise KeyError(f"unknown model {name!r}; available: {sorted(registry)}")
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return registry[key](scale=scale, **kwargs)
