"""The bounded LRU result cache of the optimization service.

Keys are ``(graph fingerprint, config digest)`` pairs (both SHA-256 hex
strings, see :mod:`repro.service.fingerprint`); values are
:class:`CachedResult` -- the serialized optimized graph plus the run's
stats, exactly what a cache-hit response needs and nothing that keeps
e-graphs alive.  Hit/miss/eviction counters feed the server's status
output and the load benchmark.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["CachedResult", "ResultCache"]

#: A cache key: (graph fingerprint, config digest).
CacheKey = Tuple[str, str]


@dataclass(frozen=True)
class CachedResult:
    """One cached optimization outcome.

    The optimized graph is stored as its serialized JSON document text
    (:func:`repro.ir.serialize.graph_to_doc`, dumped with sorted keys), so a
    cache hit replays byte-identical content without holding live graph
    objects, and the stats dict is the run's
    :meth:`~repro.core.stats.OptimizationStats.as_dict` snapshot.
    """

    graph_json: str
    stats: Dict[str, object]
    original_cost: float
    optimized_cost: float


class ResultCache:
    """A thread-safe, bounded LRU mapping with hit/miss/eviction counters.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``capacity`` is exceeded.  All operations are O(1).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when over capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe lifetime traffic)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits, misses, evictions, current size, capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
