"""The optimization service: a long-lived daemon with a result cache.

The service keeps the expensive per-process state -- the compiled rule trie,
the component registries, the rule set -- resident across requests, and
answers repeat submissions of *isomorphic* graphs straight from a bounded
LRU cache keyed on a canonical graph fingerprint plus a configuration
digest (see ``docs/service.md``).

* :mod:`repro.service.fingerprint` -- canonical, isomorphism-invariant
  graph fingerprints (:func:`graph_fingerprint`) and config digests.
* :mod:`repro.service.cache` -- the bounded LRU :class:`ResultCache` with
  hit/miss/eviction counters.
* :mod:`repro.service.server` -- the asyncio TCP daemon
  (:class:`OptimizationServer`), the protocol-agnostic request core
  (:class:`OptimizationService`), and :class:`ServiceConfig`.
* :mod:`repro.service.client` -- the blocking :class:`ServiceClient` used
  by the CLI ``submit`` subcommand, tests, and the load benchmark.
"""

from repro.service.cache import CachedResult, ResultCache
from repro.service.client import ServiceClient, ServiceError, parse_overrides
from repro.service.fingerprint import config_digest, graph_fingerprint
from repro.service.server import (
    OptimizationServer,
    OptimizationService,
    ServerThread,
    ServiceConfig,
    run_server,
)

__all__ = [
    "CachedResult",
    "OptimizationServer",
    "OptimizationService",
    "ResultCache",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "config_digest",
    "graph_fingerprint",
    "parse_overrides",
    "run_server",
]
