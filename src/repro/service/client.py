"""Blocking client for the optimization service.

One connection per request keeps the client trivially robust (no stream
state to resynchronise after an error); the daemon happily serves many
short-lived connections.  Used by the CLI ``submit`` subcommand, the test
suite, the CI smoke script, and the load benchmark.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterable, Optional

from repro.ir.graph import TensorGraph
from repro.ir.serialize import graph_from_doc, graph_to_doc

__all__ = ["ServiceClient", "ServiceError", "parse_overrides"]


class ServiceError(RuntimeError):
    """An error response (or transport failure); ``type`` is the typed code."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"[{error_type}] {message}")
        self.type = error_type


def parse_overrides(pairs: Iterable[str]) -> Dict[str, object]:
    """Parse CLI ``KEY=VALUE`` override strings into a config-override dict.

    Values are decoded leniently (int, float, true/false, none, else string);
    the server re-coerces and validates against the config dataclass and the
    component registries, so a bad name or value comes back as a typed
    ``config`` error naming the problem.
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"override {pair!r} is not of the form KEY=VALUE")
        lowered = raw.lower()
        value: object
        if lowered in ("true", "false"):
            value = lowered == "true"
        elif lowered in ("none", "null"):
            value = None
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key] = value
    return overrides


class ServiceClient:
    """Talk to a running optimization service over its line-JSON protocol."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8077, timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request payload; return the raw response dict."""
        try:
            with socket.create_connection((self.host, self.port), timeout=self.timeout) as sock:
                sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
                with sock.makefile("rb") as stream:
                    line = stream.readline()
        except OSError as exc:
            raise ServiceError("connection", f"cannot reach {self.host}:{self.port}: {exc}") from exc
        if not line:
            raise ServiceError("connection", "server closed the connection without responding")
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError("protocol", f"malformed response line: {exc}") from exc

    @staticmethod
    def raise_for_error(response: Dict[str, object]) -> Dict[str, object]:
        """Raise :class:`ServiceError` when ``response`` is an error; else pass it through."""
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(str(error.get("type", "unknown")), str(error.get("message", response)))
        return response

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def optimize(
        self,
        graph: Optional[TensorGraph] = None,
        graph_doc: Optional[Dict[str, object]] = None,
        config: Optional[Dict[str, object]] = None,
        check: bool = True,
    ) -> Dict[str, object]:
        """Submit a graph (or a pre-serialized document) for optimization.

        The response carries the optimized graph document (decode it with
        :meth:`optimized_graph`), the run's stats, the cache tier
        (``"hit"`` / ``"miss"``), and the fingerprint / config digest that
        keyed the cache.  With ``check=False`` error responses are returned
        instead of raised.
        """
        if (graph is None) == (graph_doc is None):
            raise ValueError("pass exactly one of graph / graph_doc")
        doc = graph_to_doc(graph) if graph is not None else graph_doc
        response = self.request({"op": "optimize", "graph": doc, "config": config or {}})
        return self.raise_for_error(response) if check else response

    @staticmethod
    def optimized_graph(response: Dict[str, object]) -> TensorGraph:
        """Decode the optimized graph out of an optimize response."""
        return graph_from_doc(response["graph"])

    def status(self) -> Dict[str, object]:
        """The server's status counters (cache traffic, queue wait, uptime)."""
        return self.raise_for_error(self.request({"op": "status"}))["status"]

    def ping(self) -> bool:
        """True when the server answers the ping op."""
        return bool(self.raise_for_error(self.request({"op": "ping"})).get("ok"))

    def shutdown(self) -> None:
        """Ask the server to shut down cleanly."""
        self.raise_for_error(self.request({"op": "shutdown"}))
