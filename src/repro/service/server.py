"""The optimization service daemon.

A long-lived asyncio TCP server over :func:`repro.core.batch.optimize_many`
that keeps per-process state resident across requests: the compiled rule
trie (compiled once per (matcher, search_mode) and forked per request), the
rule set, the cost model, and the :class:`~repro.service.cache.ResultCache`
keyed on ``(graph fingerprint, config digest)``.

Wire protocol (``docs/service.md``): one JSON object per line, one JSON
response line per request, over a plain TCP stream::

    {"op": "optimize", "graph": {<graph_to_doc document>}, "config": {...}}
    {"op": "status"} / {"op": "ping"} / {"op": "shutdown"}

Responses carry ``"ok": true`` plus op-specific fields, or ``"ok": false``
with a typed ``error`` object (``type`` in ``protocol`` / ``serialize`` /
``config`` / ``queue_full`` / ``timeout`` / ``internal``).  Cache-missed
optimize requests run on a bounded thread pool (``max_concurrency``
workers, at most ``queue_limit`` requests waiting, ``request_timeout``
seconds per request); everything above the admission limit is rejected
immediately with ``queue_full`` rather than queued without bound.

The request core (:class:`OptimizationService`) is transport-agnostic --
tests and the load benchmark drive it through :class:`ServerThread`, the
CLI ``serve`` subcommand through :func:`run_server`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core.batch import compile_shared_trie, optimize_many
from repro.core.config import ConfigError, TensatConfig
from repro.costs.model import AnalyticCostModel, CostModel
from repro.ir.serialize import SerializeError, graph_from_doc, graph_to_doc
from repro.rules.library import RuleSet, default_ruleset
from repro.service.cache import CachedResult, ResultCache
from repro.service.fingerprint import config_digest, graph_fingerprint

__all__ = [
    "PROTOCOL_VERSION",
    "OptimizationServer",
    "OptimizationService",
    "RequestError",
    "ServerThread",
    "ServiceConfig",
    "run_server",
]

PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of the service daemon (not the optimizer)."""

    #: Interface the TCP server binds.
    host: str = "127.0.0.1"
    #: Port to bind (0 = pick an ephemeral port; the bound port is reported).
    port: int = 8077
    #: Worker threads running cache-missed optimizations concurrently.
    max_concurrency: int = 2
    #: Requests allowed to wait for a worker beyond the running ones;
    #: admission above ``max_concurrency + queue_limit`` fails fast with a
    #: typed ``queue_full`` error.
    queue_limit: int = 16
    #: Per-request wall-clock budget in seconds; exceeding it returns a typed
    #: ``timeout`` error (the worker thread finishes in the background, but
    #: its result is not cached).
    request_timeout: float = 300.0
    #: Bounded LRU capacity of the result cache (entries).
    cache_capacity: int = 256

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {self.request_timeout}")
        if self.cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {self.cache_capacity}")


class RequestError(Exception):
    """A typed request failure; ``code`` keys the error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _coerce_override(name: str, value: object, reference: object) -> object:
    """Coerce a JSON / CLI override value to the config field's type."""
    if value is None or reference is None:
        return value
    if isinstance(reference, bool):
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false", "1", "0"):
            return value.lower() in ("true", "1")
        raise RequestError("config", f"config field {name!r} expects a boolean, got {value!r}")
    if isinstance(reference, int) and not isinstance(reference, bool):
        if isinstance(value, bool):
            raise RequestError("config", f"config field {name!r} expects an integer, got {value!r}")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise RequestError(
                "config", f"config field {name!r} expects an integer, got {value!r}"
            ) from None
    if isinstance(reference, float):
        try:
            return float(value)
        except (TypeError, ValueError):
            raise RequestError("config", f"config field {name!r} expects a number, got {value!r}") from None
    if isinstance(reference, str):
        if not isinstance(value, str):
            raise RequestError("config", f"config field {name!r} expects a string, got {value!r}")
        return value
    return value


class OptimizationService:
    """The transport-agnostic request core of the daemon.

    Owns the resident state (rule set, cost model, compiled tries, result
    cache, worker pool) and turns request payload dicts into response dicts.
    One instance serves many connections; all state is thread-safe.
    """

    def __init__(
        self,
        service_config: Optional[ServiceConfig] = None,
        base_config: Optional[TensatConfig] = None,
        rules: Optional[RuleSet] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.config = service_config if service_config is not None else ServiceConfig()
        #: Per-request ``config`` overrides apply on top of this base; the
        #: default is the fast profile -- a service exists for interactive
        #: traffic, and callers opt into paper-scale limits per request.
        self.base_config = base_config if base_config is not None else TensatConfig.fast()
        self.rules = rules if rules is not None else default_ruleset()
        self.cost_model = cost_model if cost_model is not None else AnalyticCostModel()
        self.cache = ResultCache(self.config.cache_capacity)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency, thread_name_prefix="repro-service"
        )
        self._tries: Dict[Tuple[str, str], object] = {}
        self._lock = threading.Lock()
        self._admitted = 0  # optimize requests queued or running
        self._started_at = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._errors = 0
        self._queue_seconds_total = 0.0
        self._optimize_seconds_total = 0.0

    # ------------------------------------------------------------------ #
    # Resident compiled state
    # ------------------------------------------------------------------ #

    def shared_trie(self, config: TensatConfig):
        """The resident compiled rule trie for ``config``'s search path (or None).

        Compiled at most once per (matcher, search_mode) over the service's
        rule set; callers receive a :meth:`fork` with a private delta cache,
        so concurrent requests never share mutable matcher state.
        """
        key = (config.matcher, config.search_mode)
        with self._lock:
            if key not in self._tries:
                self._tries[key] = compile_shared_trie(self.rules, config)
            trie = self._tries[key]
        return trie.fork() if trie is not None else None

    def resolve_config(self, overrides: object) -> TensatConfig:
        """Apply per-request overrides to the base config, with typed errors.

        Field names are validated against the :class:`TensatConfig`
        dataclass, values are coerced to the field types, and construction
        re-runs the registry validation -- an unknown extractor / scheduler /
        matcher name fails here with a ``config`` error naming the choices.
        """
        if overrides is None:
            return self.base_config
        if not isinstance(overrides, Mapping):
            raise RequestError("config", f"config overrides must be an object, got {type(overrides).__name__}")
        if not overrides:
            return self.base_config
        known = {f.name: getattr(self.base_config, f.name) for f in dataclass_fields(TensatConfig)}
        coerced = {}
        for name, value in overrides.items():
            if name not in known:
                raise RequestError("config", f"unknown config field {name!r}")
            coerced[name] = _coerce_override(name, value, known[name])
        try:
            return self.base_config.with_overrides(**coerced)
        except (ConfigError, ValueError, TypeError) as exc:
            raise RequestError("config", str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def handle(self, payload: object) -> Dict[str, object]:
        """One request payload -> one response dict (never raises)."""
        op = payload.get("op") if isinstance(payload, dict) else None
        try:
            if not isinstance(payload, dict):
                raise RequestError("protocol", "request must be a JSON object")
            if op == "optimize":
                response = await self._handle_optimize(payload)
            elif op == "status":
                response = {"ok": True, "op": "status", "status": self.status_payload()}
            elif op == "ping":
                response = {"ok": True, "op": "ping", "protocol": PROTOCOL_VERSION}
            elif op == "shutdown":
                response = {"ok": True, "op": "shutdown"}
            else:
                raise RequestError("protocol", f"unknown op {op!r}")
        except RequestError as exc:
            response = {"ok": False, "op": op, "error": {"type": exc.code, "message": str(exc)}}
        except Exception as exc:  # pragma: no cover - defensive boundary
            response = {
                "ok": False,
                "op": op,
                "error": {"type": "internal", "message": f"{type(exc).__name__}: {exc}"},
            }
        with self._lock:
            key = op if isinstance(op, str) else "<invalid>"
            self._requests[key] = self._requests.get(key, 0) + 1
            if not response.get("ok"):
                self._errors += 1
        return response

    async def _handle_optimize(self, payload: Dict[str, object]) -> Dict[str, object]:
        graph_doc = payload.get("graph")
        if graph_doc is None:
            raise RequestError("protocol", "optimize request needs a 'graph' field")
        config = self.resolve_config(payload.get("config"))
        try:
            graph = graph_from_doc(graph_doc)
        except SerializeError as exc:
            raise RequestError("serialize", str(exc)) from exc

        fingerprint = graph_fingerprint(graph)
        digest = config_digest(config, rules=self.rules, cost_model=self.cost_model)
        key = (fingerprint, digest)
        cached = self.cache.get(key)
        if cached is not None:
            return self._optimize_response(cached, "hit", fingerprint, digest, 0.0, 0.0)

        with self._lock:
            if self._admitted >= self.config.max_concurrency + self.config.queue_limit:
                raise RequestError(
                    "queue_full",
                    f"service is at capacity ({self._admitted} requests admitted, "
                    f"limit {self.config.max_concurrency} running + "
                    f"{self.config.queue_limit} queued); retry later",
                )
            self._admitted += 1
        try:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                self._pool, self._optimize_sync, graph, config, time.perf_counter()
            )
            try:
                cached, queue_seconds, optimize_seconds = await asyncio.wait_for(
                    future, timeout=self.config.request_timeout
                )
            except asyncio.TimeoutError:
                raise RequestError(
                    "timeout",
                    f"request exceeded the {self.config.request_timeout}s budget "
                    "(the run keeps executing in the background but is not cached)",
                ) from None
        finally:
            with self._lock:
                self._admitted -= 1

        self.cache.put(key, cached)
        return self._optimize_response(
            cached, "miss", fingerprint, digest, queue_seconds, optimize_seconds
        )

    def _optimize_sync(self, graph, config: TensatConfig, enqueued_at: float):
        """Worker-thread body: one cache-missed optimization end-to-end."""
        queue_seconds = time.perf_counter() - enqueued_at
        start = time.perf_counter()
        result = optimize_many(
            [graph],
            cost_model=self.cost_model,
            rules=self.rules,
            config=config,
            shared_trie=self.shared_trie(config),
        )[0]
        optimize_seconds = time.perf_counter() - start
        cached = CachedResult(
            graph_json=json.dumps(graph_to_doc(result.optimized), sort_keys=True),
            stats=result.stats.as_dict(),
            original_cost=result.original_cost,
            optimized_cost=result.optimized_cost,
        )
        with self._lock:
            self._queue_seconds_total += queue_seconds
            self._optimize_seconds_total += optimize_seconds
        return cached, queue_seconds, optimize_seconds

    def _optimize_response(
        self,
        cached: CachedResult,
        tier: str,
        fingerprint: str,
        digest: str,
        queue_seconds: float,
        optimize_seconds: float,
    ) -> Dict[str, object]:
        return {
            "ok": True,
            "op": "optimize",
            "cache": tier,
            "fingerprint": fingerprint,
            "config_digest": digest,
            "graph": json.loads(cached.graph_json),
            "stats": cached.stats,
            "original_cost_ms": cached.original_cost,
            "optimized_cost_ms": cached.optimized_cost,
            "queue_seconds": round(queue_seconds, 6),
            "optimize_seconds": round(optimize_seconds, 6),
        }

    def status_payload(self) -> Dict[str, object]:
        """The status counters (also printed by ``serve --json`` on shutdown)."""
        with self._lock:
            requests = dict(sorted(self._requests.items()))
            optimize_runs = max(
                self._requests.get("optimize", 0) - self.cache.hits, 1
            )
            return {
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "requests": requests,
                "errors": self._errors,
                "cache": self.cache.stats(),
                "queue": {
                    "admitted": self._admitted,
                    "max_concurrency": self.config.max_concurrency,
                    "queue_limit": self.config.queue_limit,
                    "queue_seconds_total": round(self._queue_seconds_total, 6),
                    "queue_seconds_mean": round(self._queue_seconds_total / optimize_runs, 6),
                    "optimize_seconds_total": round(self._optimize_seconds_total, 6),
                },
                "tries_compiled": len(self._tries),
            }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=False)


class OptimizationServer:
    """The asyncio TCP front end: newline-delimited JSON requests/responses."""

    def __init__(
        self,
        service: Optional[OptimizationService] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        self.service = service if service is not None else OptimizationService(service_config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        #: The bound port (useful when ServiceConfig.port == 0).
        self.port: Optional[int] = None

    async def start(self) -> None:
        self._stop = asyncio.Event()
        config = self.service.config
        self._server = await asyncio.start_server(self._handle_connection, config.host, config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown request (or :meth:`request_stop`) arrives."""
        assert self._stop is not None, "call start() first"
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self.service.close()

    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                payload: object = None
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {
                        "ok": False,
                        "op": None,
                        "error": {"type": "protocol", "message": f"invalid JSON: {exc}"},
                    }
                else:
                    response = await self.service.handle(payload)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                if (
                    isinstance(payload, dict)
                    and payload.get("op") == "shutdown"
                    and response.get("ok")
                ):
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):  # client went away mid-line
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


def run_server(
    service_config: Optional[ServiceConfig] = None,
    base_config: Optional[TensatConfig] = None,
    rules: Optional[RuleSet] = None,
    cost_model: Optional[CostModel] = None,
    ready: Optional[Callable[[str, int], None]] = None,
) -> Dict[str, object]:
    """Run the daemon until a shutdown request; returns the final status.

    ``ready(host, port)`` is called once the socket is bound (the CLI prints
    the listening address from it; the smoke test parses that line).
    """
    service = OptimizationService(
        service_config=service_config,
        base_config=base_config,
        rules=rules,
        cost_model=cost_model,
    )

    async def main() -> None:
        server = OptimizationServer(service)
        await server.start()
        if ready is not None:
            ready(service.config.host, server.port)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return service.status_payload()


class ServerThread:
    """A daemon running on a background thread (tests and benchmarks).

    Usage::

        with ServerThread(service_config=ServiceConfig(port=0)) as server:
            client = ServiceClient(port=server.port)
            ...

    The context exit requests a stop and joins the thread; ``port`` is the
    actual bound port (pass ``port=0`` for an ephemeral one).
    """

    def __init__(
        self,
        service: Optional[OptimizationService] = None,
        service_config: Optional[ServiceConfig] = None,
        base_config: Optional[TensatConfig] = None,
        rules: Optional[RuleSet] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.service = service if service is not None else OptimizationService(
            service_config=service_config,
            base_config=base_config,
            rules=rules,
            cost_model=cost_model,
        )
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[OptimizationServer] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="repro-service-server", daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._server = OptimizationServer(self.service)
            await self._server.start()
            self.port = self._server.port
            self._ready.set()
            await self._server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface bind errors to start()
            self._error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError(f"service server failed to start: {self._error}") from self._error
        if self.port is None:
            raise RuntimeError("service server did not come up within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._server.request_stop)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
