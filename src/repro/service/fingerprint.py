"""Canonical, isomorphism-invariant tensor-graph fingerprints.

The service's result cache must answer *repeat* submissions without
re-running saturation, where "repeat" means *the same computation*, not the
same bytes: the same graph resubmitted with renamed inputs/weights, or with
its nodes constructed in a different order (and therefore numbered
differently), must produce the same cache key, while any change to an
operator, a shape, or an edge must produce a different one.

:func:`graph_fingerprint` achieves this by hash-consing the IR bottom-up
into a canonical form:

* nodes are visited depth-first from the graph outputs (outputs in order,
  children in input order), so the traversal -- and every canonical id it
  assigns -- depends only on the graph *structure*, never on how the
  submitter happened to number the nodes;
* each ``input`` / ``weight`` leaf is recorded as ``(op, inferred metadata,
  first-use ordinal)`` -- the user-chosen name never enters the record, but
  distinct leaves keep distinct ordinals, so renaming is invisible while
  ``matmul(x, y)`` can never collide with ``matmul(x, x)``;
* every other node is recorded as ``(op symbol, inferred kind + shape,
  canonical child ids)`` and deduplicated through a record -> id memo, i.e.
  structurally identical subterms share one canonical id;
* the fingerprint is the SHA-256 of the canonical record list plus the
  canonical output ids.  Only strings and ints enter the hash -- no
  ``id()``, no dict iteration order -- so fingerprints are stable across
  processes and Python versions (pinned by ``tests/test_fingerprint.py``).

:func:`config_digest` is the second half of the cache key: a stable digest
of every :class:`~repro.core.config.TensatConfig` field plus the rule-set,
cost-model, and *registered operator set* identity (symbol families and
serialization names from :data:`repro.ir.opspec.OPS`), so results computed
under different configurations -- or under a different operator table, e.g.
a widened concat family or a plugin-registered op -- never alias.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from repro.core.config import TensatConfig
from repro.ir.graph import TensorGraph
from repro.ir.ops import OpKind
from repro.ir.opspec import OPS

__all__ = ["canonical_form", "config_digest", "graph_fingerprint"]


def canonical_form(graph: TensorGraph) -> Tuple[List[tuple], List[int]]:
    """The canonical record list and canonical output ids of ``graph``.

    Records are listed in canonical-id order; record ``i`` describes
    canonical node ``i``.  Two graphs have identical canonical forms exactly
    when they are the same computation up to node numbering and input/weight
    naming (the :func:`graph_fingerprint` contract).
    """
    canon: Dict[int, int] = {}  # graph node id -> canonical id
    memo: Dict[tuple, int] = {}  # record -> canonical id (hash-consing)
    records: List[tuple] = []
    leaf_ordinal = 0

    for output in graph.outputs:
        stack: List[Tuple[int, bool]] = [(output, False)]
        while stack:
            node_id, expanded = stack.pop()
            if node_id in canon:
                continue
            node = graph.nodes[node_id]
            # Identifier leaves: the name-carrying str child never enters the
            # canonical form, so the whole leaf is a single record.
            is_leaf = node.op.is_identifier or node.op.is_literal
            if not expanded and not is_leaf:
                stack.append((node_id, True))
                stack.extend((child, False) for child in reversed(node.inputs))
                continue
            if node.op.is_identifier:
                record = (
                    node.op.value,
                    node.data.kind.value,
                    tuple(node.data.shape),
                    ("leaf", leaf_ordinal),
                )
                leaf_ordinal += 1
            elif node.op == OpKind.NUM:
                record = ("num", int(node.value))
            elif node.op == OpKind.STR:
                record = ("str", str(node.value))
            else:
                record = (
                    node.symbol,
                    node.data.kind.value,
                    tuple(node.data.shape),
                    tuple(canon[child] for child in node.inputs),
                )
            existing = memo.get(record)
            if existing is None:
                existing = len(records)
                records.append(record)
                memo[record] = existing
            canon[node_id] = existing

    return records, [canon[o] for o in graph.outputs]


def graph_fingerprint(graph: TensorGraph) -> str:
    """SHA-256 hex fingerprint of ``graph``'s canonical form.

    Invariant under node reordering and input/weight renaming; sensitive to
    any operator, shape, parameter, edge, or output change.
    """
    records, outputs = canonical_form(graph)
    payload = repr((records, outputs)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def config_digest(
    config: TensatConfig,
    rules: Optional[object] = None,
    cost_model: Optional[object] = None,
) -> str:
    """SHA-256 hex digest of a configuration (plus rule-set / cost-model identity).

    Every :class:`TensatConfig` field enters the digest, so the cache is
    conservative: knobs that provably cannot change the optimized graph
    (``search_jobs``, timing limits, ...) still separate cache entries.
    ``rules`` may be a :class:`~repro.rules.library.RuleSet` (its rule names
    are digested) and ``cost_model`` any cost model (its class identity is
    digested); ``None`` stands for the service defaults.  The registered
    operator set always enters the digest: a result cached under one op
    table (say ``concat2..concat8``) is never served after the table changes
    (say :func:`~repro.ir.opspec.register_concat` widened the family).
    """
    config_items = tuple(
        (f.name, repr(getattr(config, f.name))) for f in dataclass_fields(config)
    )
    if rules is None:
        rules_token = "<default-ruleset>"
    else:
        rules_token = ",".join(rule.name for rule in rules)
    if cost_model is None:
        model_token = "<default-cost-model>"
    else:
        model_token = f"{type(cost_model).__module__}.{type(cost_model).__qualname__}"
    ops_token = ";".join(f"{spec.name}={','.join(spec.symbols)}" for spec in OPS)
    payload = repr((config_items, rules_token, model_token, ops_token)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
