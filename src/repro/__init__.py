"""repro -- a Python reproduction of TENSAT (MLSys 2021).

TENSAT performs tensor graph superoptimization with *equality saturation*: it
grows an e-graph containing every graph reachable from the input via a set of
semantics-preserving rewrite rules, then extracts the cheapest equivalent
graph with a greedy algorithm or an Integer Linear Program.

Top-level convenience API::

    from repro import optimize, TensatConfig
    from repro.models import build_model

    graph = build_model("nasrnn", scale="small")
    result = optimize(graph)
    print(result.speedup_percent)

Or phase by phase, with the session API (see ``docs/api.md``)::

    from repro import OptimizationSession

    session = OptimizationSession(graph)
    while session.step() is not None:   # one saturation iteration at a time
        pass
    result = session.result()

Batches share one compiled rule trie via :func:`optimize_many`, and the
component registries in :mod:`repro.core.registry` let third-party
extractors / schedulers / joins plug in without editing the driver.

For repeated traffic there is a long-lived daemon (``python -m repro serve``)
with a canonical-fingerprint result cache; see :mod:`repro.service` and
``docs/service.md``.

The package is organised as:

* :mod:`repro.egraph`   -- e-graph / equality-saturation substrate (egg-like).
* :mod:`repro.ir`       -- tensor computation graph IR (paper Table 2 operators).
* :mod:`repro.rules`    -- TASO-style rewrite rule library.
* :mod:`repro.costs`    -- operator cost models (analytic T4-like device model).
* :mod:`repro.backend`  -- numpy reference executor and simulated runtimes.
* :mod:`repro.search`   -- sequential baselines (TASO-style backtracking, sampling).
* :mod:`repro.core`     -- the TENSAT optimizer itself.
* :mod:`repro.models`   -- benchmark model graph constructors.
"""

from repro.core.batch import ComparisonResult, compare, optimize_many
from repro.core.config import ConfigError, TensatConfig
from repro.core.events import OptimizationObserver, PhaseTimingObserver, RecordingObserver
from repro.core.optimizer import OptimizationResult, TensatOptimizer, optimize
from repro.core.registry import (
    CYCLE_FILTERS,
    EXTRACTORS,
    ILP_BACKENDS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    Registry,
    SCHEDULERS,
    SEARCH_EXECUTORS,
    SEARCH_MODES,
)
from repro.core.session import OptimizationSession
from repro.core.stats import OptimizationStats
from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.onnx_import import OnnxImportError, import_onnx
from repro.ir.opspec import OPS, OpSpec, UnknownOperatorError, register_concat
from repro.ir.tensor import TensorShape
from repro.service import (
    ResultCache,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    graph_fingerprint,
)

__version__ = "0.2.0"

__all__ = [
    # Driver API
    "OptimizationSession",
    "TensatOptimizer",
    "TensatConfig",
    "ConfigError",
    "OptimizationResult",
    "OptimizationStats",
    "optimize",
    # Batch front door
    "optimize_many",
    "compare",
    "ComparisonResult",
    # Event / observer API
    "OptimizationObserver",
    "PhaseTimingObserver",
    "RecordingObserver",
    # Component registries
    "Registry",
    "CYCLE_FILTERS",
    "EXTRACTORS",
    "ILP_BACKENDS",
    "MATCHERS",
    "MULTIPATTERN_JOINS",
    "SCHEDULERS",
    "SEARCH_EXECUTORS",
    "SEARCH_MODES",
    # Optimization service
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "graph_fingerprint",
    # IR conveniences
    "GraphBuilder",
    "TensorGraph",
    "TensorShape",
    # Operator-spec registry + ONNX front door
    "OPS",
    "OpSpec",
    "UnknownOperatorError",
    "register_concat",
    "import_onnx",
    "OnnxImportError",
    "__version__",
]
