"""repro -- a Python reproduction of TENSAT (MLSys 2021).

TENSAT performs tensor graph superoptimization with *equality saturation*: it
grows an e-graph containing every graph reachable from the input via a set of
semantics-preserving rewrite rules, then extracts the cheapest equivalent
graph with a greedy algorithm or an Integer Linear Program.

Top-level convenience API::

    from repro import optimize, TensatConfig
    from repro.models import build_model

    graph = build_model("nasrnn", scale="small")
    result = optimize(graph)
    print(result.speedup_percent)

The package is organised as:

* :mod:`repro.egraph`   -- e-graph / equality-saturation substrate (egg-like).
* :mod:`repro.ir`       -- tensor computation graph IR (paper Table 2 operators).
* :mod:`repro.rules`    -- TASO-style rewrite rule library.
* :mod:`repro.costs`    -- operator cost models (analytic T4-like device model).
* :mod:`repro.backend`  -- numpy reference executor and simulated runtimes.
* :mod:`repro.search`   -- sequential baselines (TASO-style backtracking, sampling).
* :mod:`repro.core`     -- the TENSAT optimizer itself.
* :mod:`repro.models`   -- benchmark model graph constructors.
"""

from repro.core.config import TensatConfig
from repro.core.optimizer import OptimizationResult, TensatOptimizer, optimize
from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.tensor import TensorShape

__version__ = "0.1.0"

__all__ = [
    "TensatConfig",
    "TensatOptimizer",
    "OptimizationResult",
    "optimize",
    "GraphBuilder",
    "TensorGraph",
    "TensorShape",
    "__version__",
]
