"""TASO-style backtracking search baseline (Jia et al., 2019a, Algorithm 2).

The search keeps a priority queue of candidate graphs ordered by cost.  Each
step pops the cheapest graph, enumerates every rule match on it, applies each
substitution to obtain neighbour graphs, and enqueues a neighbour when its
cost is below ``alpha`` times the cost of the graph it came from (``alpha`` is
the relaxation hyper-parameter; the paper uses 1.0 and reports that 1.05 makes
almost no difference).  The best graph seen anywhere during the search is
returned.

Two times are recorded to reproduce Figure 5: ``total_seconds`` (the full
search) and ``best_seconds`` (when the returned graph was first discovered --
the oracle stopping time the paper calls "TASO best").
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.costs.model import CostModel
from repro.ir.graph import TensorGraph
from repro.rules.library import RuleSet, default_ruleset
from repro.search.substitution import apply_to_graph, find_graph_matches

__all__ = ["BacktrackingResult", "BacktrackingSearch"]


@dataclass
class BacktrackingResult:
    """Outcome of one backtracking search."""

    original: TensorGraph
    optimized: TensorGraph
    original_cost: float
    optimized_cost: float
    total_seconds: float
    best_seconds: float
    iterations: int
    graphs_evaluated: int
    #: (elapsed seconds, best cost so far) samples, for the Figure-6 trade-off curve.
    trajectory: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def speedup_percent(self) -> float:
        return (self.original_cost / self.optimized_cost - 1.0) * 100.0


class BacktrackingSearch:
    """Sequential cost-ordered backtracking search over graph substitutions.

    Parameters
    ----------
    rules:
        The rule set to search with (defaults to the full library, as in the paper).
    cost_model:
        The cost model shared with TENSAT.
    alpha:
        Relaxation threshold: a neighbour is enqueued when
        ``cost(neighbour) < alpha * cost(parent)``.
    budget:
        Number of queue pops ("iterations of the outer loop", paper: 100).
    time_limit:
        Wall-clock limit in seconds.
    max_matches_per_rule:
        Optional cap on matches expanded per rule per graph (keeps the
        pure-Python baseline tractable on the larger models).
    """

    def __init__(
        self,
        cost_model: CostModel,
        rules: Optional[RuleSet] = None,
        alpha: float = 1.0,
        budget: int = 100,
        time_limit: float = 3600.0,
        max_matches_per_rule: Optional[int] = None,
    ) -> None:
        self.cost_model = cost_model
        self.rules = rules if rules is not None else default_ruleset()
        self.alpha = alpha
        self.budget = budget
        self.time_limit = time_limit
        self.max_matches_per_rule = max_matches_per_rule

    def optimize(self, graph: TensorGraph) -> BacktrackingResult:
        start = time.perf_counter()
        counter = itertools.count()

        original_cost = self.cost_model.graph_cost(graph)
        best_graph, best_cost = graph, original_cost
        best_time = 0.0
        trajectory: List[Tuple[float, float]] = [(0.0, best_cost)]

        heap: List[Tuple[float, int, TensorGraph]] = [(original_cost, next(counter), graph)]
        seen = {graph.signature()}
        iterations = 0
        graphs_evaluated = 1

        all_rules = list(self.rules.defs)

        while heap and iterations < self.budget:
            if time.perf_counter() - start > self.time_limit:
                break
            parent_cost, _, parent = heapq.heappop(heap)
            iterations += 1

            for rule_def in all_rules:
                matches = find_graph_matches(parent, rule_def.rule, self.max_matches_per_rule)
                for match in matches:
                    if time.perf_counter() - start > self.time_limit:
                        break
                    child = apply_to_graph(parent, rule_def.rule, match)
                    if child is None:
                        continue
                    signature = child.signature()
                    if signature in seen:
                        continue
                    seen.add(signature)
                    child_cost = self.cost_model.graph_cost(child)
                    graphs_evaluated += 1
                    now = time.perf_counter() - start
                    if child_cost < best_cost - 1e-12:
                        best_graph, best_cost, best_time = child, child_cost, now
                        trajectory.append((now, best_cost))
                    if child_cost < self.alpha * parent_cost:
                        heapq.heappush(heap, (child_cost, next(counter), child))

        total = time.perf_counter() - start
        trajectory.append((total, best_cost))
        return BacktrackingResult(
            original=graph,
            optimized=best_graph,
            original_cost=original_cost,
            optimized_cost=best_cost,
            total_seconds=total,
            best_seconds=best_time,
            iterations=iterations,
            graphs_evaluated=graphs_evaluated,
            trajectory=trajectory,
        )
