"""Sequential substitution-based search baselines.

The paper compares TENSAT against TASO's backtracking search (Jia et al.,
2019a), which applies one substitution at a time to concrete graphs and
explores the resulting graph space with a cost-ordered queue.  This package
re-implements that baseline (and a simpler sampling-based variant in the
spirit of Fang et al., 2020) over the same IR, rules, and cost model so the
comparison isolates the *search strategy*, exactly as the paper intends.
"""

from repro.search.backtracking import BacktrackingResult, BacktrackingSearch
from repro.search.sampling import SamplingResult, SamplingSearch
from repro.search.substitution import GraphMatch, apply_to_graph, find_graph_matches

__all__ = [
    "BacktrackingSearch",
    "BacktrackingResult",
    "SamplingSearch",
    "SamplingResult",
    "GraphMatch",
    "find_graph_matches",
    "apply_to_graph",
]
