"""Pattern matching and substitution application on *concrete* graphs.

The sequential baselines (TASO-style backtracking, sampling) do not use an
e-graph: they repeatedly pick one rewrite-rule match on the current graph and
apply it destructively, producing a new graph.  This module provides that
machinery, reusing the same :class:`~repro.egraph.pattern.Pattern` objects and
rule conditions as the equality-saturation path so both searches explore the
same substitution space.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.egraph.ematch import Match
from repro.egraph.multipattern import MultiMatch, MultiPatternRewrite
from repro.egraph.pattern import Pattern, PatternNode, PatternTerm, PatternVar
from repro.egraph.rewrite import Rewrite
from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.tensor import ShapeError, TensorData

__all__ = ["GraphMatch", "GraphAnalysisAdapter", "find_graph_matches", "apply_to_graph"]

Rule = Union[Rewrite, MultiPatternRewrite]


@dataclass(frozen=True)
class GraphMatch:
    """A rule match on a concrete graph: matched output node(s) and variable bindings."""

    rule_name: str
    roots: Tuple[int, ...]
    subst: Dict[str, int]  # variable -> node id


class GraphAnalysisAdapter:
    """Presents a :class:`TensorGraph` through the tiny slice of the e-graph API
    that rule conditions use (``analysis_data`` and ``find``), so the same
    condition callables work for both search strategies."""

    def __init__(self, graph: TensorGraph) -> None:
        self.graph = graph

    def analysis_data(self, node_id: int) -> TensorData:
        return self.graph.nodes[node_id].data

    def find(self, node_id: int) -> int:
        return node_id


# ---------------------------------------------------------------------- #
# Matching
# ---------------------------------------------------------------------- #


def _match_term(
    graph: TensorGraph, term: PatternTerm, node_id: int, subst: Dict[str, int]
) -> List[Dict[str, int]]:
    if isinstance(term, PatternVar):
        bound = subst.get(term.name)
        if bound is None:
            new = dict(subst)
            new[term.name] = node_id
            return [new]
        return [subst] if bound == node_id else []

    node = graph.nodes[node_id]
    if node.symbol != term.op or len(node.inputs) != len(term.children):
        return []
    results = [subst]
    for child_term, child_id in zip(term.children, node.inputs):
        next_results: List[Dict[str, int]] = []
        for s in results:
            next_results.extend(_match_term(graph, child_term, child_id, s))
        results = next_results
        if not results:
            break
    return results


def _pattern_matches(graph: TensorGraph, pattern: Pattern) -> List[Tuple[int, Dict[str, int]]]:
    matches: List[Tuple[int, Dict[str, int]]] = []
    for node in graph.nodes:
        for subst in _match_term(graph, pattern.root, node.id, {}):
            matches.append((node.id, subst))
    return matches


def find_graph_matches(
    graph: TensorGraph,
    rule: Rule,
    max_matches: Optional[int] = None,
) -> List[GraphMatch]:
    """All matches of ``rule`` on ``graph`` whose condition holds."""
    adapter = GraphAnalysisAdapter(graph)
    matches: List[GraphMatch] = []

    if isinstance(rule, Rewrite):
        for root, subst in _pattern_matches(graph, rule.lhs):
            if rule.condition is not None and not rule.condition(adapter, Match(root, subst)):
                continue
            matches.append(GraphMatch(rule.name, (root,), subst))
            if max_matches is not None and len(matches) >= max_matches:
                return matches
        return matches

    per_source = [_pattern_matches(graph, source) for source in rule.sources]
    for combination in product(*per_source):
        if rule.skip_identical and len(combination) > 1:
            if len({root for root, _ in combination}) == 1:
                continue
        merged: Dict[str, int] = {}
        ok = True
        for _, subst in combination:
            for var, node_id in subst.items():
                if merged.setdefault(var, node_id) != node_id:
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        roots = tuple(root for root, _ in combination)
        multi = MultiMatch(eclasses=roots, subst=merged)
        if rule.condition is not None and not rule.condition(adapter, multi):
            continue
        matches.append(GraphMatch(rule.name, roots, merged))
        if max_matches is not None and len(matches) >= max_matches:
            return matches
    return matches


# ---------------------------------------------------------------------- #
# Application
# ---------------------------------------------------------------------- #


def _build_pattern(
    builder: GraphBuilder,
    term: PatternTerm,
    subst: Dict[str, int],
    mapping: Dict[int, int],
) -> int:
    if isinstance(term, PatternVar):
        return mapping[subst[term.name]]
    children = [_build_pattern(builder, c, subst, mapping) for c in term.children]
    # Strict: a rule target naming an unregistered operator is a bug in the
    # rule library, not a string literal -- fail loudly.
    return builder.add_symbol(term.op, children, strict=True)


def apply_to_graph(graph: TensorGraph, rule: Rule, match: GraphMatch) -> Optional[TensorGraph]:
    """Apply one substitution to a concrete graph, returning the rewritten graph.

    The new graph shares no structure with the old Python objects; nodes are
    rebuilt in topological order with the matched output node(s) replaced by
    the rule's target pattern(s).  Returns ``None`` when the replacement turns
    out to be ill-typed (shape checking of the target fails).
    """
    targets: Sequence[Pattern]
    if isinstance(rule, Rewrite):
        targets = [rule.rhs]
    else:
        targets = rule.targets
    if len(targets) != len(match.roots):
        raise ValueError(f"rule {rule.name} has {len(targets)} outputs but match has {len(match.roots)}")

    root_to_target = dict(zip(match.roots, targets))
    builder = GraphBuilder(graph.name)
    mapping: Dict[int, int] = {}

    try:
        for node in graph.nodes:
            if node.id in root_to_target:
                mapping[node.id] = _build_pattern(builder, root_to_target[node.id].root, match.subst, mapping)
            else:
                mapping[node.id] = builder.import_node(graph, node.id, mapping)
    except (ShapeError, KeyError):
        return None

    outputs = [mapping[o] for o in graph.outputs]
    rewritten = builder.finish(outputs=outputs)
    # Drop nodes orphaned by the replacement so graph cost reflects live work only.
    return rewritten.pruned()
