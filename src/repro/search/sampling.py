"""A sampling-based sequential baseline (in the spirit of Fang et al., 2020).

Instead of a cost-ordered queue, the search performs several random walks:
each step samples one applicable substitution among those that do not degrade
the cost by more than a relaxation factor, and applies it.  The best graph
seen over all walks is returned.  The paper cites this family of approaches as
faster than TASO's backtracking but not better in final graph quality; the
benchmark suite includes it as a secondary baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.costs.model import CostModel
from repro.ir.graph import TensorGraph
from repro.rules.library import RuleSet, default_ruleset
from repro.search.substitution import apply_to_graph, find_graph_matches

__all__ = ["SamplingResult", "SamplingSearch"]


@dataclass
class SamplingResult:
    original: TensorGraph
    optimized: TensorGraph
    original_cost: float
    optimized_cost: float
    total_seconds: float
    steps_taken: int

    @property
    def speedup_percent(self) -> float:
        return (self.original_cost / self.optimized_cost - 1.0) * 100.0


class SamplingSearch:
    """Random-walk substitution search."""

    def __init__(
        self,
        cost_model: CostModel,
        rules: Optional[RuleSet] = None,
        walks: int = 4,
        steps_per_walk: int = 20,
        relaxation: float = 1.05,
        seed: int = 0,
        time_limit: float = 600.0,
    ) -> None:
        self.cost_model = cost_model
        self.rules = rules if rules is not None else default_ruleset()
        self.walks = walks
        self.steps_per_walk = steps_per_walk
        self.relaxation = relaxation
        self.seed = seed
        self.time_limit = time_limit

    def optimize(self, graph: TensorGraph) -> SamplingResult:
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        original_cost = self.cost_model.graph_cost(graph)
        best_graph, best_cost = graph, original_cost
        steps_taken = 0

        for _ in range(self.walks):
            current, current_cost = graph, original_cost
            for _ in range(self.steps_per_walk):
                if time.perf_counter() - start > self.time_limit:
                    break
                candidates: List[Tuple[TensorGraph, float]] = []
                for rule_def in self.rules.defs:
                    for match in find_graph_matches(current, rule_def.rule):
                        child = apply_to_graph(current, rule_def.rule, match)
                        if child is None:
                            continue
                        child_cost = self.cost_model.graph_cost(child)
                        if child_cost <= self.relaxation * current_cost:
                            candidates.append((child, child_cost))
                if not candidates:
                    break
                idx = int(rng.integers(len(candidates)))
                current, current_cost = candidates[idx]
                steps_taken += 1
                if current_cost < best_cost - 1e-12:
                    best_graph, best_cost = current, current_cost

        return SamplingResult(
            original=graph,
            optimized=best_graph,
            original_cost=original_cost,
            optimized_cost=best_cost,
            total_seconds=time.perf_counter() - start,
            steps_taken=steps_taken,
        )
