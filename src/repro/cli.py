"""Command-line interface.

Examples::

    python -m repro optimize --model nasrnn --scale tiny
    python -m repro optimize --model bert --scale small --k-multi 2 --extraction ilp
    python -m repro optimize --onnx model.onnx --fix-dim batch=1
    python -m repro import --onnx model.onnx --output model.json
    python -m repro compare --model squeezenet --scale tiny --taso-budget 30
    python -m repro models
    python -m repro rules --tag merge
    python -m repro serve --port 8077
    python -m repro submit --model nasrnn --scale tiny --set extraction=greedy
    python -m repro submit --onnx model.onnx --set extraction=greedy
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import TensatConfig, compare, optimize
from repro.core.registry import (
    CONDITION_CACHES,
    CYCLE_FILTERS,
    EXTRACTORS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    SCHEDULERS,
    SEARCH_EXECUTORS,
    SEARCH_MODES,
    SHAPE_ANALYSES,
)
from repro.costs import AnalyticCostModel
from repro.ir.serialize import graph_to_doc, load_graph, save_graph
from repro.models import MODEL_NAMES, build_model, load_onnx_model, parse_dim_overrides
from repro.rules import default_ruleset
from repro.service.server import ServiceConfig

__all__ = ["main", "build_parser"]


#: Engine-knob defaults come from the config dataclass itself, so the CLI can
#: never drift from what library users get; choices come straight from the
#: component registries (tools/check_api.py asserts they stay in lockstep).
_CONFIG_DEFAULTS = TensatConfig()

#: Service-knob defaults likewise come from the ServiceConfig dataclass
#: (tools/check_api.py asserts the `serve` flags stay in lockstep).
_SERVICE_DEFAULTS = ServiceConfig()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="TENSAT reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p):
        p.add_argument("--model", required=True, choices=MODEL_NAMES, help="benchmark model to optimize")
        p.add_argument("--scale", default="tiny", choices=("tiny", "small", "full"))

    def add_fix_dim(p):
        p.add_argument(
            "--fix-dim", dest="fix_dims", action="append", default=[], metavar="NAME=VALUE",
            help="pin a symbolic ONNX input dimension (dim_param), repeatable, "
                 "e.g. --fix-dim batch=1",
        )

    opt = sub.add_parser("optimize", help="optimize one model graph with TENSAT")
    opt_source = opt.add_mutually_exclusive_group(required=True)
    opt_source.add_argument("--model", choices=MODEL_NAMES, help="benchmark model to optimize")
    opt_source.add_argument("--onnx", metavar="FILE", help="import this ONNX model and optimize it")
    opt.add_argument("--scale", default="tiny", choices=("tiny", "small", "full"))
    add_fix_dim(opt)
    opt.add_argument("--k-multi", type=int, default=1, help="iterations of multi-pattern rewrites")
    opt.add_argument("--node-limit", type=int, default=5_000)
    opt.add_argument("--iter-limit", type=int, default=8)
    opt.add_argument("--extraction", choices=EXTRACTORS.names(), default="ilp")
    opt.add_argument("--ilp-time-limit", type=float, default=60.0)
    opt.add_argument(
        "--extraction-deadline", type=float, default=_CONFIG_DEFAULTS.extraction_deadline,
        help="total wall-clock budget in seconds for --extraction portfolio "
             "(greedy -> BnB -> ILP anytime race)",
    )
    opt.add_argument(
        "--no-extraction-prune", dest="extraction_prune", action="store_false",
        help="disable dominated-node pruning / singleton collapse before the "
             "exact extraction solvers (optimum-preserving when enabled)",
    )
    opt.add_argument(
        "--no-ilp-warm-start", dest="ilp_warm_start", action="store_false",
        help="solve the extraction ILP/BnB cold instead of seeding it from "
             "the greedy solution",
    )
    opt.add_argument("--cycle-filter", choices=CYCLE_FILTERS.names(), default="efficient")
    opt.add_argument(
        "--matcher", choices=MATCHERS.names(), default=_CONFIG_DEFAULTS.matcher,
        help="e-matcher: compiled VM or the naive interpretive reference",
    )
    opt.add_argument(
        "--search-mode", choices=SEARCH_MODES.names(), default=_CONFIG_DEFAULTS.search_mode,
        help="VM search organisation: shared-prefix rule trie or per-rule programs",
    )
    opt.add_argument(
        "--scheduler", choices=SCHEDULERS.names(), default=_CONFIG_DEFAULTS.scheduler,
        help="rule scheduling: every rule every iteration, or egg-style backoff",
    )
    opt.add_argument(
        "--multipattern-join", choices=MULTIPATTERN_JOINS.names(),
        default=_CONFIG_DEFAULTS.multipattern_join,
        help="multi-pattern match combination: indexed hash join or Cartesian product",
    )
    opt.add_argument(
        "--condition-cache", choices=CONDITION_CACHES.names(),
        default=_CONFIG_DEFAULTS.condition_cache,
        help="shape/condition-check caching: auto (resolve against the shape "
             "analysis), generation-invalidated memo, or direct evaluation",
    )
    opt.add_argument(
        "--shape-analysis", choices=SHAPE_ANALYSES.names(),
        default=_CONFIG_DEFAULTS.shape_analysis,
        help="condition checking: compiled programs over precomputed per-e-class "
             "facts, or on-demand shape inference per candidate binding",
    )
    opt.add_argument(
        "--jobs", dest="search_jobs", type=int, default=_CONFIG_DEFAULTS.search_jobs,
        help="parallel search shards per iteration (1 = the in-line sweep; "
             ">1 requires the vm/trie search path)",
    )
    opt.add_argument(
        "--search-executor", choices=SEARCH_EXECUTORS.names(),
        default=_CONFIG_DEFAULTS.search_executor,
        help="worker pool sweeping the shards when --jobs > 1: thread pool "
             "over the shared e-graph, process pool over a pickled snapshot, "
             "or serial (shards swept in-line)",
    )
    opt.add_argument("--output", help="write the optimized graph to this path (.json or .sexpr)")
    opt.add_argument("--json", action="store_true", help="print machine-readable stats")

    imp = sub.add_parser("import", help="import an ONNX model and print / save the tensor-graph IR")
    imp.add_argument("--onnx", required=True, metavar="FILE", help="path to the .onnx file")
    imp.add_argument("--name", help="override the imported graph's name")
    add_fix_dim(imp)
    imp.add_argument("--output", help="write the imported graph to this path (.json or .sexpr)")
    imp.add_argument("--json", action="store_true", help="print the node-list document as JSON")

    cmp = sub.add_parser("compare", help="compare TENSAT against the TASO-style backtracking baseline")
    add_model_args(cmp)
    cmp.add_argument("--k-multi", type=int, default=1)
    cmp.add_argument("--taso-budget", type=int, default=30, help="backtracking queue pops")
    cmp.add_argument("--json", action="store_true")

    sub.add_parser("models", help="list available benchmark models")

    rules = sub.add_parser("rules", help="list the rewrite-rule library")
    rules.add_argument("--tag", help="only rules carrying this tag")

    serve = sub.add_parser(
        "serve",
        help="run the optimization service daemon (long-lived, with a result cache)",
    )
    serve.add_argument("--host", default=_SERVICE_DEFAULTS.host)
    serve.add_argument(
        "--port", type=int, default=_SERVICE_DEFAULTS.port,
        help="TCP port to bind (0 picks an ephemeral port; the bound port is printed)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=_SERVICE_DEFAULTS.max_concurrency,
        help="worker threads running cache-missed optimizations concurrently",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=_SERVICE_DEFAULTS.queue_limit,
        help="requests allowed to wait beyond the running ones before "
             "admission fails fast with a queue_full error",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=_SERVICE_DEFAULTS.request_timeout,
        help="per-request wall-clock budget in seconds (exceeding it returns "
             "a typed timeout error)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=_SERVICE_DEFAULTS.cache_capacity,
        help="bounded LRU capacity of the fingerprint-keyed result cache",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="print the final status counters (cache traffic, queue wait) as JSON on shutdown",
    )

    submit = sub.add_parser("submit", help="submit a graph to a running optimization service")
    submit.add_argument("--host", default=_SERVICE_DEFAULTS.host)
    submit.add_argument("--port", type=int, default=_SERVICE_DEFAULTS.port)
    source = submit.add_mutually_exclusive_group()
    source.add_argument("--model", choices=MODEL_NAMES, help="benchmark model to submit")
    source.add_argument("--graph", help="path to a serialized graph (.json node-list document)")
    source.add_argument("--onnx", metavar="FILE", help="import this ONNX model and submit it")
    source.add_argument("--status", action="store_true", help="query the server's status counters")
    source.add_argument("--shutdown", action="store_true", help="ask the server to shut down cleanly")
    submit.add_argument("--scale", default="tiny", choices=("tiny", "small", "full"))
    add_fix_dim(submit)
    submit.add_argument(
        "--set", dest="overrides", action="append", default=[], metavar="KEY=VALUE",
        help="per-request TensatConfig override, repeatable (validated "
             "server-side against the component registries)",
    )
    submit.add_argument("--output", help="write the optimized graph to this path (.json or .sexpr)")
    submit.add_argument("--json", action="store_true", help="print the raw response as JSON")

    return parser


def _config_from_args(args) -> TensatConfig:
    cycle_filter = args.cycle_filter
    return TensatConfig(
        node_limit=args.node_limit,
        iter_limit=args.iter_limit,
        k_multi=args.k_multi,
        extraction=args.extraction,
        ilp_time_limit=args.ilp_time_limit,
        extraction_deadline=args.extraction_deadline,
        extraction_prune=args.extraction_prune,
        ilp_warm_start=args.ilp_warm_start,
        cycle_filter=cycle_filter,
        ilp_cycle_constraints=(cycle_filter == "none"),
        matcher=args.matcher,
        search_mode=args.search_mode,
        scheduler=args.scheduler,
        multipattern_join=args.multipattern_join,
        condition_cache=args.condition_cache,
        shape_analysis=args.shape_analysis,
        search_jobs=args.search_jobs,
        search_executor=args.search_executor,
    )


def _load_onnx_arg(args):
    """Import the graph named by ``--onnx`` / ``--fix-dim``; raises OnnxImportError."""
    name = getattr(args, "name", None)
    return load_onnx_model(
        args.onnx, name=name, dim_overrides=parse_dim_overrides(args.fix_dims)
    )


def _cmd_import(args) -> int:
    from repro.ir.onnx_import import OnnxImportError

    try:
        graph = _load_onnx_arg(args)
    except OnnxImportError as exc:
        print(f"import failed: {exc}", file=sys.stderr)
        return 1
    if args.output:
        save_graph(graph, args.output)
    if args.json:
        print(json.dumps(graph_to_doc(graph), indent=2))
    else:
        print(graph.describe())
        for out in graph.outputs:
            node = graph.nodes[out]
            print(f"  output {node.symbol} {node.data}")
        if args.output:
            print(f"imported graph written to {args.output}")
    return 0


def _cmd_optimize(args) -> int:
    from repro.ir.onnx_import import OnnxImportError

    cost_model = AnalyticCostModel()
    try:
        graph = _load_onnx_arg(args) if args.onnx else build_model(args.model, args.scale)
    except OnnxImportError as exc:
        print(f"import failed: {exc}", file=sys.stderr)
        return 1
    result = optimize(graph, cost_model=cost_model, config=_config_from_args(args))
    if args.output:
        save_graph(result.optimized, args.output)
    if args.json:
        print(json.dumps(result.stats.as_dict(), indent=2))
    else:
        print(result.summary())
        if args.output:
            print(f"optimized graph written to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    cost_model = AnalyticCostModel()
    graph = build_model(args.model, args.scale)

    comparison = compare(
        graph,
        cost_model=cost_model,
        config=TensatConfig.fast().with_overrides(k_multi=args.k_multi),
        taso_budget=args.taso_budget,
    )

    # The CLI reports the model/scale it was asked for, not the graph's name.
    payload = {**comparison.as_dict(), "model": args.model, "scale": args.scale}
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        tensat, taso = comparison.tensat, comparison.taso
        print(f"{args.model} ({args.scale}): original cost {comparison.original_cost:.5f} ms")
        print(f"  TENSAT : {tensat.speedup_percent:6.1f}% speedup in {comparison.tensat_seconds:.2f}s")
        print(f"  TASO   : {taso.speedup_percent:6.1f}% speedup in {taso.total_seconds:.2f}s "
              f"(best found at {taso.best_seconds:.2f}s)")
    return 0


def _cmd_models(_args) -> int:
    for name in MODEL_NAMES:
        graph = build_model(name, "tiny")
        print(f"{name:12s} {graph.describe()}")
    return 0


def _cmd_rules(args) -> int:
    rules = default_ruleset()
    if args.tag:
        rules = rules.filter(include_tags=[args.tag])
    for rule_def in rules:
        kind = "multi " if rule_def.is_multi else "single"
        print(f"[{kind}] {rule_def.name:32s} tags={','.join(rule_def.tags)}")
    print(f"total: {rules.summary()}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        cache_capacity=args.cache_capacity,
    )

    def ready(host: str, port: int) -> None:
        print(f"repro service listening on {host}:{port}", flush=True)

    status = run_server(service_config=config, ready=ready)
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        cache = status["cache"]
        print(
            f"service stopped after {status['uptime_seconds']}s: "
            f"{sum(status['requests'].values())} requests, cache {cache['hits']} hits / "
            f"{cache['misses']} misses / {cache['evictions']} evictions"
        )
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceError, parse_overrides

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.status:
            status = client.status()
            if args.json:
                print(json.dumps(status, indent=2))
            else:
                cache, queue = status["cache"], status["queue"]
                print(
                    f"up {status['uptime_seconds']}s, requests={status['requests']}, "
                    f"cache hits={cache['hits']} misses={cache['misses']} "
                    f"evictions={cache['evictions']} size={cache['size']}/{cache['capacity']}, "
                    f"queue wait total {queue['queue_seconds_total']}s "
                    f"(mean {queue['queue_seconds_mean']}s)"
                )
            return 0
        if args.shutdown:
            client.shutdown()
            print("server shut down")
            return 0
        if args.model:
            graph = build_model(args.model, args.scale)
        elif args.graph:
            graph = load_graph(args.graph)
        elif args.onnx:
            from repro.ir.onnx_import import OnnxImportError

            try:
                graph = _load_onnx_arg(args)
            except OnnxImportError as exc:
                print(f"import failed: {exc}", file=sys.stderr)
                return 1
        else:
            print("submit needs one of --model / --graph / --onnx / --status / --shutdown",
                  file=sys.stderr)
            return 2
        response = client.optimize(graph, config=parse_overrides(args.overrides))
    except (ServiceError, ValueError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.output:
        save_graph(client.optimized_graph(response), args.output)
    if args.json:
        print(json.dumps(response, indent=2))
    else:
        stats = response["stats"]
        print(
            f"{response['graph'].get('name', 'graph')}: cost {response['original_cost_ms']:.4f} ms "
            f"-> {response['optimized_cost_ms']:.4f} ms "
            f"({stats.get('speedup_percent', 0.0):+.1f}%), cache {response['cache']}, "
            f"queue {response['queue_seconds']:.3f}s, optimize {response['optimize_seconds']:.3f}s"
        )
        if args.output:
            print(f"optimized graph written to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "optimize": _cmd_optimize,
        "import": _cmd_import,
        "compare": _cmd_compare,
        "models": _cmd_models,
        "rules": _cmd_rules,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
