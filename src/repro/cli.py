"""Command-line interface.

Examples::

    python -m repro optimize --model nasrnn --scale tiny
    python -m repro optimize --model bert --scale small --k-multi 2 --extraction ilp
    python -m repro compare --model squeezenet --scale tiny --taso-budget 30
    python -m repro models
    python -m repro rules --tag merge
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import TensatConfig, compare, optimize
from repro.core.registry import (
    CONDITION_CACHES,
    CYCLE_FILTERS,
    EXTRACTORS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    SCHEDULERS,
    SEARCH_EXECUTORS,
    SEARCH_MODES,
    SHAPE_ANALYSES,
)
from repro.costs import AnalyticCostModel
from repro.ir.serialize import save_graph
from repro.models import MODEL_NAMES, build_model
from repro.rules import default_ruleset

__all__ = ["main", "build_parser"]


#: Engine-knob defaults come from the config dataclass itself, so the CLI can
#: never drift from what library users get; choices come straight from the
#: component registries (tools/check_api.py asserts they stay in lockstep).
_CONFIG_DEFAULTS = TensatConfig()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="TENSAT reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p):
        p.add_argument("--model", required=True, choices=MODEL_NAMES, help="benchmark model to optimize")
        p.add_argument("--scale", default="tiny", choices=("tiny", "small", "full"))

    opt = sub.add_parser("optimize", help="optimize one model graph with TENSAT")
    add_model_args(opt)
    opt.add_argument("--k-multi", type=int, default=1, help="iterations of multi-pattern rewrites")
    opt.add_argument("--node-limit", type=int, default=5_000)
    opt.add_argument("--iter-limit", type=int, default=8)
    opt.add_argument("--extraction", choices=EXTRACTORS.names(), default="ilp")
    opt.add_argument("--ilp-time-limit", type=float, default=60.0)
    opt.add_argument(
        "--extraction-deadline", type=float, default=_CONFIG_DEFAULTS.extraction_deadline,
        help="total wall-clock budget in seconds for --extraction portfolio "
             "(greedy -> BnB -> ILP anytime race)",
    )
    opt.add_argument(
        "--no-extraction-prune", dest="extraction_prune", action="store_false",
        help="disable dominated-node pruning / singleton collapse before the "
             "exact extraction solvers (optimum-preserving when enabled)",
    )
    opt.add_argument(
        "--no-ilp-warm-start", dest="ilp_warm_start", action="store_false",
        help="solve the extraction ILP/BnB cold instead of seeding it from "
             "the greedy solution",
    )
    opt.add_argument("--cycle-filter", choices=CYCLE_FILTERS.names(), default="efficient")
    opt.add_argument(
        "--matcher", choices=MATCHERS.names(), default=_CONFIG_DEFAULTS.matcher,
        help="e-matcher: compiled VM or the naive interpretive reference",
    )
    opt.add_argument(
        "--search-mode", choices=SEARCH_MODES.names(), default=_CONFIG_DEFAULTS.search_mode,
        help="VM search organisation: shared-prefix rule trie or per-rule programs",
    )
    opt.add_argument(
        "--scheduler", choices=SCHEDULERS.names(), default=_CONFIG_DEFAULTS.scheduler,
        help="rule scheduling: every rule every iteration, or egg-style backoff",
    )
    opt.add_argument(
        "--multipattern-join", choices=MULTIPATTERN_JOINS.names(),
        default=_CONFIG_DEFAULTS.multipattern_join,
        help="multi-pattern match combination: indexed hash join or Cartesian product",
    )
    opt.add_argument(
        "--condition-cache", choices=CONDITION_CACHES.names(),
        default=_CONFIG_DEFAULTS.condition_cache,
        help="shape/condition-check caching: auto (resolve against the shape "
             "analysis), generation-invalidated memo, or direct evaluation",
    )
    opt.add_argument(
        "--shape-analysis", choices=SHAPE_ANALYSES.names(),
        default=_CONFIG_DEFAULTS.shape_analysis,
        help="condition checking: compiled programs over precomputed per-e-class "
             "facts, or on-demand shape inference per candidate binding",
    )
    opt.add_argument(
        "--jobs", dest="search_jobs", type=int, default=_CONFIG_DEFAULTS.search_jobs,
        help="parallel search shards per iteration (1 = the in-line sweep; "
             ">1 requires the vm/trie search path)",
    )
    opt.add_argument(
        "--search-executor", choices=SEARCH_EXECUTORS.names(),
        default=_CONFIG_DEFAULTS.search_executor,
        help="worker pool sweeping the shards when --jobs > 1: thread pool "
             "over the shared e-graph, process pool over a pickled snapshot, "
             "or serial (shards swept in-line)",
    )
    opt.add_argument("--output", help="write the optimized graph to this path (.json or .sexpr)")
    opt.add_argument("--json", action="store_true", help="print machine-readable stats")

    cmp = sub.add_parser("compare", help="compare TENSAT against the TASO-style backtracking baseline")
    add_model_args(cmp)
    cmp.add_argument("--k-multi", type=int, default=1)
    cmp.add_argument("--taso-budget", type=int, default=30, help="backtracking queue pops")
    cmp.add_argument("--json", action="store_true")

    sub.add_parser("models", help="list available benchmark models")

    rules = sub.add_parser("rules", help="list the rewrite-rule library")
    rules.add_argument("--tag", help="only rules carrying this tag")

    return parser


def _config_from_args(args) -> TensatConfig:
    cycle_filter = args.cycle_filter
    return TensatConfig(
        node_limit=args.node_limit,
        iter_limit=args.iter_limit,
        k_multi=args.k_multi,
        extraction=args.extraction,
        ilp_time_limit=args.ilp_time_limit,
        extraction_deadline=args.extraction_deadline,
        extraction_prune=args.extraction_prune,
        ilp_warm_start=args.ilp_warm_start,
        cycle_filter=cycle_filter,
        ilp_cycle_constraints=(cycle_filter == "none"),
        matcher=args.matcher,
        search_mode=args.search_mode,
        scheduler=args.scheduler,
        multipattern_join=args.multipattern_join,
        condition_cache=args.condition_cache,
        shape_analysis=args.shape_analysis,
        search_jobs=args.search_jobs,
        search_executor=args.search_executor,
    )


def _cmd_optimize(args) -> int:
    cost_model = AnalyticCostModel()
    graph = build_model(args.model, args.scale)
    result = optimize(graph, cost_model=cost_model, config=_config_from_args(args))
    if args.output:
        save_graph(result.optimized, args.output)
    if args.json:
        print(json.dumps(result.stats.as_dict(), indent=2))
    else:
        print(result.summary())
        if args.output:
            print(f"optimized graph written to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    cost_model = AnalyticCostModel()
    graph = build_model(args.model, args.scale)

    comparison = compare(
        graph,
        cost_model=cost_model,
        config=TensatConfig.fast().with_overrides(k_multi=args.k_multi),
        taso_budget=args.taso_budget,
    )

    # The CLI reports the model/scale it was asked for, not the graph's name.
    payload = {**comparison.as_dict(), "model": args.model, "scale": args.scale}
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        tensat, taso = comparison.tensat, comparison.taso
        print(f"{args.model} ({args.scale}): original cost {comparison.original_cost:.5f} ms")
        print(f"  TENSAT : {tensat.speedup_percent:6.1f}% speedup in {comparison.tensat_seconds:.2f}s")
        print(f"  TASO   : {taso.speedup_percent:6.1f}% speedup in {taso.total_seconds:.2f}s "
              f"(best found at {taso.best_seconds:.2f}s)")
    return 0


def _cmd_models(_args) -> int:
    for name in MODEL_NAMES:
        graph = build_model(name, "tiny")
        print(f"{name:12s} {graph.describe()}")
    return 0


def _cmd_rules(args) -> int:
    rules = default_ruleset()
    if args.tag:
        rules = rules.filter(include_tags=[args.tag])
    for rule_def in rules:
        kind = "multi " if rule_def.is_multi else "single"
        print(f"[{kind}] {rule_def.name:32s} tags={','.join(rule_def.tags)}")
    print(f"total: {rules.summary()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "optimize": _cmd_optimize,
        "compare": _cmd_compare,
        "models": _cmd_models,
        "rules": _cmd_rules,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
