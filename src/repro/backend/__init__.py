"""Numpy reference backend.

This package stands in for the paper's TASO/cuDNN runtime: it provides

* :mod:`repro.backend.kernels` -- a numpy implementation of every Table-2
  operator (used to verify rewrite rules numerically and to execute graphs),
* :mod:`repro.backend.executor` -- a reference interpreter for
  :class:`~repro.ir.graph.TensorGraph`,
* :mod:`repro.backend.runtime` -- simulated graph "runtime measurement" under
  a cost model (the quantity the paper's speedup percentages are computed
  from).
"""

from repro.backend.executor import ExecutionResult, Executor, execute_graph, outputs_allclose, random_feeds
from repro.backend.kernels import execute_symbol
from repro.backend.runtime import measure_graph_runtime, speedup_percent

__all__ = [
    "Executor",
    "ExecutionResult",
    "execute_graph",
    "outputs_allclose",
    "random_feeds",
    "execute_symbol",
    "measure_graph_runtime",
    "speedup_percent",
]
