"""Numpy implementations of every operator in the paper's Table 2.

Each kernel takes the operand *values* (numpy arrays / ints / strings) plus
the operands' :class:`~repro.ir.tensor.TensorData` metadata (needed by
``split``, whose cut position comes from the most recent concat recorded in
the metadata).  These kernels define the reference semantics against which
rewrite rules are verified numerically (:mod:`repro.rules.verify`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.ops import Activation, OpKind, Padding, symbol_to_op
from repro.ir.shapes import same_padding_amount
from repro.ir.tensor import DataKind, ShapeError, TensorData, parse_identifier

__all__ = ["execute_symbol", "apply_activation", "conv2d", "pool2d"]


def apply_activation(x: np.ndarray, mode: int) -> np.ndarray:
    """Apply a fused activation given its integer mode."""
    if mode == Activation.NONE:
        return x
    if mode == Activation.RELU:
        return np.maximum(x, 0.0)
    if mode == Activation.SIGMOID:
        return 1.0 / (1.0 + np.exp(-x))
    if mode == Activation.TANH:
        return np.tanh(x)
    raise ShapeError(f"unknown activation mode {mode}")


def _pad_input(x: np.ndarray, kh: int, kw: int, sh: int, sw: int, padding: int, pad_value: float) -> np.ndarray:
    if padding == Padding.VALID:
        return x
    ph = same_padding_amount(x.shape[2], kh, sh)
    pw = same_padding_amount(x.shape[3], kw, sw)
    return np.pad(
        x,
        ((0, 0), (0, 0), ph, pw),
        mode="constant",
        constant_values=pad_value,
    )


def conv2d(
    x: np.ndarray,
    w: np.ndarray,
    stride: Tuple[int, int],
    padding: int,
    activation: int,
) -> np.ndarray:
    """Grouped 2-D convolution, NCHW input and OIHW weight."""
    n, c_in, h, win = x.shape
    c_out, c_in_per_group, kh, kw = w.shape
    if c_in % c_in_per_group != 0:
        raise ShapeError(f"conv channels {c_in} not divisible by {c_in_per_group}")
    groups = c_in // c_in_per_group
    if c_out % groups != 0:
        raise ShapeError(f"conv output channels {c_out} not divisible by groups {groups}")
    c_out_per_group = c_out // groups
    sh, sw = stride

    xp = _pad_input(x, kh, kw, sh, sw, padding, 0.0)
    out_h = (xp.shape[2] - kh) // sh + 1
    out_w = (xp.shape[3] - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w), dtype=np.result_type(x, w))

    for g in range(groups):
        xg = xp[:, g * c_in_per_group : (g + 1) * c_in_per_group]
        wg = w[g * c_out_per_group : (g + 1) * c_out_per_group]
        acc = np.zeros((n, c_out_per_group, out_h, out_w), dtype=out.dtype)
        for i in range(kh):
            for j in range(kw):
                # (n, cin, out_h, out_w) patch for kernel offset (i, j)
                patch = xg[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw]
                # contract over input channels
                acc += np.einsum("nchw,oc->nohw", patch, wg[:, :, i, j], optimize=True)
        out[:, g * c_out_per_group : (g + 1) * c_out_per_group] = acc
    return apply_activation(out, activation)


def pool2d(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: int,
    activation: int,
    mode: str,
) -> np.ndarray:
    """Max or average pooling, NCHW."""
    kh, kw = kernel
    sh, sw = stride
    pad_value = -np.inf if mode == "max" else 0.0
    xp = _pad_input(x, kh, kw, sh, sw, padding, pad_value)
    out_h = (xp.shape[2] - kh) // sh + 1
    out_w = (xp.shape[3] - kw) // sw + 1
    windows = []
    for i in range(kh):
        for j in range(kw):
            windows.append(xp[:, :, i : i + out_h * sh : sh, j : j + out_w * sw : sw])
    stacked = np.stack(windows, axis=0)
    if mode == "max":
        out = stacked.max(axis=0)
    elif mode == "avg":
        # Average over the kernel window.  With SAME padding the padded zeros
        # participate in the average (count-include-pad), matching the simple
        # TASO semantics.
        out = stacked.mean(axis=0)
    else:
        raise ShapeError(f"unknown pooling mode {mode!r}")
    return apply_activation(out, activation)


def _enlarge(x: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Zero-pad kernel ``x`` spatially (centered) to the spatial size of ``ref``."""
    target_h, target_w = ref.shape[2], ref.shape[3]
    kh, kw = x.shape[2], x.shape[3]
    if kh > target_h or kw > target_w:
        raise ShapeError("enlarge target smaller than kernel")
    pad_top = (target_h - kh) // 2
    pad_bottom = target_h - kh - pad_top
    pad_left = (target_w - kw) // 2
    pad_right = target_w - kw - pad_left
    return np.pad(x, ((0, 0), (0, 0), (pad_top, pad_bottom), (pad_left, pad_right)))


def _merge_weight(w: np.ndarray, count: int) -> np.ndarray:
    """Merge every ``count`` groups of a grouped-conv weight (block-diagonal fill)."""
    c_out, c_in, kh, kw = w.shape
    if count <= 0 or c_out % count != 0:
        raise ShapeError(f"merge count {count} incompatible with {c_out} output channels")
    merged = np.zeros((c_out, c_in * count, kh, kw), dtype=w.dtype)
    c_out_per_block = c_out // count
    for b in range(count):
        rows = slice(b * c_out_per_block, (b + 1) * c_out_per_block)
        cols = slice(b * c_in, (b + 1) * c_in)
        merged[rows, cols] = w[rows]
    return merged


def _split_sizes(data: TensorData, axis: int, total: int) -> Tuple[int, int]:
    sizes = data.split_sizes_for_axis(axis)
    if sizes is None:
        if total % 2 != 0:
            raise ShapeError(f"split of odd dimension {total} with no recorded concat position")
        return total // 2, total // 2
    return sizes[0], total - sizes[0]


def execute_symbol(
    symbol: str,
    operands: Sequence[object],
    operand_data: Optional[Sequence[TensorData]] = None,
) -> object:
    """Execute one operator given operand values (and metadata for ``split``)."""
    op, literal = symbol_to_op(symbol)

    if op == OpKind.NUM:
        return int(literal)
    if op == OpKind.STR:
        return str(literal)
    if op in (OpKind.INPUT, OpKind.WEIGHT):
        raise ShapeError(f"{symbol} must be bound to a concrete array by the executor")

    if op == OpKind.EWADD:
        return operands[0] + operands[1]
    if op == OpKind.EWMUL:
        return operands[0] * operands[1]
    if op == OpKind.MATMUL:
        act, a, b = operands
        return apply_activation(np.matmul(a, b), int(act))
    if op == OpKind.CONV:
        sh, sw, padding, act, x, w = operands
        return conv2d(x, w, (int(sh), int(sw)), int(padding), int(act))
    if op == OpKind.RELU:
        return np.maximum(operands[0], 0.0)
    if op == OpKind.TANH:
        return np.tanh(operands[0])
    if op == OpKind.SIGMOID:
        return 1.0 / (1.0 + np.exp(-operands[0]))
    if op in (OpKind.POOLMAX, OpKind.POOLAVG):
        x, kh, kw, sh, sw, padding, act = operands
        mode = "max" if op == OpKind.POOLMAX else "avg"
        return pool2d(x, (int(kh), int(kw)), (int(sh), int(sw)), int(padding), int(act), mode)
    if op == OpKind.TRANSPOSE:
        x, perm_str = operands
        perm = tuple(int(tok) for tok in str(perm_str).split())
        return np.transpose(x, perm)
    if op == OpKind.ENLARGE:
        return _enlarge(operands[0], operands[1])
    if op == OpKind.CONCAT:
        axis = int(operands[0])
        return np.concatenate(operands[1:], axis=axis)
    if op == OpKind.SPLIT:
        axis = int(operands[0])
        x = operands[1]
        if operand_data is None or len(operand_data) < 2:
            raise ShapeError("split needs operand metadata to locate the cut position")
        first, _ = _split_sizes(operand_data[1], axis, x.shape[axis])
        return (
            np.take(x, range(0, first), axis=axis),
            np.take(x, range(first, x.shape[axis]), axis=axis),
        )
    if op == OpKind.SPLIT0:
        return operands[0][0]
    if op == OpKind.SPLIT1:
        return operands[0][1]
    if op == OpKind.MERGE:
        return _merge_weight(operands[0], int(operands[1]))
    if op == OpKind.RESHAPE:
        x, shape_str = operands
        new_shape = tuple(int(tok) for tok in str(shape_str).split())
        return np.reshape(x, new_shape)
    if op == OpKind.NOOP:
        return tuple(operands)
    raise ShapeError(f"unknown operator symbol {symbol!r}")
