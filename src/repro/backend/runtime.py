"""Simulated graph runtime "measurement".

The paper measures the end-to-end runtime of the original and optimized graphs
with TASO's cuDNN backend and reports the speedup percentage.  Without a GPU,
the graph runtime here is defined by the cost model (the sum of per-operator
costs), optionally perturbed by multiplicative noise to emulate measurement
jitter in the five-repetition protocol of Figure 4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.costs.model import CostModel
from repro.ir.graph import TensorGraph

__all__ = ["measure_graph_runtime", "speedup_percent"]


def measure_graph_runtime(
    graph: TensorGraph,
    cost_model: CostModel,
    noise: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    repeats: int = 1,
) -> float:
    """Simulated runtime of ``graph`` in milliseconds.

    ``noise`` is the relative standard deviation of the per-measurement
    multiplicative jitter; with ``repeats > 1`` the mean of the simulated
    measurements is returned (mirroring the paper's repeated-measurement
    protocol).
    """
    base = cost_model.graph_cost(graph)
    if noise <= 0.0:
        return base
    rng = rng if rng is not None else np.random.default_rng(0)
    samples = base * (1.0 + noise * rng.standard_normal(max(repeats, 1)))
    return float(np.mean(np.maximum(samples, 0.0)))


def speedup_percent(original_runtime: float, optimized_runtime: float) -> float:
    """Speedup of the optimized graph over the original, in percent.

    Matches the paper's convention: a graph twice as fast is a 100% speedup.
    """
    if optimized_runtime <= 0:
        raise ValueError("optimized runtime must be positive")
    return (original_runtime / optimized_runtime - 1.0) * 100.0
