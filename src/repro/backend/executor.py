"""Reference interpreter for tensor graphs.

Evaluates a :class:`~repro.ir.graph.TensorGraph` node by node using the numpy
kernels.  Input and weight tensors are bound by name; any tensor not supplied
is filled with a deterministic pseudo-random array derived from its identifier,
so two graphs over the same inputs/weights can be compared numerically even
when no explicit feeds are given (this is how rewrite rules and end-to-end
optimizations are verified for semantics preservation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.backend.kernels import execute_symbol
from repro.ir.graph import TensorGraph
from repro.ir.ops import OpKind
from repro.ir.tensor import DataKind, TensorData

__all__ = ["Executor", "ExecutionResult", "execute_graph", "random_feeds", "outputs_allclose"]


def _seed_from_identifier(identifier: str, salt: int = 0) -> int:
    digest = hashlib.sha256(f"{salt}:{identifier}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def random_feeds(graph: TensorGraph, salt: int = 0, scale: float = 0.5) -> Dict[str, np.ndarray]:
    """Deterministic pseudo-random arrays for every input/weight of ``graph``.

    The same identifier always produces the same array (for a given ``salt``),
    so the original and optimized graphs see identical data.  Values are kept
    small to avoid overflow through deep element-wise chains.
    """
    feeds: Dict[str, np.ndarray] = {}
    for node in graph.nodes:
        if node.op not in (OpKind.INPUT, OpKind.WEIGHT):
            continue
        ident = str(graph.nodes[node.inputs[0]].value)
        if ident in feeds:
            continue
        rng = np.random.default_rng(_seed_from_identifier(ident, salt))
        feeds[ident] = (rng.standard_normal(node.data.shape) * scale).astype(np.float64)
    return feeds


@dataclass
class ExecutionResult:
    """Outputs of one graph execution, keyed by output position."""

    outputs: List[np.ndarray]
    values: Dict[int, object] = field(default_factory=dict)

    def output(self, index: int = 0) -> np.ndarray:
        return self.outputs[index]


class Executor:
    """Evaluates tensor graphs with the numpy kernels."""

    def __init__(self, graph: TensorGraph) -> None:
        self.graph = graph

    def run(self, feeds: Optional[Mapping[str, np.ndarray]] = None, salt: int = 0) -> ExecutionResult:
        """Execute the graph.  Missing inputs/weights are generated deterministically."""
        feeds = dict(feeds) if feeds else {}
        defaults = random_feeds(self.graph, salt=salt)
        for key, value in defaults.items():
            feeds.setdefault(key, value)

        values: Dict[int, object] = {}
        for node in self.graph.nodes:
            if node.op == OpKind.NUM:
                values[node.id] = int(node.value)
            elif node.op == OpKind.STR:
                values[node.id] = str(node.value)
            elif node.op in (OpKind.INPUT, OpKind.WEIGHT):
                ident = str(self.graph.nodes[node.inputs[0]].value)
                array = np.asarray(feeds[ident])
                if tuple(array.shape) != node.data.shape:
                    raise ValueError(
                        f"feed for {ident!r} has shape {array.shape}, expected {node.data.shape}"
                    )
                values[node.id] = array
            else:
                operands = [values[c] for c in node.inputs]
                operand_data = [self.graph.nodes[c].data for c in node.inputs]
                values[node.id] = execute_symbol(node.symbol, operands, operand_data)

        outputs = [np.asarray(values[o]) for o in self.graph.outputs]
        return ExecutionResult(outputs=outputs, values=values)


def execute_graph(
    graph: TensorGraph,
    feeds: Optional[Mapping[str, np.ndarray]] = None,
    salt: int = 0,
) -> ExecutionResult:
    """Convenience wrapper around :class:`Executor`."""
    return Executor(graph).run(feeds=feeds, salt=salt)


def outputs_allclose(
    a: ExecutionResult,
    b: ExecutionResult,
    rtol: float = 1e-5,
    atol: float = 1e-6,
) -> bool:
    """Compare two executions output-by-output."""
    if len(a.outputs) != len(b.outputs):
        return False
    return all(
        np.allclose(x, y, rtol=rtol, atol=atol) for x, y in zip(a.outputs, b.outputs)
    )
