"""Numerical verification of rewrite rules.

TASO verifies generated rules against an operator specification; the closest
equivalent here is to instantiate each rule's source and target patterns with
the example operands registered alongside the rule, execute both with the
numpy backend on identical (deterministically generated) data, and compare the
outputs.  Every rule in the library is verified this way by the test suite,
and users adding custom rules can reuse :func:`verify_rule` for theirs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.executor import execute_graph
from repro.egraph.language import ENode, RecExpr
from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.pattern import Pattern
from repro.egraph.rewrite import Rewrite
from repro.ir.convert import recexpr_to_graph
from repro.ir.graph import TensorGraph
from repro.ir.tensor import format_identifier
from repro.rules.defs import ExampleBinding, RuleDef

__all__ = ["VerificationResult", "pattern_to_graph", "verify_rule"]


@dataclass
class VerificationResult:
    """Outcome of verifying one rule."""

    name: str
    ok: bool
    max_error: float
    message: str = ""


def _binding_to_recexpr(var: str, binding: ExampleBinding) -> RecExpr:
    kind, payload = binding
    if kind in ("input", "weight"):
        ident = format_identifier(var, tuple(payload))
        expr = RecExpr()
        ident_idx = expr.add(ENode(ident))
        expr.add(ENode(kind, (ident_idx,)))
        return expr
    if kind == "int":
        expr = RecExpr()
        expr.add(ENode(str(int(payload))))
        return expr
    if kind == "str":
        expr = RecExpr()
        expr.add(ENode(str(payload)))
        return expr
    raise ValueError(f"unknown example binding kind {kind!r} for ?{var}")


def pattern_to_graph(
    pattern: Pattern, example: Dict[str, ExampleBinding], name: str = "pattern"
) -> TensorGraph:
    """Materialise a pattern as a concrete :class:`TensorGraph` using example bindings."""
    subst_terms = {var: _binding_to_recexpr(var, binding) for var, binding in example.items()}
    expr = pattern.to_recexpr(subst_terms)
    return recexpr_to_graph(expr, name=name)


def _compare(
    lhs: TensorGraph, rhs: TensorGraph, rtol: float, atol: float, salt: int
) -> Tuple[bool, float]:
    out_l = execute_graph(lhs, salt=salt).outputs
    out_r = execute_graph(rhs, salt=salt).outputs
    if len(out_l) != len(out_r):
        return False, float("inf")
    max_err = 0.0
    for a, b in zip(out_l, out_r):
        if a.shape != b.shape:
            return False, float("inf")
        max_err = max(max_err, float(np.max(np.abs(a - b))) if a.size else 0.0)
        if not np.allclose(a, b, rtol=rtol, atol=atol):
            return False, max_err
    return True, max_err


def verify_rule(
    rule_def: RuleDef,
    rtol: float = 1e-5,
    atol: float = 1e-6,
    salts: Tuple[int, ...] = (0, 1),
) -> VerificationResult:
    """Check a rule's source and target patterns compute the same values.

    Shared variables across patterns receive identical operand data because
    feeds are generated deterministically from the variable name, so the two
    sides see exactly the same inputs.  Several ``salts`` re-run the check with
    different random data.
    """
    example = rule_def.example
    if not example:
        return VerificationResult(rule_def.name, False, float("inf"), "rule has no example bindings")

    rule = rule_def.rule
    if isinstance(rule, Rewrite):
        pairs: List[Tuple[Pattern, Pattern]] = [(rule.lhs, rule.rhs)]
    elif isinstance(rule, MultiPatternRewrite):
        pairs = list(zip(rule.sources, rule.targets))
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown rule type {type(rule)!r}")

    worst = 0.0
    for salt in salts:
        for i, (source, target) in enumerate(pairs):
            try:
                lhs_graph = pattern_to_graph(source, example, name=f"{rule_def.name}-src{i}")
                rhs_graph = pattern_to_graph(target, example, name=f"{rule_def.name}-tgt{i}")
            except Exception as exc:  # noqa: BLE001 - report as verification failure
                return VerificationResult(
                    rule_def.name, False, float("inf"), f"failed to materialise patterns: {exc}"
                )
            ok, err = _compare(lhs_graph, rhs_graph, rtol, atol, salt)
            worst = max(worst, err)
            if not ok:
                return VerificationResult(
                    rule_def.name,
                    False,
                    err,
                    f"output {i} differs under salt {salt} (max abs error {err:.3g})",
                )
    return VerificationResult(rule_def.name, True, worst)
