"""Shape-checking preconditions for rewrite rules.

The paper applies a rewrite at a syntactic match only after *shape checking*
(Section 4): the target pattern must be well-typed for the tensors the
variables are bound to.  The helpers below build such conditions from the
tensor e-class analysis data.

Two evaluation paths exist behind :func:`targets_shape_valid`:

* **Compiled** (the default with ``shape_analysis="on"``): at
  condition-construction time each target pattern is flattened into a
  post-order program over slots -- variable leaves load the binding's
  precomputed fact straight from ``egraph.analysis_data``, and only the
  target's *new* operator spine runs :func:`~repro.ir.shapes.infer_symbol`,
  memoized per instruction on the interned children facts
  (:mod:`repro.egraph.shapeanalysis`), so repeated shapes across candidate
  bindings cost one dict probe.  Sub-terms shared across targets compile to
  one slot.
* **Spec** (``shape_analysis="off"``, or any analysis that does not
  advertise interned facts): :func:`_infer_term` re-runs bottom-up
  inference per evaluation.  This is the executable specification; the
  compiled path must return the identical verdict for every match (pinned
  by the golden trajectory tests).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match
from repro.egraph.multipattern import MultiMatch
from repro.egraph.pattern import Pattern, PatternNode, PatternTerm, PatternVar
from repro.egraph.shapeanalysis import intern_data
from repro.ir.opspec import infer_symbol
from repro.ir.tensor import DataKind, ShapeError, TensorData

__all__ = [
    "pattern_data",
    "targets_shape_valid",
    "var_is_int",
    "var_rank_is",
    "var_shape_axis_equal",
    "conv_not_grouped",
    "all_of",
]

AnyMatch = Union[Match, MultiMatch]
Condition = Callable[[EGraph, AnyMatch], bool]


def _infer_term(egraph: EGraph, subst: Dict[str, int], term: PatternTerm, memo: Dict, key_of) -> TensorData:
    """Bottom-up shape inference for one pattern term under ``subst``.

    Variables read their metadata from the e-class analysis; operator nodes
    run shape inference on their children's results.  ``memo`` (keyed by
    ``key_of(term)``) shares the inference of repeated sub-terms within one
    evaluation.  Raises :class:`ShapeError` when the term is ill-typed.

    This is the executable spec of the compiled program in
    :class:`TargetsShapeValid`; both paths must agree on every verdict.
    """
    key = key_of(term)
    data = memo.get(key)
    if data is not None:
        return data
    if isinstance(term, PatternVar):
        eclass = subst.get(term.name)
        if eclass is None:
            raise ShapeError(f"variable ?{term.name} unbound")
        data = egraph.analysis_data(eclass)
        if data is None or not data.is_valid:
            raise ShapeError(f"variable ?{term.name} has no valid analysis data")
    else:
        data = infer_symbol(
            term.op, [_infer_term(egraph, subst, c, memo, key_of) for c in term.children]
        )
    memo[key] = data
    return data


def pattern_data(egraph: EGraph, pattern: Pattern, subst: Dict[str, int]) -> TensorData:
    """Infer the metadata the root of ``pattern`` would have under ``subst``.

    Raises :class:`ShapeError` when the pattern would be ill-typed.
    """
    return _infer_term(egraph, subst, pattern.root, {}, id)


#: Memo sentinel: the instruction's inference raised :class:`ShapeError`
#: for these children facts (a pure function of them, so cacheable).
_SHAPE_ERROR = TensorData.invalid("target spine shape error")


class TargetsShapeValid:
    """Condition: every target pattern type-checks under the match's bindings.

    Construction compiles the targets into one flat post-order program.
    Each instruction is ``(var_name, op, child_slots, memo)``:

    * a **variable load** (``var_name`` set) reads the binding's fact from
      ``egraph.analysis_data`` -- an O(1) lookup, no inference;
    * an **operator step** (``op`` set) runs ``infer_symbol`` over the
      children slots' facts, memoized in ``memo`` keyed on the interned
      children facts' ids.  The memo is sound across candidate bindings,
      iterations, rebuilds, and e-graphs because inference is a pure
      function of the children facts, and the ids are stable because
      interned facts are never freed (:mod:`repro.egraph.shapeanalysis`).

    Sub-terms shared across targets are detected structurally at
    construction time and compile to a single slot: the targets of a
    multi-pattern merge differ only in their outer projection (``split0`` /
    ``split1`` around one merged operator chain), so the shared chain is
    evaluated once per match instead of once per target.

    The compiled path runs only when the e-graph's analysis advertises
    interned facts (``analysis.compiled_conditions``); otherwise the
    on-demand :func:`_infer_term` spec path runs.  Verdicts are identical
    either way (golden tests pin the trajectories bit-for-bit).
    """

    __slots__ = ("targets", "_roots", "_subterm_keys", "_instrs", "_root_slots")

    def __init__(self, targets: Sequence[Pattern]) -> None:
        self.targets = tuple(targets)
        self._roots = [target.root for target in self.targets]

        # id(subterm) -> structural key; shared sub-terms (within and across
        # targets) get one key even when parsed separately.
        self._subterm_keys: Dict[int, str] = {}

        def index(term: PatternTerm) -> str:
            if isinstance(term, PatternVar):
                key = "?" + term.name
            else:
                key = "(" + " ".join([term.op] + [index(c) for c in term.children]) + ")"
            self._subterm_keys[id(term)] = key
            return key

        for root in self._roots:
            index(root)

        # Flat post-order program: structural key -> slot, one instruction
        # per distinct sub-term, children always at lower slots.
        instrs: List[Tuple[Optional[str], Optional[str], Tuple[int, ...], dict]] = []
        slot_of: Dict[str, int] = {}

        def compile_term(term: PatternTerm) -> int:
            key = self._subterm_keys[id(term)]
            slot = slot_of.get(key)
            if slot is not None:
                return slot
            if isinstance(term, PatternVar):
                instr = (term.name, None, (), {})
            else:
                child_slots = tuple(compile_term(c) for c in term.children)
                instr = (None, term.op, child_slots, {})
            slot = len(instrs)
            instrs.append(instr)
            slot_of[key] = slot
            return slot

        self._root_slots = tuple(compile_term(root) for root in self._roots)
        self._instrs = tuple(instrs)

    def _key_of(self, term: PatternTerm) -> str:
        return self._subterm_keys[id(term)]

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        # Adapters (e.g. the TASO-style search's GraphAnalysisAdapter) expose
        # only analysis_data/find; the compiled path additionally requires the
        # analysis to advertise interned facts, so fall back to the spec path
        # unless it does.
        analysis = getattr(egraph, "analysis", None)
        if getattr(analysis, "compiled_conditions", False):
            return self._check_compiled(egraph, match.subst)
        return self._check_spec(egraph, match.subst)

    # -- compiled path -------------------------------------------------- #

    def _check_compiled(self, egraph: EGraph, subst: Dict[str, int]) -> bool:
        data_of = egraph.analysis_data
        subst_get = subst.get
        values: List[TensorData] = []
        append = values.append
        for var, op, child_slots, memo in self._instrs:
            if var is not None:
                eclass = subst_get(var)
                if eclass is None:
                    return False
                data = data_of(eclass)
                if data is None or not data.is_valid:
                    return False
            else:
                children = [values[i] for i in child_slots]
                key = tuple(map(id, children))
                data = memo.get(key)
                if data is None:
                    try:
                        data = intern_data(infer_symbol(op, children))
                    except ShapeError:
                        data = _SHAPE_ERROR
                    memo[key] = data
                if not data.is_valid:
                    return False
            append(data)
        return True

    # -- spec path (executable specification) --------------------------- #

    def _check_spec(self, egraph: EGraph, subst: Dict[str, int]) -> bool:
        memo: Dict[str, TensorData] = {}
        for root in self._roots:
            try:
                data = _infer_term(egraph, subst, root, memo, self._key_of)
            except ShapeError:
                return False
            if not data.is_valid:
                return False
        return True


def targets_shape_valid(targets: Sequence[Pattern]) -> Condition:
    """Condition: every target pattern type-checks under the match's bindings.

    See :class:`TargetsShapeValid` for the compiled-program evaluation and
    the on-demand inference spec path it dispatches between.
    """
    return TargetsShapeValid(targets)


class _VarIsInt:
    """See :func:`var_is_int`.  A class (not a closure) so rules pickle."""

    __slots__ = ("var", "value")

    def __init__(self, var: str, value: Optional[int]) -> None:
        self.var = var
        self.value = value

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        eclass = match.subst.get(self.var)
        if eclass is None:
            return False
        data = egraph.analysis_data(eclass)
        if data is None or data.kind != DataKind.INT:
            return False
        return self.value is None or int(data.value) == self.value


def var_is_int(var: str, value: Optional[int] = None) -> Condition:
    """Condition: ``?var`` is an integer parameter (optionally equal to ``value``)."""
    return _VarIsInt(var, value)


class _VarRankIs:
    """See :func:`var_rank_is`.  A class (not a closure) so rules pickle."""

    __slots__ = ("var", "rank")

    def __init__(self, var: str, rank: int) -> None:
        self.var = var
        self.rank = rank

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        eclass = match.subst.get(self.var)
        if eclass is None:
            return False
        data = egraph.analysis_data(eclass)
        return data is not None and data.kind == DataKind.TENSOR and data.rank == self.rank


def var_rank_is(var: str, rank: int) -> Condition:
    """Condition: ``?var`` is a tensor of the given rank."""
    return _VarRankIs(var, rank)


def _tensor_pair(egraph: EGraph, match: AnyMatch, var_a: str, var_b: str):
    """The two variables' facts when both are bound tensors, else ``None``.

    All the point conditions below start the same way: a ``subst.get`` per
    variable, a single ``analysis_data`` read each, and a kind check --
    precomputed facts make the whole precondition a couple of dict lookups.
    """
    eclass_a = match.subst.get(var_a)
    eclass_b = match.subst.get(var_b)
    if eclass_a is None or eclass_b is None:
        return None
    da = egraph.analysis_data(eclass_a)
    db = egraph.analysis_data(eclass_b)
    if da is None or db is None:
        return None
    if da.kind != DataKind.TENSOR or db.kind != DataKind.TENSOR:
        return None
    return da, db


class _VarShapeAxisEqual:
    """See :func:`var_shape_axis_equal`.  A class so rules pickle."""

    __slots__ = ("var_a", "var_b", "axis")

    def __init__(self, var_a: str, var_b: str, axis: int) -> None:
        self.var_a = var_a
        self.var_b = var_b
        self.axis = axis

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        pair = _tensor_pair(egraph, match, self.var_a, self.var_b)
        if pair is None:
            return False
        da, db = pair
        axis = self.axis
        if da.rank <= axis or db.rank <= axis:
            return False
        return da.shape[axis] == db.shape[axis]


def var_shape_axis_equal(var_a: str, var_b: str, axis: int) -> Condition:
    """Condition: two tensor variables agree on the size of ``axis``."""
    return _VarShapeAxisEqual(var_a, var_b, axis)


def conv_not_grouped(input_var: str, weight_var: str) -> Condition:
    """Condition: the convolution of ``?input_var`` by ``?weight_var`` is ungrouped.

    The concat-based conv merge rewrites are only sound for groups == 1
    (otherwise concatenating output channels re-partitions the groups).
    """
    return _ConvNotGrouped(input_var, weight_var)


class _ConvNotGrouped:
    """See :func:`conv_not_grouped`.  A class so rules pickle."""

    __slots__ = ("input_var", "weight_var")

    def __init__(self, input_var: str, weight_var: str) -> None:
        self.input_var = input_var
        self.weight_var = weight_var

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        pair = _tensor_pair(egraph, match, self.input_var, self.weight_var)
        if pair is None:
            return False
        x, w = pair
        if x.rank != 4 or w.rank != 4:
            return False
        return x.shape[1] == w.shape[1]


def enlarge_compatible(small_var: str, large_var: str) -> Condition:
    """Condition for merging convs with different kernel sizes via ``enlarge``.

    ``?small_var`` can be zero-padded to the spatial size of ``?large_var``
    and the padded kernel computes the same convolution under SAME padding and
    stride 1: both kernels must share input channels, the target spatial size
    must be odd, and the size difference must be even so the original taps
    stay centered.
    """
    return _EnlargeCompatible(small_var, large_var)


class _EnlargeCompatible:
    """See :func:`enlarge_compatible`.  A class so rules pickle."""

    __slots__ = ("small_var", "large_var")

    def __init__(self, small_var: str, large_var: str) -> None:
        self.small_var = small_var
        self.large_var = large_var

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        pair = _tensor_pair(egraph, match, self.small_var, self.large_var)
        if pair is None:
            return False
        small, large = pair
        if small.rank != 4 or large.rank != 4:
            return False
        if small.shape[1] != large.shape[1]:
            return False
        s_kh, s_kw = small.shape[2], small.shape[3]
        l_kh, l_kw = large.shape[2], large.shape[3]
        if (s_kh, s_kw) == (l_kh, l_kw):
            return False  # same-size kernels are handled by the plain merge rule
        if s_kh > l_kh or s_kw > l_kw:
            return False
        if l_kh % 2 == 0 or l_kw % 2 == 0:
            return False
        return (l_kh - s_kh) % 2 == 0 and (l_kw - s_kw) % 2 == 0


class _AllOf:
    """See :func:`all_of`.  A class (not a closure) so rules pickle."""

    __slots__ = ("conditions",)

    def __init__(self, conditions: "tuple") -> None:
        self.conditions = conditions

    def __call__(self, egraph: EGraph, match: AnyMatch) -> bool:
        return all(c(egraph, match) for c in self.conditions)


def all_of(*conditions: Condition) -> Condition:
    """Conjunction of several conditions."""
    return _AllOf(conditions)
