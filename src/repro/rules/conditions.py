"""Shape-checking preconditions for rewrite rules.

The paper applies a rewrite at a syntactic match only after *shape checking*
(Section 4): the target pattern must be well-typed for the tensors the
variables are bound to.  The helpers below build such conditions from the
tensor e-class analysis data.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match
from repro.egraph.multipattern import MultiMatch
from repro.egraph.pattern import Pattern, PatternNode, PatternTerm, PatternVar
from repro.ir.shapes import infer_symbol
from repro.ir.tensor import DataKind, ShapeError, TensorData

__all__ = [
    "pattern_data",
    "targets_shape_valid",
    "var_is_int",
    "var_rank_is",
    "var_shape_axis_equal",
    "conv_not_grouped",
    "all_of",
]

AnyMatch = Union[Match, MultiMatch]
Condition = Callable[[EGraph, AnyMatch], bool]


def _infer_term(egraph: EGraph, subst: Dict[str, int], term: PatternTerm, memo: Dict, key_of) -> TensorData:
    """Bottom-up shape inference for one pattern term under ``subst``.

    Variables read their metadata from the e-class analysis; operator nodes
    run shape inference on their children's results.  ``memo`` (keyed by
    ``key_of(term)``) shares the inference of repeated sub-terms within one
    evaluation.  Raises :class:`ShapeError` when the term is ill-typed.
    """
    key = key_of(term)
    data = memo.get(key)
    if data is not None:
        return data
    if isinstance(term, PatternVar):
        eclass = subst.get(term.name)
        if eclass is None:
            raise ShapeError(f"variable ?{term.name} unbound")
        data = egraph.analysis_data(eclass)
        if data is None or not data.is_valid:
            raise ShapeError(f"variable ?{term.name} has no valid analysis data")
    else:
        data = infer_symbol(
            term.op, [_infer_term(egraph, subst, c, memo, key_of) for c in term.children]
        )
    memo[key] = data
    return data


def pattern_data(egraph: EGraph, pattern: Pattern, subst: Dict[str, int]) -> TensorData:
    """Infer the metadata the root of ``pattern`` would have under ``subst``.

    Raises :class:`ShapeError` when the pattern would be ill-typed.
    """
    return _infer_term(egraph, subst, pattern.root, {}, id)


def targets_shape_valid(targets: Sequence[Pattern]) -> Condition:
    """Condition: every target pattern type-checks under the match's bindings.

    Sub-terms shared across targets are inferred once per evaluation: the
    targets of a multi-pattern merge differ only in their outer projection
    (``split0`` / ``split1`` around one merged operator chain), so the
    expensive inference of the shared chain would otherwise run once per
    target.  Sharing is detected structurally (per-subterm keys precomputed
    here, at condition-construction time), so parsing the targets separately
    does not defeat it.
    """
    # id(subterm) -> structural key; computed once, reused every evaluation.
    subterm_keys: Dict[int, str] = {}

    def index(term: PatternTerm) -> str:
        if isinstance(term, PatternVar):
            key = "?" + term.name
        else:
            key = "(" + " ".join([term.op] + [index(c) for c in term.children]) + ")"
        subterm_keys[id(term)] = key
        return key

    roots = [target.root for target in targets]
    for root in roots:
        index(root)

    def key_of(term: PatternTerm) -> str:
        return subterm_keys[id(term)]

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        subst = match.subst
        memo: Dict[str, TensorData] = {}
        for root in roots:
            try:
                data = _infer_term(egraph, subst, root, memo, key_of)
            except ShapeError:
                return False
            if not data.is_valid:
                return False
        return True

    return condition


def var_is_int(var: str, value: Optional[int] = None) -> Condition:
    """Condition: ``?var`` is an integer parameter (optionally equal to ``value``)."""

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        eclass = match.subst.get(var)
        if eclass is None:
            return False
        data = egraph.analysis_data(eclass)
        if data is None or data.kind != DataKind.INT:
            return False
        return value is None or int(data.value) == value

    return condition


def var_rank_is(var: str, rank: int) -> Condition:
    """Condition: ``?var`` is a tensor of the given rank."""

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        eclass = match.subst.get(var)
        if eclass is None:
            return False
        data = egraph.analysis_data(eclass)
        return data is not None and data.kind == DataKind.TENSOR and data.rank == rank

    return condition


def var_shape_axis_equal(var_a: str, var_b: str, axis: int) -> Condition:
    """Condition: two tensor variables agree on the size of ``axis``."""

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        da = egraph.analysis_data(match.subst.get(var_a, -1)) if var_a in match.subst else None
        db = egraph.analysis_data(match.subst.get(var_b, -1)) if var_b in match.subst else None
        if da is None or db is None:
            return False
        if da.kind != DataKind.TENSOR or db.kind != DataKind.TENSOR:
            return False
        if da.rank <= axis or db.rank <= axis:
            return False
        return da.shape[axis] == db.shape[axis]

    return condition


def conv_not_grouped(input_var: str, weight_var: str) -> Condition:
    """Condition: the convolution of ``?input_var`` by ``?weight_var`` is ungrouped.

    The concat-based conv merge rewrites are only sound for groups == 1
    (otherwise concatenating output channels re-partitions the groups).
    """

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        x = egraph.analysis_data(match.subst.get(input_var, -1)) if input_var in match.subst else None
        w = egraph.analysis_data(match.subst.get(weight_var, -1)) if weight_var in match.subst else None
        if x is None or w is None:
            return False
        if x.kind != DataKind.TENSOR or w.kind != DataKind.TENSOR:
            return False
        if x.rank != 4 or w.rank != 4:
            return False
        return x.shape[1] == w.shape[1]

    return condition


def enlarge_compatible(small_var: str, large_var: str) -> Condition:
    """Condition for merging convs with different kernel sizes via ``enlarge``.

    ``?small_var`` can be zero-padded to the spatial size of ``?large_var``
    and the padded kernel computes the same convolution under SAME padding and
    stride 1: both kernels must share input channels, the target spatial size
    must be odd, and the size difference must be even so the original taps
    stay centered.
    """

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        small = egraph.analysis_data(match.subst.get(small_var, -1)) if small_var in match.subst else None
        large = egraph.analysis_data(match.subst.get(large_var, -1)) if large_var in match.subst else None
        if small is None or large is None:
            return False
        if small.kind != DataKind.TENSOR or large.kind != DataKind.TENSOR:
            return False
        if small.rank != 4 or large.rank != 4:
            return False
        if small.shape[1] != large.shape[1]:
            return False
        s_kh, s_kw = small.shape[2], small.shape[3]
        l_kh, l_kw = large.shape[2], large.shape[3]
        if (s_kh, s_kw) == (l_kh, l_kw):
            return False  # same-size kernels are handled by the plain merge rule
        if s_kh > l_kh or s_kw > l_kw:
            return False
        if l_kh % 2 == 0 or l_kw % 2 == 0:
            return False
        return (l_kh - s_kh) % 2 == 0 and (l_kw - s_kw) % 2 == 0

    return condition


def all_of(*conditions: Condition) -> Condition:
    """Conjunction of several conditions."""

    def condition(egraph: EGraph, match: AnyMatch) -> bool:
        return all(c(egraph, match) for c in conditions)

    return condition
