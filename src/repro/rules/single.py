"""Single-pattern rewrite rules.

Each rule is the equivalence of one output pattern with another (paper
Section 3.2).  The set below covers the TASO rule categories that the seven
benchmark models exercise:

* element-wise algebra (commutativity, associativity, distributivity),
* matrix-multiplication algebra (associativity, linearity, the Figure-11
  "merge two matmuls feeding an add" pattern),
* activation fusion into matmul/conv kernels,
* concat/split inverses,
* convolution linearity over input and weights, and the Figure-10 two-level
  convolution merge used by NasNet-A,
* geometric identities (transpose involution, matmul transposition).

Every rule carries example operand shapes so the entire set is verified
numerically by ``tests/test_rules_verify.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.egraph.pattern import Pattern
from repro.egraph.rewrite import Rewrite
from repro.rules.conditions import all_of, targets_shape_valid, var_rank_is
from repro.rules.defs import RuleDef

__all__ = ["single_pattern_rules"]


def _rule(
    name: str,
    lhs: str,
    rhs: str,
    example: Dict[str, tuple],
    tags: tuple = (),
    extra_condition=None,
    bidirectional: bool = True,
) -> List[RuleDef]:
    """Create one rule (and, by default, its reverse) with a shape-check condition."""
    defs: List[RuleDef] = []
    forward_cond = targets_shape_valid([Pattern.parse(rhs)])
    if extra_condition is not None:
        forward_cond = all_of(forward_cond, extra_condition)
    defs.append(
        RuleDef(Rewrite.parse(name, lhs, rhs, forward_cond), tags=tags, example=example)
    )
    if bidirectional:
        lhs_vars = set(Pattern.parse(lhs).variables())
        rhs_vars = set(Pattern.parse(rhs).variables())
        if lhs_vars <= rhs_vars:
            reverse_cond = targets_shape_valid([Pattern.parse(lhs)])
            if extra_condition is not None:
                reverse_cond = all_of(reverse_cond, extra_condition)
            defs.append(
                RuleDef(Rewrite.parse(name + "-rev", rhs, lhs, reverse_cond), tags=tags, example=example)
            )
    return defs


def single_pattern_rules() -> List[RuleDef]:
    """The full single-pattern rule library."""
    rules: List[RuleDef] = []

    # ------------------------------------------------------------------ #
    # Element-wise algebra
    # ------------------------------------------------------------------ #
    ew_example = {"x": ("input", (4, 8)), "y": ("input", (4, 8)), "z": ("input", (4, 8))}
    rules += _rule(
        "ewadd-comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)", ew_example, tags=("ewise", "enabling"),
        bidirectional=False,
    )
    rules += _rule(
        "ewadd-assoc", "(ewadd (ewadd ?x ?y) ?z)", "(ewadd ?x (ewadd ?y ?z))",
        ew_example, tags=("ewise", "enabling"),
    )
    rules += _rule(
        "ewmul-comm", "(ewmul ?x ?y)", "(ewmul ?y ?x)", ew_example, tags=("ewise", "enabling"),
        bidirectional=False,
    )
    rules += _rule(
        "ewmul-assoc", "(ewmul (ewmul ?x ?y) ?z)", "(ewmul ?x (ewmul ?y ?z))",
        ew_example, tags=("ewise", "enabling"),
    )
    rules += _rule(
        "ewmul-distribute",
        "(ewmul (ewadd ?x ?y) ?z)",
        "(ewadd (ewmul ?x ?z) (ewmul ?y ?z))",
        ew_example,
        tags=("ewise",),
    )

    # ------------------------------------------------------------------ #
    # Matrix multiplication algebra
    # ------------------------------------------------------------------ #
    mm_example = {
        "a": ("input", (6, 8)),
        "b": ("weight", (8, 10)),
        "c": ("weight", (10, 12)),
    }
    rules += _rule(
        "matmul-assoc",
        "(matmul ?act (matmul 0 ?a ?b) ?c)",
        "(matmul ?act ?a (matmul 0 ?b ?c))",
        {**mm_example, "act": ("int", 0)},
        tags=("matmul",),
    )
    linear_example = {
        "a": ("input", (6, 8)),
        "b": ("weight", (8, 10)),
        "c": ("weight", (8, 10)),
    }
    rules += _rule(
        "matmul-linear-rhs",
        "(ewadd (matmul 0 ?a ?b) (matmul 0 ?a ?c))",
        "(matmul 0 ?a (ewadd ?b ?c))",
        linear_example,
        tags=("matmul",),
    )
    linear_lhs_example = {
        "a": ("input", (6, 8)),
        "b": ("input", (6, 8)),
        "c": ("weight", (8, 10)),
    }
    rules += _rule(
        "matmul-linear-lhs",
        "(ewadd (matmul 0 ?a ?c) (matmul 0 ?b ?c))",
        "(matmul 0 (ewadd ?a ?b) ?c)",
        linear_lhs_example,
        tags=("matmul",),
    )
    # Figure 11 (NasRNN): two matmuls of different inputs feeding an add merge
    # into one matmul over concatenated operands.
    fig11_example = {
        "x": ("input", (6, 8)),
        "y": ("input", (6, 12)),
        "w1": ("weight", (8, 10)),
        "w2": ("weight", (12, 10)),
    }
    rules += _rule(
        "matmul-concat-merge-add",
        "(ewadd (matmul 0 ?x ?w1) (matmul 0 ?y ?w2))",
        "(matmul 0 (concat2 1 ?x ?y) (concat2 0 ?w1 ?w2))",
        fig11_example,
        tags=("matmul", "merge", "fig11"),
        extra_condition=all_of(var_rank_is("x", 2), var_rank_is("y", 2)),
    )

    # ------------------------------------------------------------------ #
    # Activation fusion
    # ------------------------------------------------------------------ #
    fuse_mm_example = {"a": ("input", (6, 8)), "b": ("weight", (8, 10))}
    for act_name, act_code in (("relu", 1), ("sigmoid", 2), ("tanh", 3)):
        rules += _rule(
            f"fuse-matmul-{act_name}",
            f"({act_name} (matmul 0 ?a ?b))",
            f"(matmul {act_code} ?a ?b)",
            fuse_mm_example,
            tags=("fusion", "matmul"),
        )
    fuse_conv_example = {
        "x": ("input", (1, 8, 10, 10)),
        "w": ("weight", (12, 8, 3, 3)),
        "sh": ("int", 1),
        "sw": ("int", 1),
        "p": ("int", 0),
    }
    for act_name, act_code in (("relu", 1), ("sigmoid", 2), ("tanh", 3)):
        rules += _rule(
            f"fuse-conv-{act_name}",
            f"({act_name} (conv ?sh ?sw ?p 0 ?x ?w))",
            f"(conv ?sh ?sw ?p {act_code} ?x ?w)",
            fuse_conv_example,
            tags=("fusion", "conv"),
        )
    rules += _rule(
        "relu-idempotent", "(relu (relu ?x))", "(relu ?x)", {"x": ("input", (4, 8))},
        tags=("ewise",), bidirectional=False,
    )

    # ------------------------------------------------------------------ #
    # Concat / split inverses
    # ------------------------------------------------------------------ #
    cs_example = {
        "x": ("input", (4, 8)),
        "y": ("input", (4, 6)),
        "axis": ("int", 1),
    }
    rules += _rule(
        "split0-of-concat",
        "(split0 (split ?axis (concat2 ?axis ?x ?y)))",
        "?x",
        cs_example,
        tags=("concat",),
        bidirectional=False,
    )
    rules += _rule(
        "split1-of-concat",
        "(split1 (split ?axis (concat2 ?axis ?x ?y)))",
        "?y",
        cs_example,
        tags=("concat",),
        bidirectional=False,
    )
    rules += _rule(
        "concat-of-splits",
        "(concat2 ?axis (split0 (split ?axis ?x)) (split1 (split ?axis ?x)))",
        "?x",
        {"x": ("input", (4, 8)), "axis": ("int", 1)},
        tags=("concat",),
        bidirectional=False,
    )

    # ------------------------------------------------------------------ #
    # Convolution linearity and the Figure-10 two-level merge
    # ------------------------------------------------------------------ #
    conv_lin_example = {
        "x": ("input", (1, 8, 10, 10)),
        "y": ("input", (1, 8, 10, 10)),
        "w": ("weight", (12, 8, 3, 3)),
        "sh": ("int", 1),
        "sw": ("int", 1),
        "p": ("int", 0),
    }
    rules += _rule(
        "conv-linear-input",
        "(conv ?sh ?sw ?p 0 (ewadd ?x ?y) ?w)",
        "(ewadd (conv ?sh ?sw ?p 0 ?x ?w) (conv ?sh ?sw ?p 0 ?y ?w))",
        conv_lin_example,
        tags=("conv",),
    )
    conv_wlin_example = {
        "x": ("input", (1, 8, 10, 10)),
        "w1": ("weight", (12, 8, 3, 3)),
        "w2": ("weight", (12, 8, 3, 3)),
        "sh": ("int", 1),
        "sw": ("int", 1),
        "p": ("int", 0),
    }
    rules += _rule(
        "conv-linear-weight",
        "(conv ?sh ?sw ?p 0 ?x (ewadd ?w1 ?w2))",
        "(ewadd (conv ?sh ?sw ?p 0 ?x ?w1) (conv ?sh ?sw ?p 0 ?x ?w2))",
        conv_wlin_example,
        tags=("conv",),
    )
    # Figure 10 (NasNet-A): two conv->conv chains from the same input feeding an
    # add collapse into one chain over concatenated weights.
    fig10_example = {
        "x": ("input", (1, 8, 10, 10)),
        "w1": ("weight", (6, 8, 3, 3)),
        "w3": ("weight", (10, 8, 3, 3)),
        "w2": ("weight", (12, 6, 3, 3)),
        "w4": ("weight", (12, 10, 3, 3)),
        "sh": ("int", 1),
        "sw": ("int", 1),
        "p": ("int", 0),
        "act2": ("int", 0),
    }
    rules += _rule(
        "conv-conv-add-merge",
        "(ewadd (conv 1 1 ?p 0 (conv ?sh ?sw ?p ?act2 ?x ?w1) ?w2) "
        "(conv 1 1 ?p 0 (conv ?sh ?sw ?p ?act2 ?x ?w3) ?w4))",
        "(conv 1 1 ?p 0 (conv ?sh ?sw ?p ?act2 ?x (concat2 0 ?w1 ?w3)) (concat2 1 ?w2 ?w4))",
        fig10_example,
        tags=("conv", "merge", "fig10"),
        extra_condition=all_of(conv_not_grouped_fig10()),
        bidirectional=False,
    )

    # ------------------------------------------------------------------ #
    # Geometric identities
    # ------------------------------------------------------------------ #
    rules += _rule(
        "transpose-involution",
        '(transpose (transpose ?x "1 0") "1 0")',
        "?x",
        {"x": ("input", (4, 8))},
        tags=("geometry",),
        bidirectional=False,
    )
    rules += _rule(
        "matmul-transpose",
        '(transpose (matmul 0 ?a ?b) "1 0")',
        '(matmul 0 (transpose ?b "1 0") (transpose ?a "1 0"))',
        {"a": ("input", (6, 8)), "b": ("weight", (8, 10))},
        tags=("geometry", "matmul"),
    )

    return rules


def conv_not_grouped_fig10():
    """Condition specialised for the Figure-10 rule: every conv involved is ungrouped.

    The inner convs consume ?x with ?w1 / ?w3; the outer convs consume the
    inner outputs, whose channel counts equal the weights' output channels,
    with ?w2 / ?w4.  Checking the inner pair is enough to exclude grouped
    convolutions because the outer weights' input-channel counts must then
    line up exactly (enforced by the shape check).
    """
    from repro.rules.conditions import all_of, conv_not_grouped

    return all_of(conv_not_grouped("x", "w1"), conv_not_grouped("x", "w3"))
