"""Multi-pattern rewrite rules (paper Figure 2 and appendix Figures 8-9).

These rules have several matched outputs: two operators that *share an input*
are replaced by one wider operator over concatenated weights whose output is
split back into the two original results.  They are the rules that grow the
e-graph double-exponentially (paper Section 4) and the reason greedy
extraction fails (Section 6.5) -- the merged operator only pays off when both
outputs pick their ``split`` projection.

How these rules are *executed* -- source-pattern canonicalization, admission
into the shared-prefix rule trie, and the indexed hash join that replaces the
Cartesian-product combination -- is described in ``docs/multipattern.md``;
the engine lives in :mod:`repro.egraph.multipattern`.  Note that both
sources of each rule here are alpha-equivalent, so the whole five-rule
library e-matches just three canonical patterns per iteration (one
matmul-shaped, two conv-shaped -- the ``enlarge`` variant pins stride and
padding to literals, which makes it a distinct canonical pattern).
"""

from __future__ import annotations

from typing import List

from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.pattern import Pattern
from repro.rules.conditions import (
    all_of,
    conv_not_grouped,
    enlarge_compatible,
    targets_shape_valid,
    var_is_int,
    var_rank_is,
)
from repro.rules.defs import RuleDef

__all__ = ["multi_pattern_rules"]


def _multi(
    name: str,
    sources: List[str],
    targets: List[str],
    example,
    tags: tuple = (),
    extra_condition=None,
) -> RuleDef:
    target_patterns = [Pattern.parse(t) for t in targets]
    condition = targets_shape_valid(target_patterns)
    if extra_condition is not None:
        condition = all_of(condition, extra_condition)
    rule = MultiPatternRewrite.parse(name, sources, targets, condition=condition)
    return RuleDef(rule, tags=tags, example=example)


def multi_pattern_rules() -> List[RuleDef]:
    """The multi-pattern rule library."""
    rules: List[RuleDef] = []

    # ------------------------------------------------------------------ #
    # Figure 2 / Figure 8: two matmuls sharing their left operand.
    # ------------------------------------------------------------------ #
    rules.append(
        _multi(
            "matmul-merge-shared-lhs",
            sources=["(matmul ?act ?x ?w1)", "(matmul ?act ?x ?w2)"],
            targets=[
                "(split0 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
            ],
            example={
                "x": ("input", (6, 8)),
                "w1": ("weight", (8, 10)),
                "w2": ("weight", (8, 14)),
                "act": ("int", 0),
            },
            tags=("matmul", "merge", "fig8"),
            extra_condition=all_of(var_rank_is("x", 2), var_rank_is("w1", 2), var_rank_is("w2", 2)),
        )
    )

    # Batched variant: a rank-3 activation multiplied by two rank-2 weights.
    rules.append(
        _multi(
            "matmul-merge-shared-lhs-batched",
            sources=["(matmul ?act ?x ?w1)", "(matmul ?act ?x ?w2)"],
            targets=[
                "(split0 (split 2 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 2 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
            ],
            example={
                "x": ("input", (2, 6, 8)),
                "w1": ("weight", (8, 10)),
                "w2": ("weight", (8, 14)),
                "act": ("int", 0),
            },
            tags=("matmul", "merge", "fig8", "batched"),
            extra_condition=all_of(var_rank_is("x", 3), var_rank_is("w1", 2), var_rank_is("w2", 2)),
        )
    )

    # Two matmuls sharing their right operand: concatenate the left operands
    # along the row axis and split the rows of the result.
    rules.append(
        _multi(
            "matmul-merge-shared-rhs",
            sources=["(matmul ?act ?x1 ?w)", "(matmul ?act ?x2 ?w)"],
            targets=[
                "(split0 (split 0 (matmul ?act (concat2 0 ?x1 ?x2) ?w)))",
                "(split1 (split 0 (matmul ?act (concat2 0 ?x1 ?x2) ?w)))",
            ],
            example={
                "x1": ("input", (6, 8)),
                "x2": ("input", (4, 8)),
                "w": ("weight", (8, 10)),
                "act": ("int", 0),
            },
            tags=("matmul", "merge"),
            extra_condition=all_of(var_rank_is("x1", 2), var_rank_is("x2", 2), var_rank_is("w", 2)),
        )
    )

    # ------------------------------------------------------------------ #
    # Figure 9: two convolutions sharing their input (same stride, padding and
    # activation) merge by concatenating kernels along the output-channel axis
    # and splitting the output channels.
    # ------------------------------------------------------------------ #
    rules.append(
        _multi(
            "conv-merge-shared-input",
            sources=[
                "(conv ?sh ?sw ?p ?act ?x ?w1)",
                "(conv ?sh ?sw ?p ?act ?x ?w2)",
            ],
            targets=[
                "(split0 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))))",
                "(split1 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))))",
            ],
            example={
                "x": ("input", (1, 8, 10, 10)),
                "w1": ("weight", (6, 8, 3, 3)),
                "w2": ("weight", (10, 8, 3, 3)),
                "sh": ("int", 1),
                "sw": ("int", 1),
                "p": ("int", 0),
                "act": ("int", 1),
            },
            tags=("conv", "merge", "fig9"),
            extra_condition=all_of(conv_not_grouped("x", "w1"), conv_not_grouped("x", "w2")),
        )
    )

    # Two convolutions with *different* kernel sizes sharing their input: the
    # smaller kernel is zero-padded (``enlarge``) to the larger one's size, then
    # the kernels are concatenated as above.  Only valid with SAME padding and
    # stride 1 (this is the rewrite SqueezeNet's fire modules benefit from,
    # where 1x1 and 3x3 expand convolutions share the squeeze output).
    rules.append(
        _multi(
            "conv-merge-enlarge",
            sources=[
                "(conv 1 1 0 ?act ?x ?w1)",
                "(conv 1 1 0 ?act ?x ?w2)",
            ],
            targets=[
                "(split0 (split 1 (conv 1 1 0 ?act ?x (concat2 0 (enlarge ?w1 ?w2) ?w2))))",
                "(split1 (split 1 (conv 1 1 0 ?act ?x (concat2 0 (enlarge ?w1 ?w2) ?w2))))",
            ],
            example={
                "x": ("input", (1, 8, 10, 10)),
                "w1": ("weight", (6, 8, 1, 1)),
                "w2": ("weight", (10, 8, 3, 3)),
                "act": ("int", 1),
            },
            tags=("conv", "merge", "enlarge"),
            extra_condition=all_of(
                conv_not_grouped("x", "w1"),
                conv_not_grouped("x", "w2"),
                enlarge_compatible("w1", "w2"),
            ),
        )
    )

    return rules
