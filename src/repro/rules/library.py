"""The rule registry and :class:`RuleSet` used by the optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.rewrite import Rewrite
from repro.rules.defs import RuleDef
from repro.rules.multi import multi_pattern_rules
from repro.rules.single import single_pattern_rules

__all__ = ["RuleSet", "rule_registry", "default_ruleset"]


@dataclass
class RuleSet:
    """A selection of rules ready to hand to the exploration phase."""

    defs: List[RuleDef] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.defs)

    def __iter__(self):
        return iter(self.defs)

    @property
    def rewrites(self) -> List[Rewrite]:
        """The single-pattern rewrites."""
        return [d.rule for d in self.defs if not d.is_multi]

    @property
    def multi_rewrites(self) -> List[MultiPatternRewrite]:
        """The multi-pattern rewrites."""
        return [d.rule for d in self.defs if d.is_multi]

    def names(self) -> List[str]:
        return [d.name for d in self.defs]

    def get(self, name: str) -> RuleDef:
        for d in self.defs:
            if d.name == name:
                return d
        raise KeyError(f"no rule named {name!r}")

    def filter(
        self,
        include_tags: Optional[Sequence[str]] = None,
        exclude_tags: Sequence[str] = (),
        include_multi: bool = True,
        include_single: bool = True,
        names: Optional[Sequence[str]] = None,
    ) -> "RuleSet":
        """Select a subset of rules by tag, kind, or explicit name."""
        selected: List[RuleDef] = []
        for d in self.defs:
            if names is not None and d.name not in names:
                continue
            if d.is_multi and not include_multi:
                continue
            if not d.is_multi and not include_single:
                continue
            if include_tags is not None and not any(t in d.tags for t in include_tags):
                continue
            if any(t in d.tags for t in exclude_tags):
                continue
            selected.append(d)
        return RuleSet(selected)

    def summary(self) -> Dict[str, int]:
        return {
            "total": len(self.defs),
            "single": len(self.rewrites),
            "multi": len(self.multi_rewrites),
        }


def rule_registry() -> RuleSet:
    """Every rule in the library (single- and multi-pattern)."""
    return RuleSet(list(single_pattern_rules()) + list(multi_pattern_rules()))


def default_ruleset(include_multi: bool = True) -> RuleSet:
    """The rule set used by the benchmarks (the full library, like the paper
    uses all of TASO's rules).

    ``include_multi=False`` drops the multi-pattern rules, which is useful for
    ablations and for the ``k_multi = 0`` points of Figure 7.
    """
    rules = rule_registry()
    if not include_multi:
        return rules.filter(include_multi=False)
    return rules
