"""Rule definition record shared by the single- and multi-pattern rule modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.rewrite import Rewrite

__all__ = ["RuleDef", "ExampleBinding"]

#: How to materialise a pattern variable when verifying a rule numerically:
#: ``("input" | "weight", shape)`` for tensors or ``("int", value)`` /
#: ``("str", value)`` for parameters.
ExampleBinding = Tuple[str, object]


@dataclass(frozen=True)
class RuleDef:
    """A rewrite rule plus the metadata needed to test and select it."""

    rule: Union[Rewrite, MultiPatternRewrite]
    tags: Tuple[str, ...] = ()
    #: Example variable bindings under which both sides of the rule are
    #: well-typed; used by :mod:`repro.rules.verify` to check soundness
    #: numerically.
    example: Dict[str, ExampleBinding] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.rule.name

    @property
    def is_multi(self) -> bool:
        return isinstance(self.rule, MultiPatternRewrite)
