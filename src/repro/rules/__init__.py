"""TASO-style rewrite rules for tensor graphs.

The rule library mirrors the structure of the rule set TENSAT inherits from
TASO (Jia et al., 2019): algebraic identities over element-wise operators and
matrix multiplication, activation fusion, concat/split inverses, convolution
linearity, and the *multi-pattern* merge rules of the paper's Figure 2 and
appendix (merging operators that share an input via concat + split).

Every rule is registered with example operand shapes so the whole library can
be verified numerically against the numpy backend
(:mod:`repro.rules.verify`).
"""

from repro.rules.library import RuleDef, RuleSet, default_ruleset, rule_registry

__all__ = ["RuleDef", "RuleSet", "default_ruleset", "rule_registry"]
