"""Shape inference / shape checking for every operator of Table 2.

The per-operator semantics live in :mod:`repro.ir.opspec` -- one
:class:`~repro.ir.opspec.OpSpec` per operator, registered in the
:data:`~repro.ir.opspec.OPS` table, which is the single source of truth
consulted by:

* :class:`repro.ir.graph.GraphBuilder` when constructing model graphs,
* the tensor e-class analysis (:mod:`repro.ir.convert`) during exploration --
  the paper performs shape checking before applying a rewrite at a match
  (Section 4), and
* rewrite-rule preconditions (:mod:`repro.rules.conditions`).

This module remains the historical import path: :func:`infer_symbol` and the
geometry helpers are re-exported from the registry module, and the original
per-symbol if/elif dispatch chain survives below as
:func:`infer_symbol_spec` -- an *executable specification* pinned
verdict-by-verdict against the registry dispatch by ``tests/test_opspec.py``
(the same compiled-vs-spec discipline the e-matcher and multi-pattern join
follow).  It shares the per-operator inference functions with the registry,
so the parity test checks exactly the part that changed: the dispatch.

All functions operate on e-graph operator *symbols* (see
:func:`repro.ir.ops.op_symbol`) and :class:`~repro.ir.tensor.TensorData`
children, so that the same code path serves both the concrete IR and the
e-graph.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.ops import OpKind, symbol_to_op
from repro.ir.opspec import (  # noqa: F401  (re-exported front door)
    _infer_concat,
    _infer_conv,
    _infer_enlarge,
    _infer_ewise,
    _infer_identifier,
    _infer_matmul,
    _infer_merge,
    _infer_noop,
    _infer_pool,
    _infer_reshape,
    _infer_split,
    _infer_split_index,
    _infer_transpose,
    _infer_activation,
    conv_output_hw,
    infer_symbol,
    matmul_output_shape,
    pool_output_hw,
    same_padding_amount,
)
from repro.ir.tensor import DataKind, ShapeError, TensorData

__all__ = [
    "infer_symbol",
    "infer_symbol_spec",
    "conv_output_hw",
    "pool_output_hw",
    "matmul_output_shape",
    "same_padding_amount",
]


def infer_symbol_spec(symbol: str, children: Sequence[TensorData]) -> TensorData:
    """Executable spec: the original if/elif dispatch for :func:`infer_symbol`.

    Kept verbatim (sharing the per-operator bodies with the registry) and
    pinned against :func:`repro.ir.opspec.infer_symbol` verdict-by-verdict in
    ``tests/test_opspec.py``.  Not a hot path -- the production dispatch is
    the registry's symbol-indexed lookup.
    """
    result = _infer_symbol_inner(symbol, children)
    op, _ = symbol_to_op(symbol)
    if result.kind == DataKind.TENSOR and not op.is_literal and not op.is_identifier:
        tensor_children = [c for c in children if c.kind in (DataKind.TENSOR, DataKind.TUPLE)]
        if tensor_children and all(c.from_weights for c in tensor_children):
            result = result.with_from_weights(True)
    if result.kind == DataKind.TUPLE:
        tensor_children = [c for c in children if c.kind in (DataKind.TENSOR, DataKind.TUPLE)]
        if tensor_children and all(c.from_weights for c in tensor_children):
            result = TensorData.tuple_of(tuple(p.with_from_weights(True) for p in result.parts))
    return result


def _infer_symbol_inner(symbol: str, children: Sequence[TensorData]) -> TensorData:
    op, literal = symbol_to_op(symbol)

    if op == OpKind.NUM:
        return TensorData.integer(literal)
    if op == OpKind.STR:
        return TensorData.string(literal)

    for child in children:
        if not child.is_valid:
            raise ShapeError(f"{symbol}: invalid operand")

    if op in (OpKind.INPUT, OpKind.WEIGHT):
        if len(children) != 1:
            raise ShapeError(f"{symbol} expects a single identifier child")
        result = _infer_identifier(children)
        if op == OpKind.WEIGHT:
            result = result.with_from_weights(True)
        return result
    if op in (OpKind.EWADD, OpKind.EWMUL):
        if len(children) != 2:
            raise ShapeError(f"{symbol} expects two operands")
        return _infer_ewise(children)
    if op == OpKind.MATMUL:
        return _infer_matmul(children)
    if op == OpKind.CONV:
        return _infer_conv(children)
    if op in (OpKind.RELU, OpKind.TANH, OpKind.SIGMOID):
        if len(children) != 1:
            raise ShapeError(f"{symbol} expects one operand")
        return _infer_activation(children)
    if op in (OpKind.POOLMAX, OpKind.POOLAVG):
        return _infer_pool(children)
    if op == OpKind.TRANSPOSE:
        if len(children) != 2:
            raise ShapeError("transpose expects (input, permutation)")
        return _infer_transpose(children)
    if op == OpKind.ENLARGE:
        if len(children) != 2:
            raise ShapeError("enlarge expects (input, ref_input)")
        return _infer_enlarge(children)
    if op == OpKind.CONCAT:
        return _infer_concat(children)
    if op == OpKind.SPLIT:
        if len(children) != 2:
            raise ShapeError("split expects (axis, input)")
        return _infer_split(children)
    if op == OpKind.SPLIT0:
        return _infer_split_index(children, 0)
    if op == OpKind.SPLIT1:
        return _infer_split_index(children, 1)
    if op == OpKind.MERGE:
        if len(children) != 2:
            raise ShapeError("merge expects (weight, count)")
        return _infer_merge(children)
    if op == OpKind.RESHAPE:
        if len(children) != 2:
            raise ShapeError("reshape expects (input, shape)")
        return _infer_reshape(children)
    if op == OpKind.NOOP:
        return _infer_noop(children)
    raise ShapeError(f"unknown operator symbol {symbol!r}")
