"""Shape inference / shape checking for every operator of Table 2.

This is the single source of truth for operator semantics at the metadata
level.  It is used by:

* :class:`repro.ir.graph.GraphBuilder` when constructing model graphs,
* the tensor e-class analysis (:mod:`repro.ir.convert`) during exploration --
  the paper performs shape checking before applying a rewrite at a match
  (Section 4), and
* rewrite-rule preconditions (:mod:`repro.rules.conditions`).

All functions operate on e-graph operator *symbols* (see
:func:`repro.ir.ops.op_symbol`) and :class:`~repro.ir.tensor.TensorData`
children, so that the same code path serves both the concrete IR and the
e-graph.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.ir.ops import Activation, OpKind, Padding, symbol_to_op
from repro.ir.tensor import DataKind, ShapeError, TensorData, parse_identifier

__all__ = [
    "infer_symbol",
    "conv_output_hw",
    "pool_output_hw",
    "matmul_output_shape",
    "same_padding_amount",
]


# ---------------------------------------------------------------------- #
# Geometry helpers
# ---------------------------------------------------------------------- #


def conv_output_hw(
    h: int, w: int, kh: int, kw: int, stride_h: int, stride_w: int, padding: int
) -> Tuple[int, int]:
    """Output spatial dims of a convolution under TASO's SAME/VALID semantics."""
    if stride_h <= 0 or stride_w <= 0:
        raise ShapeError(f"convolution stride must be positive, got ({stride_h}, {stride_w})")
    if padding == Padding.SAME:
        out_h = math.ceil(h / stride_h)
        out_w = math.ceil(w / stride_w)
    elif padding == Padding.VALID:
        out_h = math.ceil((h - kh + 1) / stride_h)
        out_w = math.ceil((w - kw + 1) / stride_w)
    else:
        raise ShapeError(f"unknown padding mode {padding}")
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution output is empty: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride ({stride_h},{stride_w}), padding {Padding(padding).name}"
        )
    return out_h, out_w


def same_padding_amount(size: int, kernel: int, stride: int) -> Tuple[int, int]:
    """Total (before, after) zero padding applied by SAME padding along one axis."""
    out = math.ceil(size / stride)
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    after = total - before
    return before, after


def pool_output_hw(
    h: int, w: int, kh: int, kw: int, stride_h: int, stride_w: int, padding: int
) -> Tuple[int, int]:
    """Pooling uses the same SAME/VALID geometry as convolution."""
    return conv_output_hw(h, w, kh, kw, stride_h, stride_w, padding)


def matmul_output_shape(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Shape of ``a @ b`` supporting 2-D and batched 3-D operands."""
    if len(a) < 2 or len(b) < 2:
        raise ShapeError(f"matmul operands must have rank >= 2, got {a} and {b}")
    if a[-1] != b[-2]:
        raise ShapeError(f"matmul inner dimensions disagree: {a} @ {b}")
    if len(a) == 2 and len(b) == 2:
        return (a[0], b[1])
    if len(a) == 3 and len(b) == 2:
        return (a[0], a[1], b[1])
    if len(a) == 2 and len(b) == 3:
        return (b[0], a[0], b[2])
    if len(a) == 3 and len(b) == 3:
        if a[0] != b[0]:
            raise ShapeError(f"matmul batch dimensions disagree: {a} @ {b}")
        return (a[0], a[1], b[2])
    raise ShapeError(f"matmul operands of rank {len(a)} and {len(b)} unsupported")


def _check_activation(code: int) -> int:
    if code not in (Activation.NONE, Activation.RELU, Activation.SIGMOID, Activation.TANH):
        raise ShapeError(f"unknown activation mode {code}")
    return code


# ---------------------------------------------------------------------- #
# Per-operator inference
# ---------------------------------------------------------------------- #


def _infer_ewise(children: Sequence[TensorData]) -> TensorData:
    a = children[0].expect_tensor("element-wise lhs")
    b = children[1].expect_tensor("element-wise rhs")
    if a.shape != b.shape:
        raise ShapeError(f"element-wise operands must have identical shapes, got {a.shape} and {b.shape}")
    # Split locations survive element-wise ops (both operands share them or they
    # are dropped -- keep the lhs's, matching TASO's propagation).
    return TensorData.tensor(a.shape, a.split_sizes)


def _infer_matmul(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 3:
        raise ShapeError("matmul expects (activation, input1, input2)")
    _check_activation(children[0].expect_int("matmul activation"))
    a = children[1].expect_tensor("matmul lhs")
    b = children[2].expect_tensor("matmul rhs")
    out_shape = matmul_output_shape(a.shape, b.shape)
    out = TensorData.tensor(out_shape)
    # Propagate concat provenance: columns of the output mirror columns of b,
    # rows mirror rows of a (needed so a following ``split`` knows where to cut).
    col_axis_out = len(out_shape) - 1
    row_axis_out = len(out_shape) - 2
    b_cols = b.split_sizes_for_axis(len(b.shape) - 1)
    if b_cols is not None:
        out = out.with_split(col_axis_out, b_cols)
    a_rows = a.split_sizes_for_axis(len(a.shape) - 2)
    if a_rows is not None:
        out = out.with_split(row_axis_out, a_rows)
    return out


def _infer_conv(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 6:
        raise ShapeError("conv expects (stride_h, stride_w, padding, activation, input, weight)")
    stride_h = children[0].expect_int("conv stride_h")
    stride_w = children[1].expect_int("conv stride_w")
    padding = children[2].expect_int("conv padding")
    _check_activation(children[3].expect_int("conv activation"))
    x = children[4].expect_tensor("conv input")
    w = children[5].expect_tensor("conv weight")
    if x.rank != 4 or w.rank != 4:
        raise ShapeError(f"conv expects NCHW input and OIHW weight, got {x.shape} and {w.shape}")
    n, c_in, h, win = x.shape
    c_out, c_in_per_group, kh, kw = w.shape
    if c_in_per_group <= 0 or c_in % c_in_per_group != 0:
        raise ShapeError(
            f"conv input channels {c_in} not divisible by weight input channels {c_in_per_group}"
        )
    groups = c_in // c_in_per_group
    if c_out % groups != 0:
        raise ShapeError(f"conv output channels {c_out} not divisible by groups {groups}")
    if kh > h or kw > win:
        if padding == Padding.VALID:
            raise ShapeError(f"conv kernel {kh}x{kw} larger than input {h}x{win} with VALID padding")
    out_h, out_w = conv_output_hw(h, win, kh, kw, stride_h, stride_w, padding)
    out = TensorData.tensor((n, c_out, out_h, out_w))
    # The output-channel axis mirrors the weight's output-channel axis.
    w_out_split = w.split_sizes_for_axis(0)
    if w_out_split is not None:
        out = out.with_split(1, w_out_split)
    return out


def _infer_activation(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("activation input")
    return TensorData.tensor(x.shape, x.split_sizes)


def _infer_pool(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 7:
        raise ShapeError("pooling expects (input, kernel_h, kernel_w, stride_h, stride_w, padding, activation)")
    x = children[0].expect_tensor("pool input")
    kh = children[1].expect_int("pool kernel_h")
    kw = children[2].expect_int("pool kernel_w")
    sh = children[3].expect_int("pool stride_h")
    sw = children[4].expect_int("pool stride_w")
    padding = children[5].expect_int("pool padding")
    _check_activation(children[6].expect_int("pool activation"))
    if x.rank != 4:
        raise ShapeError(f"pooling expects an NCHW input, got {x.shape}")
    n, c, h, w = x.shape
    out_h, out_w = pool_output_hw(h, w, kh, kw, sh, sw, padding)
    out = TensorData.tensor((n, c, out_h, out_w))
    ch_split = x.split_sizes_for_axis(1)
    if ch_split is not None:
        out = out.with_split(1, ch_split)
    return out


def _infer_transpose(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("transpose input")
    perm_str = children[1].expect_string("transpose permutation")
    try:
        perm = tuple(int(tok) for tok in perm_str.split())
    except ValueError as exc:
        raise ShapeError(f"malformed permutation string {perm_str!r}") from exc
    if sorted(perm) != list(range(x.rank)):
        raise ShapeError(f"permutation {perm} is not a permutation of axes of rank-{x.rank} tensor")
    new_shape = tuple(x.shape[p] for p in perm)
    out = TensorData.tensor(new_shape)
    for axis, sizes in x.split_sizes:
        out = out.with_split(perm.index(axis), sizes)
    return out


def _infer_enlarge(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("enlarge kernel")
    ref = children[1].expect_tensor("enlarge reference kernel")
    if x.rank != 4 or ref.rank != 4:
        raise ShapeError("enlarge expects 4-D convolution kernels")
    if x.shape[2] > ref.shape[2] or x.shape[3] > ref.shape[3]:
        raise ShapeError(
            f"enlarge target spatial size {ref.shape[2:]} smaller than kernel {x.shape[2:]}"
        )
    return TensorData.tensor((x.shape[0], x.shape[1], ref.shape[2], ref.shape[3]))


def _infer_concat(children: Sequence[TensorData]) -> TensorData:
    axis = children[0].expect_int("concat axis")
    tensors = [c.expect_tensor("concat input") for c in children[1:]]
    if len(tensors) < 2:
        raise ShapeError("concat needs at least two tensors")
    rank = tensors[0].rank
    if not 0 <= axis < rank:
        raise ShapeError(f"concat axis {axis} out of range for rank-{rank} tensors")
    for t in tensors[1:]:
        if t.rank != rank:
            raise ShapeError("concat inputs must all have the same rank")
        for d in range(rank):
            if d != axis and t.shape[d] != tensors[0].shape[d]:
                raise ShapeError(
                    f"concat inputs disagree on non-concat axis {d}: {t.shape} vs {tensors[0].shape}"
                )
    sizes = tuple(t.shape[axis] for t in tensors)
    out_shape = list(tensors[0].shape)
    out_shape[axis] = sum(sizes)
    return TensorData.tensor(tuple(out_shape)).with_split(axis, sizes)


def _infer_split(children: Sequence[TensorData]) -> TensorData:
    axis = children[0].expect_int("split axis")
    x = children[1].expect_tensor("split input")
    if not 0 <= axis < x.rank:
        raise ShapeError(f"split axis {axis} out of range for shape {x.shape}")
    sizes = x.split_sizes_for_axis(axis)
    total = x.shape[axis]
    if sizes is None:
        # No recorded concat: split in half (requires an even dimension).
        if total % 2 != 0:
            raise ShapeError(
                f"split along axis {axis} of size {total} has no recorded concat position "
                f"and the dimension is odd"
            )
        first, second = total // 2, total // 2
    else:
        if sum(sizes) != total:
            raise ShapeError(f"recorded split sizes {sizes} do not sum to dimension {total}")
        # The split is binary (Table 2): first piece vs. the rest.
        first = sizes[0]
        second = total - first
    if first <= 0 or second <= 0:
        raise ShapeError(f"split along axis {axis} would produce an empty piece ({first}, {second})")

    def piece(size: int) -> TensorData:
        shape = list(x.shape)
        shape[axis] = size
        return TensorData.tensor(tuple(shape))

    first_part = piece(first)
    second_part = piece(second)
    if sizes is not None and len(sizes) > 2:
        # The remainder is still a concatenation of the remaining pieces.
        second_part = second_part.with_split(axis, tuple(sizes[1:]))
    return TensorData.tuple_of((first_part, second_part))


def _infer_split_index(children: Sequence[TensorData], index: int) -> TensorData:
    t = children[0]
    if t.kind != DataKind.TUPLE:
        raise ShapeError(f"split{index} expects the output of split, got {t.kind.value}")
    if len(t.parts) <= index:
        raise ShapeError(f"split tuple has no element {index}")
    return t.parts[index]


def _infer_merge(children: Sequence[TensorData]) -> TensorData:
    w = children[0].expect_tensor("merge weight")
    count = children[1].expect_int("merge count")
    if w.rank != 4:
        raise ShapeError("merge expects a 4-D convolution weight")
    if count <= 0:
        raise ShapeError("merge count must be positive")
    c_out, c_in, kh, kw = w.shape
    return TensorData.tensor((c_out, c_in * count, kh, kw))


def _infer_reshape(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("reshape input")
    shape_str = children[1].expect_string("reshape target shape")
    try:
        new_shape = tuple(int(tok) for tok in shape_str.split())
    except ValueError as exc:
        raise ShapeError(f"malformed reshape target {shape_str!r}") from exc
    if any(d <= 0 for d in new_shape):
        raise ShapeError(f"reshape target {new_shape} has non-positive dimensions")
    n_in, n_out = x.num_elements, 1
    for d in new_shape:
        n_out *= d
    if n_in != n_out:
        raise ShapeError(f"reshape cannot change the number of elements: {x.shape} -> {new_shape}")
    return TensorData.tensor(new_shape)


def _infer_identifier(children: Sequence[TensorData]) -> TensorData:
    ident = children[0].expect_string("tensor identifier")
    _, shape = parse_identifier(ident)
    return TensorData.tensor(shape)


def _infer_noop(children: Sequence[TensorData]) -> TensorData:
    # noop only glues graph outputs together; it carries no tensor semantics.
    for child in children:
        if not child.is_valid:
            raise ShapeError("noop child is invalid")
    return TensorData.tensor(())


def infer_symbol(symbol: str, children: Sequence[TensorData]) -> TensorData:
    """Infer the :class:`TensorData` produced by e-graph operator ``symbol``.

    Raises :class:`~repro.ir.tensor.ShapeError` when the operands are
    incompatible -- this is exactly the "shape checking" the paper performs
    before applying a rewrite at a syntactic match.
    """
    result = _infer_symbol_inner(symbol, children)
    op, _ = symbol_to_op(symbol)
    if result.kind == DataKind.TENSOR and not op.is_literal and not op.is_identifier:
        tensor_children = [c for c in children if c.kind in (DataKind.TENSOR, DataKind.TUPLE)]
        if tensor_children and all(c.from_weights for c in tensor_children):
            result = result.with_from_weights(True)
    if result.kind == DataKind.TUPLE:
        tensor_children = [c for c in children if c.kind in (DataKind.TENSOR, DataKind.TUPLE)]
        if tensor_children and all(c.from_weights for c in tensor_children):
            result = TensorData.tuple_of(tuple(p.with_from_weights(True) for p in result.parts))
    return result


def _infer_symbol_inner(symbol: str, children: Sequence[TensorData]) -> TensorData:
    op, literal = symbol_to_op(symbol)

    if op == OpKind.NUM:
        return TensorData.integer(literal)
    if op == OpKind.STR:
        return TensorData.string(literal)

    for child in children:
        if not child.is_valid:
            raise ShapeError(f"{symbol}: invalid operand")

    if op in (OpKind.INPUT, OpKind.WEIGHT):
        if len(children) != 1:
            raise ShapeError(f"{symbol} expects a single identifier child")
        result = _infer_identifier(children)
        if op == OpKind.WEIGHT:
            result = result.with_from_weights(True)
        return result
    if op in (OpKind.EWADD, OpKind.EWMUL):
        if len(children) != 2:
            raise ShapeError(f"{symbol} expects two operands")
        return _infer_ewise(children)
    if op == OpKind.MATMUL:
        return _infer_matmul(children)
    if op == OpKind.CONV:
        return _infer_conv(children)
    if op in (OpKind.RELU, OpKind.TANH, OpKind.SIGMOID):
        if len(children) != 1:
            raise ShapeError(f"{symbol} expects one operand")
        return _infer_activation(children)
    if op in (OpKind.POOLMAX, OpKind.POOLAVG):
        return _infer_pool(children)
    if op == OpKind.TRANSPOSE:
        if len(children) != 2:
            raise ShapeError("transpose expects (input, permutation)")
        return _infer_transpose(children)
    if op == OpKind.ENLARGE:
        if len(children) != 2:
            raise ShapeError("enlarge expects (input, ref_input)")
        return _infer_enlarge(children)
    if op == OpKind.CONCAT:
        return _infer_concat(children)
    if op == OpKind.SPLIT:
        if len(children) != 2:
            raise ShapeError("split expects (axis, input)")
        return _infer_split(children)
    if op == OpKind.SPLIT0:
        return _infer_split_index(children, 0)
    if op == OpKind.SPLIT1:
        return _infer_split_index(children, 1)
    if op == OpKind.MERGE:
        if len(children) != 2:
            raise ShapeError("merge expects (weight, count)")
        return _infer_merge(children)
    if op == OpKind.RESHAPE:
        if len(children) != 2:
            raise ShapeError("reshape expects (input, shape)")
        return _infer_reshape(children)
    if op == OpKind.NOOP:
        return _infer_noop(children)
    raise ShapeError(f"unknown operator symbol {symbol!r}")
