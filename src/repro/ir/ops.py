"""Operator set (paper Table 2) and the parameter encodings shared with TASO.

Activation and padding modes are encoded as integers (Table 2: "padding and
activation modes (by representing different modes using different integers)").
Variable-length parameters -- axis permutations, target shapes, tensor
identifiers -- are strings.

This module owns only the *enumerations*; everything an operator *does* --
its e-graph symbol family, operand signature, shape inference, FLOP/byte
accounting, serialization name, ONNX mapping -- lives in one
:class:`~repro.ir.opspec.OpSpec` per operator inside the
:data:`repro.ir.opspec.OPS` registry.  :func:`op_symbol` and
:func:`symbol_to_op` remain the stable front door and delegate to the
registry (lazily imported: :mod:`repro.ir.opspec` imports the enums from
here, so the dependency must point one way only).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

__all__ = ["OpKind", "Activation", "Padding", "op_symbol", "symbol_to_op", "CONCAT_MAX_INPUTS"]


class Activation(enum.IntEnum):
    """Fused activation modes (TASO encoding)."""

    NONE = 0
    RELU = 1
    SIGMOID = 2
    TANH = 3


class Padding(enum.IntEnum):
    """Convolution / pooling padding modes (TASO encoding)."""

    SAME = 0
    VALID = 1


class OpKind(enum.Enum):
    """Every operator of the paper's Table 2, plus literal parameter nodes."""

    # Literal parameter nodes (integer type N and string type S in Table 2).
    NUM = "num"
    STR = "str"

    # Tensor identifiers.
    INPUT = "input"
    WEIGHT = "weight"

    # Tensor operators.
    EWADD = "ewadd"
    EWMUL = "ewmul"
    MATMUL = "matmul"
    CONV = "conv"
    RELU = "relu"
    TANH = "tanh"
    SIGMOID = "sigmoid"
    POOLMAX = "poolmax"
    POOLAVG = "poolavg"
    TRANSPOSE = "transpose"
    ENLARGE = "enlarge"
    CONCAT = "concat"
    SPLIT = "split"
    SPLIT0 = "split0"
    SPLIT1 = "split1"
    MERGE = "merge"
    RESHAPE = "reshape"
    NOOP = "noop"

    def __str__(self) -> str:
        return self.value

    @property
    def is_literal(self) -> bool:
        return self in (OpKind.NUM, OpKind.STR)

    @property
    def is_identifier(self) -> bool:
        return self in (OpKind.INPUT, OpKind.WEIGHT)

    @property
    def is_activation(self) -> bool:
        return self in (OpKind.RELU, OpKind.TANH, OpKind.SIGMOID)

    @property
    def is_compute(self) -> bool:
        """Operators that correspond to actual kernels (carry a runtime cost)."""
        return not (self.is_literal or self.is_identifier or self == OpKind.NOOP)


_OPSPEC = None


def _ops():
    """The OPS registry, imported lazily to keep ops -> opspec one-way."""
    global _OPSPEC
    if _OPSPEC is None:
        from repro.ir import opspec

        _OPSPEC = opspec
    return _OPSPEC.OPS


def op_symbol(op: "OpKind", num_inputs: Optional[int] = None, value: object = None) -> str:
    """E-graph operator symbol for an IR node.

    * literal nodes use their value as the symbol (``"1"``, ``"0 2 1 3"``),
    * ``concat`` is specialised by tensor arity (``concat2``, ``concat3``, ...),
    * every other operator uses its lowercase name.

    The mapping is owned by each operator's :class:`~repro.ir.opspec.OpSpec`
    (its ``symbol_of`` field); this function dispatches through the registry.
    """
    return _ops().op_symbol(op, num_inputs=num_inputs, value=value)


def symbol_to_op(symbol: str, strict: bool = False) -> Tuple[OpKind, object]:
    """Inverse of :func:`op_symbol`: map an e-graph symbol to ``(OpKind, literal value)``.

    Unknown symbols are classified as literals: integers become ``NUM`` nodes
    and -- in the default lenient mode -- everything else becomes a ``STR``
    node.  With ``strict=True`` only symbols that look like genuine string
    payloads (tensor identifiers, integer-list literals) are accepted; any
    other unknown symbol raises
    :class:`~repro.ir.opspec.UnknownOperatorError` instead of silently
    becoming a string node.  The strict path is used when materialising
    extracted terms and when parsing serialized documents, where an unknown
    symbol means a typo'd rule target or a corrupted file.
    """
    return _ops().resolve_symbol(symbol, strict=strict)


def __getattr__(name: str):
    # CONCAT_MAX_INPUTS used to be a module constant; the concat arity family
    # is now owned by the registry, so read through to it (PEP 562).
    if name == "CONCAT_MAX_INPUTS":
        return _ops().concat_max_inputs
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
