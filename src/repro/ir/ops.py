"""Operator set (paper Table 2) and the parameter encodings shared with TASO.

Activation and padding modes are encoded as integers (Table 2: "padding and
activation modes (by representing different modes using different integers)").
Variable-length parameters -- axis permutations, target shapes, tensor
identifiers -- are strings.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

__all__ = ["OpKind", "Activation", "Padding", "op_symbol", "symbol_to_op", "CONCAT_MAX_INPUTS"]

#: ``concat`` needs a fixed arity per e-graph symbol (Table 2 note d); we
#: generate ``concat2`` .. ``concat{CONCAT_MAX_INPUTS}``.
CONCAT_MAX_INPUTS = 8


class Activation(enum.IntEnum):
    """Fused activation modes (TASO encoding)."""

    NONE = 0
    RELU = 1
    SIGMOID = 2
    TANH = 3


class Padding(enum.IntEnum):
    """Convolution / pooling padding modes (TASO encoding)."""

    SAME = 0
    VALID = 1


class OpKind(enum.Enum):
    """Every operator of the paper's Table 2, plus literal parameter nodes."""

    # Literal parameter nodes (integer type N and string type S in Table 2).
    NUM = "num"
    STR = "str"

    # Tensor identifiers.
    INPUT = "input"
    WEIGHT = "weight"

    # Tensor operators.
    EWADD = "ewadd"
    EWMUL = "ewmul"
    MATMUL = "matmul"
    CONV = "conv"
    RELU = "relu"
    TANH = "tanh"
    SIGMOID = "sigmoid"
    POOLMAX = "poolmax"
    POOLAVG = "poolavg"
    TRANSPOSE = "transpose"
    ENLARGE = "enlarge"
    CONCAT = "concat"
    SPLIT = "split"
    SPLIT0 = "split0"
    SPLIT1 = "split1"
    MERGE = "merge"
    RESHAPE = "reshape"
    NOOP = "noop"

    def __str__(self) -> str:
        return self.value

    @property
    def is_literal(self) -> bool:
        return self in (OpKind.NUM, OpKind.STR)

    @property
    def is_identifier(self) -> bool:
        return self in (OpKind.INPUT, OpKind.WEIGHT)

    @property
    def is_activation(self) -> bool:
        return self in (OpKind.RELU, OpKind.TANH, OpKind.SIGMOID)

    @property
    def is_compute(self) -> bool:
        """Operators that correspond to actual kernels (carry a runtime cost)."""
        return not (self.is_literal or self.is_identifier or self == OpKind.NOOP)


def op_symbol(op: "OpKind", num_inputs: Optional[int] = None, value: object = None) -> str:
    """E-graph operator symbol for an IR node.

    * literal nodes use their value as the symbol (``"1"``, ``"0 2 1 3"``),
    * ``concat`` is specialised by tensor arity (``concat2``, ``concat3``, ...),
    * every other operator uses its lowercase name.
    """
    if op == OpKind.NUM:
        return str(int(value))
    if op == OpKind.STR:
        return str(value)
    if op == OpKind.CONCAT:
        if num_inputs is None:
            raise ValueError("concat needs num_inputs to determine its e-graph symbol")
        n_tensors = num_inputs - 1  # first input is the axis
        if not 2 <= n_tensors <= CONCAT_MAX_INPUTS:
            raise ValueError(f"concat of {n_tensors} tensors unsupported (max {CONCAT_MAX_INPUTS})")
        return f"concat{n_tensors}"
    return op.value


_SYMBOL_TABLE: Dict[str, OpKind] = {
    op.value: op
    for op in OpKind
    if op not in (OpKind.NUM, OpKind.STR, OpKind.CONCAT)
}
for _n in range(2, CONCAT_MAX_INPUTS + 1):
    _SYMBOL_TABLE[f"concat{_n}"] = OpKind.CONCAT


def symbol_to_op(symbol: str) -> Tuple[OpKind, object]:
    """Inverse of :func:`op_symbol`: map an e-graph symbol to ``(OpKind, literal value)``.

    Unknown symbols are classified as literals: integers become ``NUM`` nodes,
    everything else becomes a ``STR`` node.
    """
    op = _SYMBOL_TABLE.get(symbol)
    if op is not None:
        return op, None
    try:
        return OpKind.NUM, int(symbol)
    except ValueError:
        return OpKind.STR, symbol
