"""Serialization of tensor graphs.

Two formats:

* **S-expression text** -- the same single-rooted term representation the
  e-graph uses; compact and human-readable.
* **JSON** -- a node-list format that preserves node ids, outputs, and
  graph name; convenient for storing optimized graphs produced by the
  benchmark harness, for interchange with external tools, and as the wire
  format of the optimization service (:mod:`repro.service`).

Both round-trip through shape inference, so a deserialized graph is always
re-validated.  Malformed documents raise :class:`SerializeError` naming the
offending field -- the service's input boundary relies on this to turn bad
payloads into typed error responses instead of leaking ``KeyError`` /
``TypeError`` from deep inside the builder.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.egraph.language import RecExpr
from repro.ir.convert import graph_to_recexpr, recexpr_to_graph
from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import OpKind
from repro.ir.opspec import OPS, UnknownOperatorError
from repro.ir.tensor import ShapeError

__all__ = [
    "SerializeError",
    "valid_ops",
    "graph_to_sexpr_text",
    "graph_from_sexpr_text",
    "graph_to_doc",
    "graph_from_doc",
    "graph_to_json",
    "graph_from_json",
    "save_graph",
    "load_graph",
]


class SerializeError(ValueError):
    """A graph document is malformed; the message names the offending field."""


def valid_ops() -> tuple:
    """Operator names accepted in the ``op`` field of graph documents.

    Derived from the :data:`~repro.ir.opspec.OPS` registry (its serialization
    names), so registering a new operator makes it serializable with no
    change here -- ``tools/check_api.py`` pins this lockstep.
    """
    return OPS.names()


def graph_to_sexpr_text(graph: TensorGraph) -> str:
    """Serialise ``graph`` as a single-rooted S-expression string."""
    expr, _ = graph_to_recexpr(graph)
    return str(expr)


def graph_from_sexpr_text(text: str, name: str = "graph") -> TensorGraph:
    """Parse a graph back from its S-expression text.

    Symbols resolve strictly: an unknown operator symbol raises
    :class:`SerializeError` instead of silently becoming a string node.
    """
    try:
        return recexpr_to_graph(RecExpr.parse(text), name=name, strict=True)
    except UnknownOperatorError as exc:
        raise SerializeError(f"sexpr document: {exc}") from exc


def graph_to_doc(graph: TensorGraph) -> Dict[str, object]:
    """The JSON-compatible node-list document for ``graph``."""
    nodes: List[Dict[str, object]] = []
    for node in graph.nodes:
        entry: Dict[str, object] = {"op": node.op.value, "inputs": list(node.inputs)}
        if node.value is not None:
            entry["value"] = node.value
        nodes.append(entry)
    return {"name": graph.name, "nodes": nodes, "outputs": list(graph.outputs)}


def graph_to_json(graph: TensorGraph) -> str:
    """Serialise ``graph`` as a JSON document (node list + outputs + name)."""
    return json.dumps(graph_to_doc(graph), indent=2)


def _node_inputs(entry: Dict[str, object], index: int, id_map: Dict[int, int]) -> List[int]:
    inputs = entry.get("inputs", [])
    if not isinstance(inputs, list):
        raise SerializeError(f"nodes[{index}].inputs: expected a list, got {type(inputs).__name__}")
    resolved: List[int] = []
    for position, ref in enumerate(inputs):
        if isinstance(ref, bool) or not isinstance(ref, int):
            raise SerializeError(
                f"nodes[{index}].inputs[{position}]: expected a node index, got {ref!r}"
            )
        if ref not in id_map:
            raise SerializeError(
                f"nodes[{index}].inputs[{position}]: node {ref} does not precede node {index}"
            )
        resolved.append(id_map[ref])
    return resolved


def graph_from_doc(doc: object) -> TensorGraph:
    """Rebuild a graph from a :func:`graph_to_doc` document.

    Re-runs shape inference, so the result is always a valid graph; any
    malformed field raises :class:`SerializeError` naming the field.
    """
    if not isinstance(doc, dict):
        raise SerializeError(f"graph document: expected an object, got {type(doc).__name__}")
    name = doc.get("name", "graph")
    if not isinstance(name, str):
        raise SerializeError(f"name: expected a string, got {type(name).__name__}")
    raw_nodes = doc.get("nodes")
    if not isinstance(raw_nodes, list):
        raise SerializeError(
            "nodes: expected a list"
            + ("" if "nodes" in doc else " (field is missing)")
        )
    builder = GraphBuilder(name)
    id_map: Dict[int, int] = {}
    for index, entry in enumerate(raw_nodes):
        if not isinstance(entry, dict):
            raise SerializeError(f"nodes[{index}]: expected an object, got {type(entry).__name__}")
        raw_op = entry.get("op")
        if raw_op is None:
            raise SerializeError(f"nodes[{index}].op: field is missing")
        spec = OPS.from_name(raw_op) if isinstance(raw_op, str) else None
        if spec is None:
            raise SerializeError(f"nodes[{index}].op: unknown operator {raw_op!r}")
        op = spec.kind
        inputs = _node_inputs(entry, index, id_map)
        value = entry.get("value")
        try:
            if op == OpKind.NUM:
                new_id = builder.num(int(value))
            elif op == OpKind.STR:
                if not isinstance(value, str):
                    raise SerializeError(
                        f"nodes[{index}].value: str node needs a string value, got {value!r}"
                    )
                new_id = builder.string(value)
            else:
                from repro.ir.ops import op_symbol

                symbol = op_symbol(op, num_inputs=len(inputs), value=value)
                new_id = builder.add_symbol(symbol, inputs)
        except SerializeError:
            raise
        except (TypeError, ValueError) as exc:
            # ShapeError is a ValueError: inference rejected the node.  Bare
            # TypeError/ValueError: a literal payload of the wrong type.
            kind = "shape inference rejected the node" if isinstance(exc, ShapeError) else "invalid node"
            raise SerializeError(f"nodes[{index}] ({raw_op}): {kind}: {exc}") from exc
        id_map[index] = new_id
    raw_outputs = doc.get("outputs")
    if not isinstance(raw_outputs, list) or not raw_outputs:
        raise SerializeError(
            "outputs: expected a non-empty list"
            + ("" if "outputs" in doc else " (field is missing)")
        )
    outputs: List[int] = []
    for position, ref in enumerate(raw_outputs):
        if isinstance(ref, bool) or not isinstance(ref, int) or ref not in id_map:
            raise SerializeError(f"outputs[{position}]: {ref!r} is not a node of the graph")
        outputs.append(id_map[ref])
    return builder.finish(outputs=outputs)


def graph_from_json(text: str) -> TensorGraph:
    """Rebuild a graph from :func:`graph_to_json` output (re-running shape inference)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializeError(f"graph document: invalid JSON: {exc}") from exc
    return graph_from_doc(doc)


def save_graph(graph: TensorGraph, path: str, fmt: Optional[str] = None) -> None:
    """Write a graph to ``path``; format inferred from the extension (.json or .sexpr)."""
    fmt = fmt or ("json" if path.endswith(".json") else "sexpr")
    if fmt == "json":
        text = graph_to_json(graph)
    elif fmt == "sexpr":
        text = graph_to_sexpr_text(graph)
    else:
        raise ValueError(f"unknown graph format {fmt!r}")
    with open(path, "w") as handle:
        handle.write(text + "\n")


def load_graph(path: str, fmt: Optional[str] = None, name: Optional[str] = None) -> TensorGraph:
    """Read a graph previously written by :func:`save_graph`."""
    fmt = fmt or ("json" if path.endswith(".json") else "sexpr")
    with open(path) as handle:
        text = handle.read()
    if fmt == "json":
        return graph_from_json(text)
    if fmt == "sexpr":
        return graph_from_sexpr_text(text, name=name or "graph")
    raise ValueError(f"unknown graph format {fmt!r}")
