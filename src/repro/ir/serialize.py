"""Serialization of tensor graphs.

Two formats:

* **S-expression text** -- the same single-rooted term representation the
  e-graph uses; compact and human-readable.
* **JSON** -- a node-list format that preserves node ids, outputs, and
  graph name; convenient for storing optimized graphs produced by the
  benchmark harness or for interchange with external tools.

Both round-trip through shape inference, so a deserialized graph is always
re-validated.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.egraph.language import RecExpr
from repro.ir.convert import graph_to_recexpr, recexpr_to_graph
from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import OpKind

__all__ = [
    "graph_to_sexpr_text",
    "graph_from_sexpr_text",
    "graph_to_json",
    "graph_from_json",
    "save_graph",
    "load_graph",
]


def graph_to_sexpr_text(graph: TensorGraph) -> str:
    """Serialise ``graph`` as a single-rooted S-expression string."""
    expr, _ = graph_to_recexpr(graph)
    return str(expr)


def graph_from_sexpr_text(text: str, name: str = "graph") -> TensorGraph:
    """Parse a graph back from its S-expression text."""
    return recexpr_to_graph(RecExpr.parse(text), name=name)


def graph_to_json(graph: TensorGraph) -> str:
    """Serialise ``graph`` as a JSON document (node list + outputs + name)."""
    nodes = []
    for node in graph.nodes:
        entry: Dict[str, object] = {"op": node.op.value, "inputs": list(node.inputs)}
        if node.value is not None:
            entry["value"] = node.value
        nodes.append(entry)
    return json.dumps({"name": graph.name, "nodes": nodes, "outputs": list(graph.outputs)}, indent=2)


def graph_from_json(text: str) -> TensorGraph:
    """Rebuild a graph from :func:`graph_to_json` output (re-running shape inference)."""
    doc = json.loads(text)
    builder = GraphBuilder(doc.get("name", "graph"))
    id_map: Dict[int, int] = {}
    for index, entry in enumerate(doc["nodes"]):
        op = OpKind(entry["op"])
        inputs = [id_map[i] for i in entry["inputs"]]
        value = entry.get("value")
        if op == OpKind.NUM:
            new_id = builder.num(int(value))
        elif op == OpKind.STR:
            new_id = builder.string(str(value))
        else:
            from repro.ir.ops import op_symbol

            symbol = op_symbol(op, num_inputs=len(inputs), value=value)
            new_id = builder.add_symbol(symbol, inputs)
        id_map[index] = new_id
    outputs = [id_map[o] for o in doc["outputs"]]
    return builder.finish(outputs=outputs)


def save_graph(graph: TensorGraph, path: str, fmt: Optional[str] = None) -> None:
    """Write a graph to ``path``; format inferred from the extension (.json or .sexpr)."""
    fmt = fmt or ("json" if path.endswith(".json") else "sexpr")
    if fmt == "json":
        text = graph_to_json(graph)
    elif fmt == "sexpr":
        text = graph_to_sexpr_text(graph)
    else:
        raise ValueError(f"unknown graph format {fmt!r}")
    with open(path, "w") as handle:
        handle.write(text + "\n")


def load_graph(path: str, fmt: Optional[str] = None, name: Optional[str] = None) -> TensorGraph:
    """Read a graph previously written by :func:`save_graph`."""
    fmt = fmt or ("json" if path.endswith(".json") else "sexpr")
    with open(path) as handle:
        text = handle.read()
    if fmt == "json":
        return graph_from_json(text)
    if fmt == "sexpr":
        return graph_from_sexpr_text(text, name=name or "graph")
    raise ValueError(f"unknown graph format {fmt!r}")
