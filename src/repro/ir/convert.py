"""Conversion between the tensor IR and e-graph terms, plus the tensor analysis.

* :func:`graph_to_recexpr` serialises a :class:`~repro.ir.graph.TensorGraph`
  into a single-rooted :class:`~repro.egraph.language.RecExpr` (combining
  multiple outputs with ``noop`` nodes, paper Section 3.1).
* :func:`recexpr_to_graph` parses an extracted term back into a
  :class:`TensorGraph`, re-running shape inference.
* :class:`TensorAnalysis` is the e-class analysis that carries
  :class:`~repro.ir.tensor.TensorData` (shape, split locations) for every
  e-class, used for shape checking during exploration and for the cost model
  during extraction (paper Section 6).  The implementation lives in
  :mod:`repro.egraph.shapeanalysis` (interned per-e-class facts); the name
  here is the historical front door and stays importable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode, RecExpr
from repro.egraph.shapeanalysis import TensorShapeAnalysis
from repro.ir.graph import Node, TensorGraph
from repro.ir.ops import OpKind, symbol_to_op
from repro.ir.opspec import infer_symbol

__all__ = ["graph_to_recexpr", "recexpr_to_graph", "TensorAnalysis", "egraph_from_graph"]


# ---------------------------------------------------------------------- #
# Graph -> term
# ---------------------------------------------------------------------- #


def graph_to_recexpr(graph: TensorGraph) -> Tuple[RecExpr, Dict[int, int]]:
    """Serialise ``graph`` into a single-rooted term.

    Returns ``(expr, node_to_index)`` where ``node_to_index`` maps graph node
    ids to indices in the returned expression (the ``noop`` glue nodes that
    single-root a multi-output graph have no preimage).
    """
    expr = RecExpr()
    memo: Dict[ENode, int] = {}
    node_to_index: Dict[int, int] = {}

    for node in graph.nodes:
        children = tuple(node_to_index[c] for c in node.inputs)
        idx = expr.add_unique(ENode(node.symbol, children), memo)
        node_to_index[node.id] = idx

    # Make the expression single-rooted by folding outputs with noop nodes.
    output_indices = [node_to_index[o] for o in graph.outputs]
    root = output_indices[0]
    for other in output_indices[1:]:
        root = expr.add_unique(ENode("noop", (root, other)), memo)
    if len(output_indices) == 1 and root != expr.root:
        # Ensure the designated root is the last node (RecExpr convention).
        root = expr.add_unique(ENode("noop", (root, root)), memo)
    return expr, node_to_index


# ---------------------------------------------------------------------- #
# Term -> graph
# ---------------------------------------------------------------------- #


def recexpr_to_graph(expr: RecExpr, name: str = "extracted", strict: bool = True) -> TensorGraph:
    """Parse a term back into a :class:`TensorGraph`, re-running shape inference.

    ``noop`` nodes forming the single-rooting spine are stripped and their
    non-noop leaves become the graph outputs (in left-to-right order).

    By default symbols resolve *strictly*: a symbol that is neither a
    registered operator nor a recognisable literal (an integer, a
    ``name@dims`` identifier, or an integer-list string) raises
    :class:`~repro.ir.opspec.UnknownOperatorError` instead of silently
    becoming a string-literal node -- extracted terms and serialized files
    only ever contain known symbols, so an unknown one is a typo'd rule
    target or a corrupted document.  Pass ``strict=False`` for the
    historical lenient behaviour.
    """
    nodes: List[Node] = []
    index_to_id: Dict[int, int] = {}

    for i, enode in enumerate(expr.nodes):
        op, literal = symbol_to_op(enode.op, strict=strict)
        inputs = tuple(index_to_id[c] for c in enode.children)
        children_data = [nodes[c].data for c in inputs]
        data = infer_symbol(enode.op, children_data)
        node = Node(id=len(nodes), op=op, inputs=inputs, value=literal, data=data)
        nodes.append(node)
        index_to_id[i] = node.id

    root_id = index_to_id[expr.root]

    # Collect outputs: peel the noop spine.
    outputs: List[int] = []
    seen = set()

    def collect(node_id: int) -> None:
        node = nodes[node_id]
        if node.op == OpKind.NOOP:
            for child in node.inputs:
                collect(child)
        else:
            if node_id not in seen:
                seen.add(node_id)
                outputs.append(node_id)

    collect(root_id)
    if not outputs:
        outputs = [root_id]
    return TensorGraph(nodes, outputs, name=name)


# ---------------------------------------------------------------------- #
# Tensor e-class analysis
# ---------------------------------------------------------------------- #


class TensorAnalysis(TensorShapeAnalysis):
    """E-class analysis carrying tensor metadata (shape, split locations).

    The historical name for :class:`~repro.egraph.shapeanalysis.TensorShapeAnalysis`,
    kept as the IR-facing front door: ``make`` runs shape inference per new
    e-node, ``merge`` prefers valid data, unions split-location records, and
    detects shape conflicts (raising only in ``strict`` mode to keep
    exploration robust).  Facts are interned so condition checks can compare
    them by pointer; see the module docstring of
    :mod:`repro.egraph.shapeanalysis`.
    """


# ---------------------------------------------------------------------- #
# Convenience: seed an e-graph from a tensor graph
# ---------------------------------------------------------------------- #


def egraph_from_graph(
    graph: TensorGraph, strict: bool = False, shape_analysis: bool = True
) -> Tuple[EGraph, int]:
    """Create an e-graph with the :class:`TensorAnalysis` seeded with ``graph``.

    ``shape_analysis`` selects how rewrite conditions consume the analysis:
    ``True`` (the ``shape_analysis="on"`` config setting) advertises the
    interned per-class facts so ``targets_shape_valid`` runs its compiled
    programs; ``False`` keeps the on-demand inference path (the executable
    spec).  The analysis data itself is maintained identically either way.

    Returns ``(egraph, root_eclass)``.
    """
    egraph = EGraph(analysis=TensorAnalysis(strict=strict, compiled_conditions=shape_analysis))
    expr, _ = graph_to_recexpr(graph)
    root = egraph.add_expr(expr)
    return egraph, root
