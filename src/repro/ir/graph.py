"""The tensor computation graph and its builder API.

A :class:`TensorGraph` is a DAG of :class:`Node` objects.  Following the
paper's representation (Section 3.1):

* every node represents the output tensor of its operator,
* operator parameters (strides, axes, activation/padding modes) are integer
  or string literal nodes,
* ``input`` / ``weight`` leaves carry a ``name@shape`` identifier string,
* a graph with several outputs is made single-rooted by combining them with
  ``noop`` nodes (which carry no cost and are never rewritten).

:class:`GraphBuilder` is the public construction API used by the model zoo in
:mod:`repro.models` and by user code; it hash-conses nodes so identical
subgraphs are shared, and it runs shape inference eagerly so malformed graphs
fail at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.ir.ops import Activation, OpKind, Padding, op_symbol
from repro.ir.opspec import OPS, infer_symbol
from repro.ir.tensor import DataKind, ShapeError, TensorData, TensorShape, format_identifier

__all__ = ["Node", "TensorGraph", "GraphBuilder"]


@dataclass(frozen=True)
class Node:
    """A single node (operator output) in a tensor graph."""

    id: int
    op: OpKind
    inputs: Tuple[int, ...] = ()
    value: object = None  # literal payload for NUM / STR nodes
    data: TensorData = field(default_factory=lambda: TensorData.invalid("uninitialised"))

    @property
    def symbol(self) -> str:
        """The e-graph operator symbol of this node."""
        return op_symbol(self.op, num_inputs=len(self.inputs), value=self.value)

    @property
    def is_compute(self) -> bool:
        return self.op.is_compute

    @property
    def shape(self) -> TensorShape:
        return self.data.shape

    def __str__(self) -> str:
        args = ", ".join(str(i) for i in self.inputs)
        return f"%{self.id} = {self.symbol}({args}) : {self.data}"


class TensorGraph:
    """An immutable-ish tensor computation DAG.

    Nodes are stored in topological order (every node appears after all of
    its inputs).  Use :class:`GraphBuilder` to construct graphs.
    """

    def __init__(self, nodes: Sequence[Node], outputs: Sequence[int], name: str = "graph") -> None:
        self.nodes: List[Node] = list(nodes)
        self.outputs: List[int] = list(outputs)
        self.name = name
        self._validate_topology()

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #

    def _validate_topology(self) -> None:
        for i, node in enumerate(self.nodes):
            if node.id != i:
                raise ValueError(f"node ids must be dense and ordered; node {node.id} at position {i}")
            for child in node.inputs:
                if not 0 <= child < i:
                    raise ValueError(f"node {i} references input {child} that does not precede it")
        for out in self.outputs:
            if not 0 <= out < len(self.nodes):
                raise ValueError(f"output {out} is not a node of the graph")

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def compute_nodes(self) -> List[Node]:
        """Nodes that correspond to actual kernels (operators with a runtime cost)."""
        return [n for n in self.nodes if n.is_compute]

    def op_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for node in self.nodes:
            if node.is_compute:
                hist[node.op.value] = hist.get(node.op.value, 0) + 1
        return hist

    def num_compute_nodes(self) -> int:
        return len(self.compute_nodes())

    def consumers(self) -> Dict[int, List[int]]:
        """Map node id -> ids of nodes that consume it."""
        out: Dict[int, List[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for child in node.inputs:
                out[child].append(node.id)
        return out

    def input_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.op == OpKind.INPUT]

    def weight_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.op == OpKind.WEIGHT]

    def pruned(self) -> "TensorGraph":
        """Return a copy with dead nodes (unreachable from the outputs) removed."""
        live: List[int] = []
        seen = set()
        stack = list(self.outputs)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].inputs)
        mapping: Dict[int, int] = {}
        new_nodes: List[Node] = []
        for node in self.nodes:
            if node.id not in seen:
                continue
            new_id = len(new_nodes)
            mapping[node.id] = new_id
            new_nodes.append(
                Node(
                    id=new_id,
                    op=node.op,
                    inputs=tuple(mapping[c] for c in node.inputs),
                    value=node.value,
                    data=node.data,
                )
            )
        return TensorGraph(new_nodes, [mapping[o] for o in self.outputs], name=self.name)

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #

    def total_cost(self, cost_model) -> float:
        """Total graph cost: the sum of per-operator costs (paper Section 5)."""
        total = 0.0
        for node in self.nodes:
            if not node.is_compute:
                continue
            children = [self.nodes[c].data for c in node.inputs]
            total += cost_model.op_cost(node.symbol, children, node.data)
        return total

    # ------------------------------------------------------------------ #
    # Canonical signature (used by the sequential search to deduplicate graphs)
    # ------------------------------------------------------------------ #

    def signature(self) -> str:
        """A canonical string identifying this graph up to node reordering."""
        from repro.ir.convert import graph_to_recexpr

        expr, _ = graph_to_recexpr(self)
        return str(expr)

    # ------------------------------------------------------------------ #
    # Pretty printing
    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        lines = [f"TensorGraph {self.name!r}: {len(self.nodes)} nodes, outputs={self.outputs}"]
        for node in self.nodes:
            lines.append("  " + str(node))
        return "\n".join(lines)

    def describe(self) -> str:
        hist = self.op_histogram()
        ops = ", ".join(f"{k}={v}" for k, v in sorted(hist.items()))
        return f"{self.name}: {self.num_compute_nodes()} compute nodes ({ops})"


class GraphBuilder:
    """Fluent builder for :class:`TensorGraph` with hash-consing and eager shape checks.

    Example
    -------
    >>> b = GraphBuilder("example")
    >>> x = b.input("x", (8, 64))
    >>> w = b.weight("w", (64, 128))
    >>> y = b.relu(b.matmul(x, w))
    >>> graph = b.finish(outputs=[y])
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._memo: Dict[Tuple, int] = {}
        self._outputs: List[int] = []

    # ------------------------------------------------------------------ #
    # Core interning
    # ------------------------------------------------------------------ #

    def _intern(self, op: OpKind, inputs: Sequence[int] = (), value: object = None) -> int:
        inputs = tuple(int(i) for i in inputs)
        for child in inputs:
            if not 0 <= child < len(self._nodes):
                raise ValueError(f"unknown input node id {child}")
        key = (op, inputs, value)
        existing = self._memo.get(key)
        if existing is not None:
            return existing
        symbol = op_symbol(op, num_inputs=len(inputs), value=value)
        children_data = [self._nodes[c].data for c in inputs]
        data = infer_symbol(symbol, children_data)
        node = Node(id=len(self._nodes), op=op, inputs=inputs, value=value, data=data)
        self._nodes.append(node)
        self._memo[key] = node.id
        return node.id

    def data(self, node_id: int) -> TensorData:
        """Inferred metadata of a node already in the builder."""
        return self._nodes[node_id].data

    def add_symbol(self, symbol: str, inputs: Sequence[int] = (), strict: bool = False) -> int:
        """Add a node by its e-graph operator symbol (used when materialising patterns).

        ``strict=True`` raises :class:`~repro.ir.opspec.UnknownOperatorError`
        for symbols that are neither registered operators nor recognisable
        literals, instead of silently interning a string node.
        """
        from repro.ir.ops import symbol_to_op

        op, literal = symbol_to_op(symbol, strict=strict)
        return self._intern(op, tuple(inputs), literal)

    def import_node(self, graph: "TensorGraph", node_id: int, mapping: Dict[int, int]) -> int:
        """Copy one node of another graph into this builder (children must be mapped already)."""
        node = graph.nodes[node_id]
        inputs = tuple(mapping[c] for c in node.inputs)
        return self._intern(node.op, inputs, node.value)

    def shape(self, node_id: int) -> TensorShape:
        return self._nodes[node_id].data.shape

    # ------------------------------------------------------------------ #
    # Literals and identifiers
    # ------------------------------------------------------------------ #

    def num(self, value: int) -> int:
        """An integer parameter node."""
        return self._intern(OpKind.NUM, (), int(value))

    def string(self, value: str) -> int:
        """A string parameter node."""
        return self._intern(OpKind.STR, (), str(value))

    def input(self, name: str, shape: TensorShape) -> int:
        """An input (activation) tensor."""
        ident = self.string(format_identifier(name, shape))
        return self._intern(OpKind.INPUT, (ident,))

    def weight(self, name: str, shape: TensorShape) -> int:
        """A weight (parameter) tensor."""
        ident = self.string(format_identifier(name, shape))
        return self._intern(OpKind.WEIGHT, (ident,))

    # ------------------------------------------------------------------ #
    # Operators (paper Table 2)
    # ------------------------------------------------------------------ #

    def ewadd(self, a: int, b: int) -> int:
        """Element-wise addition."""
        return self._intern(OpKind.EWADD, (a, b))

    def ewmul(self, a: int, b: int) -> int:
        """Element-wise multiplication."""
        return self._intern(OpKind.EWMUL, (a, b))

    def matmul(self, a: int, b: int, activation: Activation = Activation.NONE) -> int:
        """Matrix multiplication with an optional fused activation."""
        return self._intern(OpKind.MATMUL, (self.num(int(activation)), a, b))

    def conv(
        self,
        x: int,
        w: int,
        stride: Tuple[int, int] = (1, 1),
        padding: Padding = Padding.SAME,
        activation: Activation = Activation.NONE,
    ) -> int:
        """Grouped convolution (normal and depth-wise convs are special cases)."""
        sh, sw = stride
        return self._intern(
            OpKind.CONV,
            (self.num(sh), self.num(sw), self.num(int(padding)), self.num(int(activation)), x, w),
        )

    def relu(self, x: int) -> int:
        return self._intern(OpKind.RELU, (x,))

    def tanh(self, x: int) -> int:
        return self._intern(OpKind.TANH, (x,))

    def sigmoid(self, x: int) -> int:
        return self._intern(OpKind.SIGMOID, (x,))

    def _pool(
        self,
        op: OpKind,
        x: int,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Padding,
        activation: Activation,
    ) -> int:
        kh, kw = kernel
        sh, sw = stride
        return self._intern(
            op,
            (
                x,
                self.num(kh),
                self.num(kw),
                self.num(sh),
                self.num(sw),
                self.num(int(padding)),
                self.num(int(activation)),
            ),
        )

    def poolmax(
        self,
        x: int,
        kernel: Tuple[int, int],
        stride: Tuple[int, int] = (1, 1),
        padding: Padding = Padding.SAME,
        activation: Activation = Activation.NONE,
    ) -> int:
        """Max pooling."""
        return self._pool(OpKind.POOLMAX, x, kernel, stride, padding, activation)

    def poolavg(
        self,
        x: int,
        kernel: Tuple[int, int],
        stride: Tuple[int, int] = (1, 1),
        padding: Padding = Padding.SAME,
        activation: Activation = Activation.NONE,
    ) -> int:
        """Average pooling."""
        return self._pool(OpKind.POOLAVG, x, kernel, stride, padding, activation)

    def transpose(self, x: int, perm: Sequence[int]) -> int:
        """Transpose with the axis permutation given as a sequence of ints."""
        perm_str = " ".join(str(int(p)) for p in perm)
        return self._intern(OpKind.TRANSPOSE, (x, self.string(perm_str)))

    def enlarge(self, x: int, ref: int) -> int:
        """Zero-pad convolution kernel ``x`` spatially to the size of ``ref``."""
        return self._intern(OpKind.ENLARGE, (x, ref))

    def concat(self, axis: int, *tensors: int) -> int:
        """Concatenate two or more tensors along ``axis``.

        The maximum arity is the registry's concat symbol family
        (``OPS.concat_max_inputs``, default 8); widen it with
        :func:`repro.ir.opspec.register_concat`.
        """
        if len(tensors) < 2:
            raise ValueError("concat needs at least two tensors")
        max_inputs = OPS.concat_max_inputs
        if len(tensors) > max_inputs:
            raise ValueError(f"concat of {len(tensors)} tensors unsupported (max {max_inputs})")
        return self._intern(OpKind.CONCAT, (self.num(axis),) + tuple(tensors))

    def split(self, axis: int, x: int) -> Tuple[int, int]:
        """Split ``x`` along ``axis`` at the most recent concat position; returns both pieces."""
        tup = self._intern(OpKind.SPLIT, (self.num(axis), x))
        return self._intern(OpKind.SPLIT0, (tup,)), self._intern(OpKind.SPLIT1, (tup,))

    def merge(self, w: int, count: int) -> int:
        """Merge every ``count`` groups of a grouped-convolution weight."""
        return self._intern(OpKind.MERGE, (w, self.num(count)))

    def reshape(self, x: int, shape: TensorShape) -> int:
        shape_str = " ".join(str(int(d)) for d in shape)
        return self._intern(OpKind.RESHAPE, (x, self.string(shape_str)))

    def noop(self, a: int, b: int) -> int:
        """Combine two outputs (used to make the graph single-rooted)."""
        return self._intern(OpKind.NOOP, (a, b))

    # ------------------------------------------------------------------ #
    # Convenience compound helpers (not Table-2 primitives)
    # ------------------------------------------------------------------ #

    def activation(self, x: int, kind: Activation) -> int:
        """Apply an activation given by its :class:`Activation` code."""
        if kind == Activation.NONE:
            return x
        if kind == Activation.RELU:
            return self.relu(x)
        if kind == Activation.SIGMOID:
            return self.sigmoid(x)
        if kind == Activation.TANH:
            return self.tanh(x)
        raise ValueError(f"unknown activation {kind}")

    def split_many(self, axis: int, x: int, count: int) -> List[int]:
        """Repeatedly split ``x`` into ``count`` pieces along ``axis``."""
        pieces: List[int] = []
        rest = x
        for _ in range(count - 1):
            first, rest = self.split(axis, rest)
            pieces.append(first)
        pieces.append(rest)
        return pieces

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #

    def mark_output(self, *node_ids: int) -> None:
        for node_id in node_ids:
            if not 0 <= node_id < len(self._nodes):
                raise ValueError(f"unknown node id {node_id}")
            if node_id not in self._outputs:
                self._outputs.append(node_id)

    def finish(self, outputs: Optional[Sequence[int]] = None) -> TensorGraph:
        """Produce the finished :class:`TensorGraph`."""
        if outputs is not None:
            self.mark_output(*outputs)
        if not self._outputs:
            if not self._nodes:
                raise ValueError("cannot finish an empty graph")
            self._outputs = [len(self._nodes) - 1]
        return TensorGraph(self._nodes, self._outputs, name=self.name)
