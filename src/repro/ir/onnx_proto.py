"""Minimal pure-Python codec for the ONNX protobuf wire format.

The importer (:mod:`repro.ir.onnx_import`) must work in environments where
the ``onnx`` package is not installed -- it is an *optional* extra, not a
dependency.  ONNX models are ordinary protobuf messages, and the subset of
the schema the importer needs (graphs, nodes, attributes, initializers,
value infos) decodes with a few hundred lines of wire-format code, so this
module implements exactly that: a reader for the fields we consume and a
writer good enough to synthesize the tiny checked-in test models
(``tools/make_test_onnx.py``).  When the real ``onnx`` package *is*
available, the importer still uses this decoder -- one code path -- but the
CI job with ``onnx`` installed cross-checks the generated files with
``onnx.checker`` and ``onnx.shape_inference``.

Field numbers follow ``onnx/onnx.proto`` (IR version 7+):

=================  =====================================================
message            fields used
=================  =====================================================
ModelProto         ir_version=1, graph=7, opset_import=8
GraphProto         node=1, name=2, initializer=5, input=11, output=12
NodeProto          input=1, output=2, name=3, op_type=4, attribute=5
AttributeProto     name=1, f=2, i=3, s=4, t=5, floats=7, ints=8,
                   strings=9, type=20
TensorProto        dims=1, data_type=2, float_data=4, int32_data=5,
                   int64_data=7, name=8, raw_data=9
ValueInfoProto     name=1, type=2
TypeProto          tensor_type=1 -> elem_type=1, shape=2 -> dim=1 ->
                   dim_value=1 / dim_param=2
OperatorSetIdProto domain=1, version=2
=================  =====================================================

Only deterministic, documented wire behaviour is implemented: varint,
fixed32/fixed64, and length-delimited fields; packed *and* unpacked
repeated scalars are accepted on read, packed is emitted on write (the
proto3 default, which the official ``onnx`` parser accepts).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "OnnxDecodeError",
    "AttributeKind",
    "TensorLite",
    "AttrLite",
    "ValueInfoLite",
    "NodeLite",
    "GraphLite",
    "ModelLite",
    "parse_model",
    "encode_model",
    "tensor_ints",
    "tensor_floats",
    "DT_FLOAT",
    "DT_INT64",
]

# TensorProto.DataType values we handle.
DT_FLOAT = 1
DT_INT64 = 7


class OnnxDecodeError(ValueError):
    """The byte stream is not a well-formed ONNX model (at the wire level)."""


class AttributeKind:
    """AttributeProto.AttributeType values."""

    FLOAT = 1
    INT = 2
    STRING = 3
    TENSOR = 4
    FLOATS = 6
    INTS = 7
    STRINGS = 8


# ---------------------------------------------------------------------- #
# Lite message mirrors
# ---------------------------------------------------------------------- #


@dataclass
class TensorLite:
    """TensorProto: an initializer (or attribute tensor)."""

    name: str = ""
    dims: Tuple[int, ...] = ()
    data_type: int = DT_FLOAT
    raw_data: bytes = b""
    float_data: Tuple[float, ...] = ()
    int64_data: Tuple[int, ...] = ()
    int32_data: Tuple[int, ...] = ()


@dataclass
class AttrLite:
    """AttributeProto: one node attribute."""

    name: str = ""
    type: int = 0
    f: float = 0.0
    i: int = 0
    s: bytes = b""
    t: Optional[TensorLite] = None
    floats: Tuple[float, ...] = ()
    ints: Tuple[int, ...] = ()
    strings: Tuple[bytes, ...] = ()


@dataclass
class ValueInfoLite:
    """ValueInfoProto: a typed graph input/output.

    ``dims`` entries are ints (``dim_value``), strings (``dim_param`` --
    symbolic dimensions like ``"batch"``), or None (unspecified).
    """

    name: str = ""
    elem_type: int = DT_FLOAT
    dims: Tuple[Union[int, str, None], ...] = ()


@dataclass
class NodeLite:
    """NodeProto: one operator application."""

    op_type: str = ""
    name: str = ""
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    attrs: Dict[str, AttrLite] = field(default_factory=dict)

    @property
    def display_name(self) -> str:
        return self.name or f"<{self.op_type} -> {', '.join(self.outputs) or '?'}>"


@dataclass
class GraphLite:
    """GraphProto."""

    name: str = ""
    nodes: List[NodeLite] = field(default_factory=list)
    initializers: List[TensorLite] = field(default_factory=list)
    inputs: List[ValueInfoLite] = field(default_factory=list)
    outputs: List[ValueInfoLite] = field(default_factory=list)


@dataclass
class ModelLite:
    """ModelProto (the fields the importer consumes)."""

    ir_version: int = 7
    opset: Dict[str, int] = field(default_factory=dict)
    graph: GraphLite = field(default_factory=GraphLite)


# ---------------------------------------------------------------------- #
# Wire-format primitives
# ---------------------------------------------------------------------- #

_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_LEN = 2
_WIRE_FIXED32 = 5


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise OnnxDecodeError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise OnnxDecodeError("varint too long")


def _signed64(value: int) -> int:
    value &= (1 << 64) - 1
    return value - (1 << 64) if value >= (1 << 63) else value


def _iter_fields(data: bytes) -> Iterator[Tuple[int, int, Union[int, bytes]]]:
    """Yield ``(field_number, wire_type, payload)`` triples of one message."""
    pos = 0
    while pos < len(data):
        key, pos = _read_varint(data, pos)
        number, wire = key >> 3, key & 0x7
        if wire == _WIRE_VARINT:
            value, pos = _read_varint(data, pos)
            yield number, wire, value
        elif wire == _WIRE_FIXED64:
            if pos + 8 > len(data):
                raise OnnxDecodeError("truncated fixed64")
            yield number, wire, data[pos : pos + 8]
            pos += 8
        elif wire == _WIRE_FIXED32:
            if pos + 4 > len(data):
                raise OnnxDecodeError("truncated fixed32")
            yield number, wire, data[pos : pos + 4]
            pos += 4
        elif wire == _WIRE_LEN:
            length, pos = _read_varint(data, pos)
            if pos + length > len(data):
                raise OnnxDecodeError("truncated length-delimited field")
            yield number, wire, data[pos : pos + length]
            pos += length
        else:
            raise OnnxDecodeError(f"unsupported wire type {wire} for field {number}")


def _packed_varints(payload: Union[int, bytes], signed: bool = True) -> List[int]:
    """Decode one occurrence of a repeated varint field (packed or not)."""
    if isinstance(payload, int):
        return [_signed64(payload) if signed else payload]
    values: List[int] = []
    pos = 0
    while pos < len(payload):
        value, pos = _read_varint(payload, pos)
        values.append(_signed64(value) if signed else value)
    return values


def _packed_floats(payload: Union[int, bytes]) -> List[float]:
    """Decode one occurrence of a repeated float field (packed or fixed32)."""
    if isinstance(payload, bytes) and len(payload) == 4:
        return [struct.unpack("<f", payload)[0]]
    if isinstance(payload, bytes):
        if len(payload) % 4:
            raise OnnxDecodeError("packed float payload not a multiple of 4 bytes")
        return [v[0] for v in struct.iter_unpack("<f", payload)]
    raise OnnxDecodeError("unexpected wire type for float field")


def _utf8(payload: Union[int, bytes], what: str) -> str:
    if not isinstance(payload, bytes):
        raise OnnxDecodeError(f"{what}: expected a length-delimited string")
    return payload.decode("utf-8", errors="replace")


def _bytes(payload: Union[int, bytes], what: str) -> bytes:
    if not isinstance(payload, bytes):
        raise OnnxDecodeError(f"{what}: expected length-delimited bytes")
    return payload


# ---------------------------------------------------------------------- #
# Message parsers
# ---------------------------------------------------------------------- #


def _parse_tensor(data: bytes) -> TensorLite:
    t = TensorLite()
    dims: List[int] = []
    floats: List[float] = []
    i64: List[int] = []
    i32: List[int] = []
    for number, wire, payload in _iter_fields(data):
        if number == 1:
            dims.extend(_packed_varints(payload))
        elif number == 2 and wire == _WIRE_VARINT:
            t.data_type = int(payload)
        elif number == 4:
            floats.extend(_packed_floats(payload))
        elif number == 5:
            i32.extend(_packed_varints(payload))
        elif number == 7:
            i64.extend(_packed_varints(payload))
        elif number == 8:
            t.name = _utf8(payload, "TensorProto.name")
        elif number == 9:
            t.raw_data = _bytes(payload, "TensorProto.raw_data")
    t.dims = tuple(dims)
    t.float_data = tuple(floats)
    t.int64_data = tuple(i64)
    t.int32_data = tuple(i32)
    return t


def _parse_attribute(data: bytes) -> AttrLite:
    a = AttrLite()
    floats: List[float] = []
    ints: List[int] = []
    strings: List[bytes] = []
    for number, wire, payload in _iter_fields(data):
        if number == 1:
            a.name = _utf8(payload, "AttributeProto.name")
        elif number == 2:
            a.f = _packed_floats(payload)[0]
        elif number == 3 and wire == _WIRE_VARINT:
            a.i = _signed64(int(payload))
        elif number == 4:
            a.s = _bytes(payload, "AttributeProto.s")
        elif number == 5:
            a.t = _parse_tensor(_bytes(payload, "AttributeProto.t"))
        elif number == 7:
            floats.extend(_packed_floats(payload))
        elif number == 8:
            ints.extend(_packed_varints(payload))
        elif number == 9:
            strings.append(_bytes(payload, "AttributeProto.strings"))
        elif number == 20 and wire == _WIRE_VARINT:
            a.type = int(payload)
    a.floats = tuple(floats)
    a.ints = tuple(ints)
    a.strings = tuple(strings)
    return a


def _parse_node(data: bytes) -> NodeLite:
    n = NodeLite()
    inputs: List[str] = []
    outputs: List[str] = []
    for number, wire, payload in _iter_fields(data):
        if number == 1:
            inputs.append(_utf8(payload, "NodeProto.input"))
        elif number == 2:
            outputs.append(_utf8(payload, "NodeProto.output"))
        elif number == 3:
            n.name = _utf8(payload, "NodeProto.name")
        elif number == 4:
            n.op_type = _utf8(payload, "NodeProto.op_type")
        elif number == 5:
            attr = _parse_attribute(_bytes(payload, "NodeProto.attribute"))
            n.attrs[attr.name] = attr
    n.inputs = tuple(inputs)
    n.outputs = tuple(outputs)
    return n


def _parse_dims(shape_data: bytes) -> Tuple[Union[int, str, None], ...]:
    dims: List[Union[int, str, None]] = []
    for number, wire, payload in _iter_fields(shape_data):
        if number != 1:  # TensorShapeProto.dim
            continue
        dim: Union[int, str, None] = None
        for dnum, dwire, dpayload in _iter_fields(_bytes(payload, "TensorShapeProto.dim")):
            if dnum == 1 and dwire == _WIRE_VARINT:  # dim_value
                dim = _signed64(int(dpayload))
            elif dnum == 2:  # dim_param
                dim = _utf8(dpayload, "Dimension.dim_param")
        dims.append(dim)
    return tuple(dims)


def _parse_value_info(data: bytes) -> ValueInfoLite:
    v = ValueInfoLite()
    for number, wire, payload in _iter_fields(data):
        if number == 1:
            v.name = _utf8(payload, "ValueInfoProto.name")
        elif number == 2:
            # TypeProto -> tensor_type (field 1) -> {elem_type=1, shape=2}
            for tnum, twire, tpayload in _iter_fields(_bytes(payload, "ValueInfoProto.type")):
                if tnum != 1:
                    continue
                for inum, iwire, ipayload in _iter_fields(_bytes(tpayload, "TypeProto.tensor_type")):
                    if inum == 1 and iwire == _WIRE_VARINT:
                        v.elem_type = int(ipayload)
                    elif inum == 2:
                        v.dims = _parse_dims(_bytes(ipayload, "TypeProto.Tensor.shape"))
    return v


def _parse_graph(data: bytes) -> GraphLite:
    g = GraphLite()
    for number, wire, payload in _iter_fields(data):
        if number == 1:
            g.nodes.append(_parse_node(_bytes(payload, "GraphProto.node")))
        elif number == 2:
            g.name = _utf8(payload, "GraphProto.name")
        elif number == 5:
            g.initializers.append(_parse_tensor(_bytes(payload, "GraphProto.initializer")))
        elif number == 11:
            g.inputs.append(_parse_value_info(_bytes(payload, "GraphProto.input")))
        elif number == 12:
            g.outputs.append(_parse_value_info(_bytes(payload, "GraphProto.output")))
    return g


def parse_model(data: bytes) -> ModelLite:
    """Decode a serialized ONNX ``ModelProto`` into a :class:`ModelLite`."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise OnnxDecodeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    model = ModelLite()
    saw_graph = False
    for number, wire, payload in _iter_fields(data):
        if number == 1 and wire == _WIRE_VARINT:
            model.ir_version = int(payload)
        elif number == 7:
            model.graph = _parse_graph(_bytes(payload, "ModelProto.graph"))
            saw_graph = True
        elif number == 8:
            domain, version = "", 0
            for onum, owire, opayload in _iter_fields(_bytes(payload, "ModelProto.opset_import")):
                if onum == 1:
                    domain = _utf8(opayload, "OperatorSetIdProto.domain")
                elif onum == 2 and owire == _WIRE_VARINT:
                    version = _signed64(int(opayload))
            model.opset[domain] = version
    if not saw_graph:
        raise OnnxDecodeError("model has no graph (is this really an ONNX file?)")
    return model


# ---------------------------------------------------------------------- #
# Tensor payload helpers
# ---------------------------------------------------------------------- #


def tensor_ints(t: TensorLite) -> Tuple[int, ...]:
    """Integer payload of an INT64/INT32 initializer (raw or field-encoded)."""
    if t.raw_data:
        if t.data_type == DT_INT64:
            return tuple(v[0] for v in struct.iter_unpack("<q", t.raw_data))
        return tuple(v[0] for v in struct.iter_unpack("<i", t.raw_data))
    if t.int64_data:
        return t.int64_data
    return t.int32_data


def tensor_floats(t: TensorLite) -> Tuple[float, ...]:
    """Float payload of a FLOAT initializer (raw or field-encoded)."""
    if t.raw_data:
        return tuple(v[0] for v in struct.iter_unpack("<f", t.raw_data))
    return t.float_data


# ---------------------------------------------------------------------- #
# Encoder (used by tools/make_test_onnx.py and the importer tests)
# ---------------------------------------------------------------------- #


def _varint(value: int) -> bytes:
    if value < 0:
        value &= (1 << 64) - 1
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _tag(number: int, wire: int) -> bytes:
    return _varint((number << 3) | wire)


def _len_field(number: int, payload: bytes) -> bytes:
    return _tag(number, _WIRE_LEN) + _varint(len(payload)) + payload


def _str_field(number: int, value: str) -> bytes:
    return _len_field(number, value.encode("utf-8"))


def _varint_field(number: int, value: int) -> bytes:
    return _tag(number, _WIRE_VARINT) + _varint(value)


def _packed_varint_field(number: int, values: Sequence[int]) -> bytes:
    if not values:
        return b""
    payload = b"".join(_varint(v) for v in values)
    return _len_field(number, payload)


def _encode_tensor(t: TensorLite) -> bytes:
    out = bytearray()
    out += _packed_varint_field(1, list(t.dims))
    out += _varint_field(2, t.data_type)
    if t.float_data:
        out += _len_field(4, b"".join(struct.pack("<f", v) for v in t.float_data))
    if t.int64_data:
        out += _packed_varint_field(7, list(t.int64_data))
    if t.name:
        out += _str_field(8, t.name)
    if t.raw_data:
        out += _len_field(9, t.raw_data)
    return bytes(out)


def _encode_attribute(a: AttrLite) -> bytes:
    out = bytearray()
    out += _str_field(1, a.name)
    if a.type == AttributeKind.FLOAT:
        out += _tag(2, _WIRE_FIXED32) + struct.pack("<f", a.f)
    elif a.type == AttributeKind.INT:
        out += _varint_field(3, a.i)
    elif a.type == AttributeKind.STRING:
        out += _len_field(4, a.s)
    elif a.type == AttributeKind.TENSOR and a.t is not None:
        out += _len_field(5, _encode_tensor(a.t))
    elif a.type == AttributeKind.FLOATS:
        out += _len_field(7, b"".join(struct.pack("<f", v) for v in a.floats))
    elif a.type == AttributeKind.INTS:
        out += _packed_varint_field(8, list(a.ints))
    elif a.type == AttributeKind.STRINGS:
        for s in a.strings:
            out += _len_field(9, s)
    out += _varint_field(20, a.type)
    return bytes(out)


def _encode_node(n: NodeLite) -> bytes:
    out = bytearray()
    for name in n.inputs:
        out += _str_field(1, name)
    for name in n.outputs:
        out += _str_field(2, name)
    if n.name:
        out += _str_field(3, n.name)
    out += _str_field(4, n.op_type)
    for attr in n.attrs.values():
        out += _len_field(5, _encode_attribute(attr))
    return bytes(out)


def _encode_value_info(v: ValueInfoLite) -> bytes:
    dims = bytearray()
    for dim in v.dims:
        if isinstance(dim, int):
            dim_msg = _varint_field(1, dim)
        elif isinstance(dim, str):
            dim_msg = _str_field(2, dim)
        else:
            dim_msg = b""
        dims += _len_field(1, dim_msg)
    shape = _len_field(2, bytes(dims))
    tensor_type = _varint_field(1, v.elem_type) + shape
    type_proto = _len_field(1, tensor_type)
    return _str_field(1, v.name) + _len_field(2, type_proto)


def _encode_graph(g: GraphLite) -> bytes:
    out = bytearray()
    for node in g.nodes:
        out += _len_field(1, _encode_node(node))
    if g.name:
        out += _str_field(2, g.name)
    for init in g.initializers:
        out += _len_field(5, _encode_tensor(init))
    for vi in g.inputs:
        out += _len_field(11, _encode_value_info(vi))
    for vi in g.outputs:
        out += _len_field(12, _encode_value_info(vi))
    return bytes(out)


def encode_model(model: ModelLite) -> bytes:
    """Serialize a :class:`ModelLite` into ONNX ``ModelProto`` wire bytes.

    The output is a valid protobuf message that the official ``onnx``
    package parses; the CI job with ``onnx`` installed pins this with
    ``onnx.checker`` on the checked-in test models.
    """
    out = bytearray()
    out += _varint_field(1, model.ir_version)
    out += _len_field(7, _encode_graph(model.graph))
    opset = model.opset or {"": 13}
    for domain, version in opset.items():
        entry = (_str_field(1, domain) if domain else b"") + _varint_field(2, version)
        out += _len_field(8, entry)
    return bytes(out)
