"""Tensor computation graph IR.

The representation follows the paper's Table 2: a graph is a single-rooted
DAG whose nodes are operators; operator parameters (strides, axes, padding
and activation modes) are integer- or string-typed nodes, and ``input`` /
``weight`` leaves carry a ``name@shape`` identifier string.
"""

from repro.ir.graph import GraphBuilder, Node, TensorGraph
from repro.ir.onnx_import import OnnxImportError, import_onnx, onnx_coverage
from repro.ir.ops import Activation, OpKind, Padding
from repro.ir.opspec import OPS, OpRegistry, OpSpec, UnknownOperatorError, register_concat
from repro.ir.tensor import DataKind, ShapeError, TensorData, TensorShape

__all__ = [
    "GraphBuilder",
    "Node",
    "TensorGraph",
    "OpKind",
    "Activation",
    "Padding",
    "DataKind",
    "TensorData",
    "TensorShape",
    "ShapeError",
    "OPS",
    "OpSpec",
    "OpRegistry",
    "UnknownOperatorError",
    "register_concat",
    "import_onnx",
    "onnx_coverage",
    "OnnxImportError",
]
