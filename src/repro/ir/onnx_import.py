"""ONNX import front door: real exported models become tensor graphs.

Maps the ONNX operator subset that lands on the paper's Table 2 onto the
IR, with shape inference re-run through the :data:`repro.ir.opspec.OPS`
registry (every imported node passes the exact same
:func:`~repro.ir.opspec.infer_symbol` checks hand-built models do):

=================  ====================================================
ONNX op            Table-2 mapping / constraints
=================  ====================================================
Conv               ``conv`` -- 2-D, dilations 1, zero bias; ``auto_pad``
                   SAME_UPPER/SAME_LOWER or pads matching SAME, else
                   all-zero pads = VALID
MatMul             ``matmul`` (activation NONE)
Gemm               ``matmul`` (+ ``transpose`` for transB, ``ewadd`` for
                   a full-shape C); alpha = 1, transA = 0
Add / Mul          ``ewadd`` / ``ewmul`` -- identical shapes only (the IR
                   has no implicit broadcast)
Relu/Sigmoid/Tanh  the activation ops
MaxPool            ``poolmax`` -- 2-D, ceil_mode 0, dilations 1
AveragePool        ``poolavg`` -- same constraints
Concat             ``concat{N}`` -- N bounded by the registry's symbol
                   family (``OPS.concat_max_inputs``); wider concats are
                   rejected with a typed error, not a crash
Split              ``split``/``split0``/``split1`` chains -- sizes must
                   match what repeated binary splitting produces
Transpose          ``transpose``
Reshape            ``reshape`` -- target shape from an initializer or
                   Constant, ``0``/``-1`` entries resolved
initializers       ``weight`` leaves (name preserved, sanitised)
graph inputs       ``input`` leaves; symbolic dims resolve through
                   ``dim_overrides``
Constant/Identity  front-end bookkeeping (constants are folded, Identity
                   is an alias); they produce no IR node
=================  ====================================================

Anything else raises :class:`OnnxImportError` -- a typed, catchable
diagnostic that names the offending ONNX node, in the spirit of Python's
``ImportError``: the caller learns exactly which node and why, instead of a
``KeyError`` from deep inside the builder.

Decoding uses the self-contained wire codec in :mod:`repro.ir.onnx_proto`,
so the importer works without the ``onnx`` package installed; ``onnx``
remains an *optional extra* (the CI leg that has it installed cross-checks
the test models with ``onnx.checker``).  An ``onnx.ModelProto`` object is
accepted directly when the package is present (anything with
``SerializeToString``).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.graph import GraphBuilder, TensorGraph
from repro.ir.ops import Activation, Padding
from repro.ir.opspec import OPS, same_padding_amount
from repro.ir.onnx_proto import (
    AttrLite,
    GraphLite,
    ModelLite,
    NodeLite,
    OnnxDecodeError,
    TensorLite,
    parse_model,
    tensor_floats,
    tensor_ints,
)
from repro.ir.tensor import ShapeError

__all__ = ["OnnxImportError", "import_onnx", "onnx_coverage", "FRONTEND_OPS"]

#: ONNX ops consumed by the front end itself (no Table-2 counterpart): they
#: never produce an IR node.  ``tools/check_api.py`` checks that the handler
#: table equals the union of every spec's ``onnx_ops`` plus this set.
FRONTEND_OPS = ("Constant", "Identity")


class OnnxImportError(ValueError):
    """An ONNX model (or one of its nodes) cannot be mapped onto Table 2.

    ``node_name`` / ``op_type`` identify the offending node when the error
    is node-scoped (both are None for model-level problems such as a
    truncated file or an unresolvable symbolic dimension).
    """

    def __init__(self, message: str, node: Optional[NodeLite] = None) -> None:
        if node is not None:
            message = f"node {node.display_name!r} ({node.op_type}): {message}"
        super().__init__(message)
        self.node_name = node.display_name if node is not None else None
        self.op_type = node.op_type if node is not None else None


def onnx_coverage() -> Dict[str, str]:
    """Supported ONNX ``op_type`` -> Table-2 operator name, from the registry."""
    coverage: Dict[str, str] = {}
    for spec in OPS:
        for op_type in spec.onnx_ops:
            coverage[op_type] = spec.name
    return coverage


# ---------------------------------------------------------------------- #
# Attribute helpers
# ---------------------------------------------------------------------- #


def _attr_i(node: NodeLite, name: str, default: int) -> int:
    attr = node.attrs.get(name)
    return attr.i if attr is not None else default


def _attr_ints(node: NodeLite, name: str, default: Sequence[int] = ()) -> Tuple[int, ...]:
    attr = node.attrs.get(name)
    return tuple(attr.ints) if attr is not None and attr.ints else tuple(default)


def _attr_f(node: NodeLite, name: str, default: float) -> float:
    attr = node.attrs.get(name)
    return attr.f if attr is not None else default


def _attr_s(node: NodeLite, name: str, default: str) -> str:
    attr = node.attrs.get(name)
    return attr.s.decode("utf-8", errors="replace") if attr is not None and attr.s else default


def _sanitize(name: str) -> str:
    """Make an ONNX tensor name safe for the ``name@dims`` identifier format."""
    cleaned = "".join("_" if ch in "@ \t\n" else ch for ch in name)
    return cleaned or "tensor"


# ---------------------------------------------------------------------- #
# The import context
# ---------------------------------------------------------------------- #


class _Importer:
    def __init__(self, graph: GraphLite, name: str, dim_overrides: Dict[str, int]) -> None:
        self.onnx_graph = graph
        self.builder = GraphBuilder(name)
        self.dim_overrides = dict(dim_overrides)
        #: tensor name -> IR node id (alive values)
        self.env: Dict[str, int] = {}
        #: tensor name -> initializer / folded Constant (materialised lazily)
        self.consts: Dict[str, TensorLite] = {}

    # -- value plumbing ------------------------------------------------ #

    def tensor(self, name: str, node: NodeLite) -> int:
        """IR node id for ONNX value ``name``, materialising weights on demand."""
        if name in self.env:
            return self.env[name]
        init = self.consts.get(name)
        if init is not None:
            if not init.dims:
                raise OnnxImportError(
                    f"input {name!r} is a scalar initializer; rank-0 tensors have no "
                    f"Table-2 representation", node)
            node_id = self.builder.weight(_sanitize(name), tuple(init.dims))
            self.env[name] = node_id
            return node_id
        raise OnnxImportError(f"input {name!r} is not produced by any preceding node", node)

    def const_ints(self, name: str, node: NodeLite, what: str) -> Tuple[int, ...]:
        init = self.consts.get(name)
        if init is None:
            raise OnnxImportError(
                f"{what} must be a constant (initializer or Constant node), but "
                f"{name!r} is computed at runtime", node)
        return tensor_ints(init)

    def is_zero_const(self, name: str) -> bool:
        """Whether ``name`` is a constant tensor that is entirely zero."""
        init = self.consts.get(name)
        if init is None:
            return False
        values = tensor_floats(init) if init.data_type != 7 else tensor_ints(init)
        return all(v == 0 for v in values)

    def shape_of(self, node_id: int) -> Tuple[int, ...]:
        return tuple(self.builder.data(node_id).shape)

    # -- padding ------------------------------------------------------- #

    def resolve_padding(
        self, node: NodeLite, in_hw: Tuple[int, int], kernel: Tuple[int, int],
        strides: Tuple[int, int],
    ) -> Padding:
        """Map ONNX auto_pad/pads onto the Table-2 SAME/VALID encoding."""
        auto_pad = _attr_s(node, "auto_pad", "NOTSET")
        if auto_pad in ("SAME_UPPER", "SAME_LOWER"):
            return Padding.SAME
        if auto_pad not in ("NOTSET", "VALID"):
            raise OnnxImportError(f"auto_pad mode {auto_pad!r} unsupported", node)
        pads = _attr_ints(node, "pads", (0, 0, 0, 0))
        if auto_pad == "VALID" or all(p == 0 for p in pads):
            return Padding.VALID
        if len(pads) != 4:
            raise OnnxImportError(f"expected 4 spatial pads, got {list(pads)}", node)
        same = []
        for axis in range(2):
            before, after = same_padding_amount(in_hw[axis], kernel[axis], strides[axis])
            same.append((before, after))
        # pads order: [h_begin, w_begin, h_end, w_end]
        explicit = ((pads[0], pads[2]), (pads[1], pads[3]))
        mirrored = ((pads[2], pads[0]), (pads[3], pads[1]))  # SAME_LOWER
        if explicit == tuple(same) or mirrored == tuple(same):
            return Padding.SAME
        raise OnnxImportError(
            f"explicit pads {list(pads)} match neither VALID (all zero) nor SAME "
            f"({same} for input {in_hw}, kernel {kernel}, strides {strides}); "
            f"asymmetric padding has no Table-2 representation", node)

    # -- per-op handlers ----------------------------------------------- #

    def handle_conv(self, node: NodeLite) -> None:
        if len(node.inputs) not in (2, 3):
            raise OnnxImportError(f"expected 2 or 3 inputs, got {len(node.inputs)}", node)
        dilations = _attr_ints(node, "dilations", (1, 1))
        if any(d != 1 for d in dilations):
            raise OnnxImportError(f"dilations {list(dilations)} unsupported (must be 1)", node)
        if len(node.inputs) == 3 and node.inputs[2]:
            if not self.is_zero_const(node.inputs[2]):
                raise OnnxImportError(
                    f"non-zero bias {node.inputs[2]!r} unsupported (Table-2 conv has no "
                    f"bias; ewadd cannot broadcast a per-channel vector)", node)
        x = self.tensor(node.inputs[0], node)
        w = self.tensor(node.inputs[1], node)
        x_shape, w_shape = self.shape_of(x), self.shape_of(w)
        if len(x_shape) != 4 or len(w_shape) != 4:
            raise OnnxImportError(
                f"only 2-D convolution supported, got input {x_shape} weight {w_shape}", node)
        strides = _attr_ints(node, "strides", (1, 1))
        if len(strides) != 2:
            raise OnnxImportError(f"expected 2 strides, got {list(strides)}", node)
        kernel = _attr_ints(node, "kernel_shape", w_shape[2:])
        padding = self.resolve_padding(node, x_shape[2:], tuple(kernel), tuple(strides))
        out = self.builder.conv(x, w, stride=tuple(strides), padding=padding)
        self.env[node.outputs[0]] = out

    def handle_matmul(self, node: NodeLite) -> None:
        a = self.tensor(node.inputs[0], node)
        b = self.tensor(node.inputs[1], node)
        self.env[node.outputs[0]] = self.builder.matmul(a, b)

    def handle_gemm(self, node: NodeLite) -> None:
        if _attr_f(node, "alpha", 1.0) != 1.0:
            raise OnnxImportError("alpha != 1 unsupported", node)
        if _attr_i(node, "transA", 0) != 0:
            raise OnnxImportError("transA != 0 unsupported", node)
        a = self.tensor(node.inputs[0], node)
        b = self.tensor(node.inputs[1], node)
        if _attr_i(node, "transB", 0) != 0:
            b = self.builder.transpose(b, (1, 0))
        out = self.builder.matmul(a, b)
        if len(node.inputs) == 3 and node.inputs[2]:
            c_name = node.inputs[2]
            beta = _attr_f(node, "beta", 1.0)
            if self.is_zero_const(c_name) or beta == 0.0:
                pass  # zero bias: the matmul already is the result
            else:
                if beta != 1.0:
                    raise OnnxImportError("beta not in (0, 1) unsupported", node)
                c = self.tensor(c_name, node)
                if self.shape_of(c) != self.shape_of(out):
                    raise OnnxImportError(
                        f"C shape {self.shape_of(c)} != output shape {self.shape_of(out)}; "
                        f"broadcast bias has no Table-2 representation (ewadd needs "
                        f"identical shapes)", node)
                out = self.builder.ewadd(out, c)
        self.env[node.outputs[0]] = out

    def _handle_ewise(self, node: NodeLite, build: Callable[[int, int], int]) -> None:
        a = self.tensor(node.inputs[0], node)
        b = self.tensor(node.inputs[1], node)
        if self.shape_of(a) != self.shape_of(b):
            raise OnnxImportError(
                f"operand shapes {self.shape_of(a)} and {self.shape_of(b)} differ; "
                f"broadcasting has no Table-2 representation", node)
        self.env[node.outputs[0]] = build(a, b)

    def handle_add(self, node: NodeLite) -> None:
        self._handle_ewise(node, self.builder.ewadd)

    def handle_mul(self, node: NodeLite) -> None:
        self._handle_ewise(node, self.builder.ewmul)

    def _handle_activation(self, node: NodeLite, build: Callable[[int], int]) -> None:
        self.env[node.outputs[0]] = build(self.tensor(node.inputs[0], node))

    def handle_relu(self, node: NodeLite) -> None:
        self._handle_activation(node, self.builder.relu)

    def handle_sigmoid(self, node: NodeLite) -> None:
        self._handle_activation(node, self.builder.sigmoid)

    def handle_tanh(self, node: NodeLite) -> None:
        self._handle_activation(node, self.builder.tanh)

    def _handle_pool(self, node: NodeLite, build) -> None:
        if _attr_i(node, "ceil_mode", 0) != 0:
            raise OnnxImportError("ceil_mode != 0 unsupported", node)
        dilations = _attr_ints(node, "dilations", (1, 1))
        if any(d != 1 for d in dilations):
            raise OnnxImportError(f"dilations {list(dilations)} unsupported (must be 1)", node)
        kernel = _attr_ints(node, "kernel_shape")
        if len(kernel) != 2:
            raise OnnxImportError(
                f"only 2-D pooling supported, got kernel_shape {list(kernel)}", node)
        strides = _attr_ints(node, "strides", (1, 1))
        x = self.tensor(node.inputs[0], node)
        padding = self.resolve_padding(node, self.shape_of(x)[2:], tuple(kernel), tuple(strides))
        self.env[node.outputs[0]] = build(
            x, kernel=tuple(kernel), stride=tuple(strides), padding=padding)

    def handle_maxpool(self, node: NodeLite) -> None:
        if len(node.outputs) > 1 and node.outputs[1]:
            raise OnnxImportError("MaxPool Indices output unsupported", node)
        self._handle_pool(node, self.builder.poolmax)

    def handle_averagepool(self, node: NodeLite) -> None:
        self._handle_pool(node, self.builder.poolavg)

    def handle_concat(self, node: NodeLite) -> None:
        axis_attr = node.attrs.get("axis")
        if axis_attr is None:
            raise OnnxImportError("missing required attribute 'axis'", node)
        tensors = [self.tensor(name, node) for name in node.inputs]
        if len(tensors) == 1:  # single-input concat is an alias
            self.env[node.outputs[0]] = tensors[0]
            return
        max_inputs = OPS.concat_max_inputs
        if len(tensors) > max_inputs:
            raise OnnxImportError(
                f"concat of {len(tensors)} tensors exceeds the registered symbol family "
                f"(max {max_inputs}); widen it with repro.ir.opspec.register_concat"
                f"({len(tensors)})", node)
        axis = axis_attr.i
        if axis < 0:  # normalise negative axes against the first operand
            axis += len(self.shape_of(tensors[0]))
        self.env[node.outputs[0]] = self.builder.concat(axis, *tensors)

    def handle_split(self, node: NodeLite) -> None:
        x = self.tensor(node.inputs[0], node)
        shape = self.shape_of(x)
        axis = _attr_i(node, "axis", 0)
        if axis < 0:
            axis += len(shape)
        count = len(node.outputs)
        if count < 2:
            raise OnnxImportError("Split with a single output is an alias; unsupported", node)
        if len(node.inputs) > 1 and node.inputs[1]:  # opset >= 13: sizes input
            sizes = self.const_ints(node.inputs[1], node, "Split 'split' sizes")
        else:
            sizes = _attr_ints(node, "split", ())
        if not sizes:
            total = shape[axis]
            if total % count:
                raise OnnxImportError(
                    f"dimension {total} does not divide evenly into {count} outputs", node)
            sizes = tuple(total // count for _ in range(count))
        if len(sizes) != count:
            raise OnnxImportError(
                f"{len(sizes)} split sizes for {count} outputs", node)
        pieces = self.builder.split_many(axis, x, count)
        got = tuple(self.shape_of(p)[axis] for p in pieces)
        if got != tuple(sizes):
            raise OnnxImportError(
                f"requested split sizes {list(sizes)} along axis {axis}, but Table-2 "
                f"split is binary (first piece vs rest at the recorded concat "
                f"position); repeated splitting of {shape} yields {list(got)}", node)
        for out_name, piece in zip(node.outputs, pieces):
            self.env[out_name] = piece

    def handle_transpose(self, node: NodeLite) -> None:
        x = self.tensor(node.inputs[0], node)
        rank = len(self.shape_of(x))
        perm = _attr_ints(node, "perm", tuple(reversed(range(rank))))
        self.env[node.outputs[0]] = self.builder.transpose(x, perm)

    def handle_reshape(self, node: NodeLite) -> None:
        if _attr_i(node, "allowzero", 0) != 0:
            raise OnnxImportError("allowzero != 0 unsupported", node)
        x = self.tensor(node.inputs[0], node)
        shape = self.shape_of(x)
        target = list(self.const_ints(node.inputs[1], node, "Reshape target shape"))
        for i, dim in enumerate(target):  # 0 copies the input dimension
            if dim == 0:
                if i >= len(shape):
                    raise OnnxImportError(
                        f"target dim {i} is 0 but the input has rank {len(shape)}", node)
                target[i] = shape[i]
        if target.count(-1) > 1:
            raise OnnxImportError(f"more than one -1 in target shape {target}", node)
        if -1 in target:
            known = 1
            for dim in target:
                if dim != -1:
                    known *= dim
            total = 1
            for dim in shape:
                total *= dim
            if known == 0 or total % known:
                raise OnnxImportError(
                    f"cannot infer the -1 dimension of {target} from input {shape}", node)
            target[target.index(-1)] = total // known
        self.env[node.outputs[0]] = self.builder.reshape(x, tuple(target))

    def handle_constant(self, node: NodeLite) -> None:
        attr = node.attrs.get("value")
        if attr is None or attr.t is None:
            raise OnnxImportError(
                "only the 'value' (tensor) attribute of Constant is supported", node)
        self.consts[node.outputs[0]] = attr.t

    def handle_identity(self, node: NodeLite) -> None:
        name = node.inputs[0]
        if name in self.consts:
            self.consts[node.outputs[0]] = self.consts[name]
        else:
            self.env[node.outputs[0]] = self.tensor(name, node)

    # -- the walk ------------------------------------------------------ #

    HANDLERS: Dict[str, str] = {
        "Conv": "handle_conv",
        "MatMul": "handle_matmul",
        "Gemm": "handle_gemm",
        "Add": "handle_add",
        "Mul": "handle_mul",
        "Relu": "handle_relu",
        "Sigmoid": "handle_sigmoid",
        "Tanh": "handle_tanh",
        "MaxPool": "handle_maxpool",
        "AveragePool": "handle_averagepool",
        "Concat": "handle_concat",
        "Split": "handle_split",
        "Transpose": "handle_transpose",
        "Reshape": "handle_reshape",
        "Constant": "handle_constant",
        "Identity": "handle_identity",
    }

    def run(self) -> TensorGraph:
        graph = self.onnx_graph
        for init in graph.initializers:
            self.consts[init.name] = init
        for value_info in graph.inputs:
            if value_info.name in self.consts:
                continue  # initializers may be listed under graph.input too
            dims = self.resolve_dims(value_info)
            self.env[value_info.name] = self.builder.input(_sanitize(value_info.name), dims)
        for node in graph.nodes:
            method = self.HANDLERS.get(node.op_type)
            if method is None:
                supported = ", ".join(sorted(self.HANDLERS))
                raise OnnxImportError(
                    f"unsupported ONNX operator (supported: {supported})", node)
            try:
                getattr(self, method)(node)
            except ShapeError as exc:
                raise OnnxImportError(f"shape inference rejected the node: {exc}", node) from exc
        outputs: List[int] = []
        for value_info in graph.outputs:
            node_id = self.env.get(value_info.name)
            if node_id is None:
                raise OnnxImportError(
                    f"graph output {value_info.name!r} is not produced by any node")
            outputs.append(node_id)
        if not outputs:
            raise OnnxImportError("model has no graph outputs")
        return self.builder.finish(outputs=outputs)

    def resolve_dims(self, value_info) -> Tuple[int, ...]:
        dims: List[int] = []
        for position, dim in enumerate(value_info.dims):
            if isinstance(dim, int) and dim > 0:
                dims.append(dim)
            elif isinstance(dim, str) and dim in self.dim_overrides:
                dims.append(int(self.dim_overrides[dim]))
            elif isinstance(dim, str):
                raise OnnxImportError(
                    f"graph input {value_info.name!r} has symbolic dimension {dim!r} at "
                    f"position {position}; pass dim_overrides={{{dim!r}: <int>}} (CLI: "
                    f"--fix-dim {dim}=<int>)")
            else:
                raise OnnxImportError(
                    f"graph input {value_info.name!r} has unknown dimension at position "
                    f"{position}; the importer needs concrete shapes")
        if not dims:
            raise OnnxImportError(
                f"graph input {value_info.name!r} has no shape information")
        return tuple(dims)


def import_onnx(
    source: Union[str, "os.PathLike", bytes, object],
    name: Optional[str] = None,
    dim_overrides: Optional[Dict[str, int]] = None,
) -> TensorGraph:
    """Import an ONNX model as a :class:`~repro.ir.graph.TensorGraph`.

    ``source`` may be a file path, raw ``ModelProto`` bytes, or a loaded
    ``onnx.ModelProto`` (anything with ``SerializeToString``).  Symbolic
    input dimensions (e.g. a ``"batch"`` dim_param) are resolved through
    ``dim_overrides``.  Raises :class:`OnnxImportError` with a message
    naming the offending node when the model steps outside the supported
    subset -- see the module docstring for the coverage table.
    """
    default_name = "onnx"
    if isinstance(source, (bytes, bytearray, memoryview)):
        data = bytes(source)
    elif hasattr(source, "SerializeToString"):  # a real onnx.ModelProto
        data = source.SerializeToString()
    else:
        path = os.fspath(source)
        default_name = os.path.splitext(os.path.basename(path))[0]
        with open(path, "rb") as handle:
            data = handle.read()
    try:
        model = parse_model(data)
    except OnnxDecodeError as exc:
        raise OnnxImportError(f"cannot decode ONNX model: {exc}") from exc
    graph_name = name or model.graph.name or default_name
    importer = _Importer(model.graph, graph_name, dim_overrides or {})
    return importer.run()
