"""The operator-spec registry: one table owning every operator's semantics.

Before this module existed, the paper's Table 2 was smeared across three
independent per-symbol dispatch chains -- shape inference in
``ir/shapes.py``, FLOP/byte accounting in ``costs/flops.py``, and the
e-graph symbol mapping in ``ir/ops.py`` -- so adding an operator meant
editing N files in lockstep.  Following the component-registry pattern of
:mod:`repro.core.registry`, an :class:`OpSpec` collapses all of that
knowledge into one record and the :data:`OPS` registry is the single source
of truth consulted by:

* :func:`infer_symbol` -- shape inference / shape checking (the hot path of
  e-graph construction, the tensor e-class analysis, and rewrite
  preconditions),
* :func:`op_flops` / :func:`op_bytes` -- the cost model's per-operator
  arithmetic and memory-traffic accounting,
* :func:`repro.ir.ops.op_symbol` / :func:`repro.ir.ops.symbol_to_op` -- the
  IR <-> e-graph symbol mapping, including the ``concat{N}``
  arity-specialisation family,
* :mod:`repro.ir.serialize` -- document validation (valid operator names
  derive from the registry),
* :func:`repro.service.fingerprint.config_digest` -- the service cache key
  covers the registered operator set, so third-party operator registration
  can never alias cached results computed under a different op table,
* :mod:`repro.ir.onnx_import` -- the ONNX front door maps ``op_type`` names
  onto specs via each spec's ``onnx_ops`` field, and
* ``tools/check_api.py`` -- the lockstep check that every registered
  operator carries shape *and* cost functions.

The old per-symbol if/elif chains survive as *executable specs*
(``repro.ir.shapes.infer_symbol_spec``, ``repro.costs.flops.op_flops_spec``
/ ``op_bytes_spec``) pinned verdict-by-verdict against the registry
dispatch by ``tests/test_opspec.py`` -- the same compiled-vs-spec discipline
the e-matcher and the multi-pattern join already follow.

Registering a new operator (see ``docs/operators.md`` for the worked
example)::

    from repro.ir.opspec import OPS, OpSpec, tensor_traffic, zero_flops

    OPS.register(OpSpec(
        kind=OpKind.GELU, name="gelu", signature="(input)", arity=(1, 1),
        symbols=("gelu",), infer=my_infer, flops=my_flops,
        op_bytes=tensor_traffic, onnx_ops=("Gelu",),
    ))

After the one ``register`` call, shape inference, both cost functions,
serialization validation, and the config digest all know the operator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.ops import Activation, OpKind, Padding
from repro.ir.tensor import DataKind, ShapeError, TensorData, parse_identifier

__all__ = [
    "OpSpec",
    "OpRegistry",
    "OPS",
    "UnknownOperatorError",
    "infer_symbol",
    "op_flops",
    "op_bytes",
    "zero_flops",
    "zero_bytes",
    "tensor_traffic",
    "register_concat",
    "FLOAT_BYTES",
    "conv_output_hw",
    "pool_output_hw",
    "matmul_output_shape",
    "same_padding_amount",
]

FLOAT_BYTES = 4  # FP32


class UnknownOperatorError(ValueError):
    """A symbol names no registered operator and is not a literal.

    Raised by the *strict* symbol-resolution path (used when parsing
    extracted terms and serialized documents) so a typo'd rule target fails
    loudly instead of silently becoming a string-literal node.
    """


# ---------------------------------------------------------------------- #
# Geometry helpers (shared by shape inference and the ONNX importer)
# ---------------------------------------------------------------------- #


def conv_output_hw(
    h: int, w: int, kh: int, kw: int, stride_h: int, stride_w: int, padding: int
) -> Tuple[int, int]:
    """Output spatial dims of a convolution under TASO's SAME/VALID semantics."""
    if stride_h <= 0 or stride_w <= 0:
        raise ShapeError(f"convolution stride must be positive, got ({stride_h}, {stride_w})")
    if padding == Padding.SAME:
        out_h = math.ceil(h / stride_h)
        out_w = math.ceil(w / stride_w)
    elif padding == Padding.VALID:
        out_h = math.ceil((h - kh + 1) / stride_h)
        out_w = math.ceil((w - kw + 1) / stride_w)
    else:
        raise ShapeError(f"unknown padding mode {padding}")
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution output is empty: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride ({stride_h},{stride_w}), padding {Padding(padding).name}"
        )
    return out_h, out_w


def same_padding_amount(size: int, kernel: int, stride: int) -> Tuple[int, int]:
    """Total (before, after) zero padding applied by SAME padding along one axis."""
    out = math.ceil(size / stride)
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    after = total - before
    return before, after


def pool_output_hw(
    h: int, w: int, kh: int, kw: int, stride_h: int, stride_w: int, padding: int
) -> Tuple[int, int]:
    """Pooling uses the same SAME/VALID geometry as convolution."""
    return conv_output_hw(h, w, kh, kw, stride_h, stride_w, padding)


def matmul_output_shape(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Shape of ``a @ b`` supporting 2-D and batched 3-D operands."""
    if len(a) < 2 or len(b) < 2:
        raise ShapeError(f"matmul operands must have rank >= 2, got {a} and {b}")
    if a[-1] != b[-2]:
        raise ShapeError(f"matmul inner dimensions disagree: {a} @ {b}")
    if len(a) == 2 and len(b) == 2:
        return (a[0], b[1])
    if len(a) == 3 and len(b) == 2:
        return (a[0], a[1], b[1])
    if len(a) == 2 and len(b) == 3:
        return (b[0], a[0], b[2])
    if len(a) == 3 and len(b) == 3:
        if a[0] != b[0]:
            raise ShapeError(f"matmul batch dimensions disagree: {a} @ {b}")
        return (a[0], a[1], b[2])
    raise ShapeError(f"matmul operands of rank {len(a)} and {len(b)} unsupported")


def _check_activation(code: int) -> int:
    if code not in (Activation.NONE, Activation.RELU, Activation.SIGMOID, Activation.TANH):
        raise ShapeError(f"unknown activation mode {code}")
    return code


# ---------------------------------------------------------------------- #
# Per-operator shape inference (Table 2 semantics)
# ---------------------------------------------------------------------- #


def _infer_ewise(children: Sequence[TensorData]) -> TensorData:
    a = children[0].expect_tensor("element-wise lhs")
    b = children[1].expect_tensor("element-wise rhs")
    if a.shape != b.shape:
        raise ShapeError(f"element-wise operands must have identical shapes, got {a.shape} and {b.shape}")
    # Split locations survive element-wise ops (both operands share them or they
    # are dropped -- keep the lhs's, matching TASO's propagation).
    return TensorData.tensor(a.shape, a.split_sizes)


def _infer_matmul(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 3:
        raise ShapeError("matmul expects (activation, input1, input2)")
    _check_activation(children[0].expect_int("matmul activation"))
    a = children[1].expect_tensor("matmul lhs")
    b = children[2].expect_tensor("matmul rhs")
    out_shape = matmul_output_shape(a.shape, b.shape)
    out = TensorData.tensor(out_shape)
    # Propagate concat provenance: columns of the output mirror columns of b,
    # rows mirror rows of a (needed so a following ``split`` knows where to cut).
    col_axis_out = len(out_shape) - 1
    row_axis_out = len(out_shape) - 2
    b_cols = b.split_sizes_for_axis(len(b.shape) - 1)
    if b_cols is not None:
        out = out.with_split(col_axis_out, b_cols)
    a_rows = a.split_sizes_for_axis(len(a.shape) - 2)
    if a_rows is not None:
        out = out.with_split(row_axis_out, a_rows)
    return out


def _infer_conv(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 6:
        raise ShapeError("conv expects (stride_h, stride_w, padding, activation, input, weight)")
    stride_h = children[0].expect_int("conv stride_h")
    stride_w = children[1].expect_int("conv stride_w")
    padding = children[2].expect_int("conv padding")
    _check_activation(children[3].expect_int("conv activation"))
    x = children[4].expect_tensor("conv input")
    w = children[5].expect_tensor("conv weight")
    if x.rank != 4 or w.rank != 4:
        raise ShapeError(f"conv expects NCHW input and OIHW weight, got {x.shape} and {w.shape}")
    n, c_in, h, win = x.shape
    c_out, c_in_per_group, kh, kw = w.shape
    if c_in_per_group <= 0 or c_in % c_in_per_group != 0:
        raise ShapeError(
            f"conv input channels {c_in} not divisible by weight input channels {c_in_per_group}"
        )
    groups = c_in // c_in_per_group
    if c_out % groups != 0:
        raise ShapeError(f"conv output channels {c_out} not divisible by groups {groups}")
    if kh > h or kw > win:
        if padding == Padding.VALID:
            raise ShapeError(f"conv kernel {kh}x{kw} larger than input {h}x{win} with VALID padding")
    out_h, out_w = conv_output_hw(h, win, kh, kw, stride_h, stride_w, padding)
    out = TensorData.tensor((n, c_out, out_h, out_w))
    # The output-channel axis mirrors the weight's output-channel axis.
    w_out_split = w.split_sizes_for_axis(0)
    if w_out_split is not None:
        out = out.with_split(1, w_out_split)
    return out


def _infer_activation(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("activation input")
    return TensorData.tensor(x.shape, x.split_sizes)


def _infer_pool(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 7:
        raise ShapeError("pooling expects (input, kernel_h, kernel_w, stride_h, stride_w, padding, activation)")
    x = children[0].expect_tensor("pool input")
    kh = children[1].expect_int("pool kernel_h")
    kw = children[2].expect_int("pool kernel_w")
    sh = children[3].expect_int("pool stride_h")
    sw = children[4].expect_int("pool stride_w")
    padding = children[5].expect_int("pool padding")
    _check_activation(children[6].expect_int("pool activation"))
    if x.rank != 4:
        raise ShapeError(f"pooling expects an NCHW input, got {x.shape}")
    n, c, h, w = x.shape
    out_h, out_w = pool_output_hw(h, w, kh, kw, sh, sw, padding)
    out = TensorData.tensor((n, c, out_h, out_w))
    ch_split = x.split_sizes_for_axis(1)
    if ch_split is not None:
        out = out.with_split(1, ch_split)
    return out


def _infer_transpose(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("transpose input")
    perm_str = children[1].expect_string("transpose permutation")
    try:
        perm = tuple(int(tok) for tok in perm_str.split())
    except ValueError as exc:
        raise ShapeError(f"malformed permutation string {perm_str!r}") from exc
    if sorted(perm) != list(range(x.rank)):
        raise ShapeError(f"permutation {perm} is not a permutation of axes of rank-{x.rank} tensor")
    new_shape = tuple(x.shape[p] for p in perm)
    out = TensorData.tensor(new_shape)
    for axis, sizes in x.split_sizes:
        out = out.with_split(perm.index(axis), sizes)
    return out


def _infer_enlarge(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("enlarge kernel")
    ref = children[1].expect_tensor("enlarge reference kernel")
    if x.rank != 4 or ref.rank != 4:
        raise ShapeError("enlarge expects 4-D convolution kernels")
    if x.shape[2] > ref.shape[2] or x.shape[3] > ref.shape[3]:
        raise ShapeError(
            f"enlarge target spatial size {ref.shape[2:]} smaller than kernel {x.shape[2:]}"
        )
    return TensorData.tensor((x.shape[0], x.shape[1], ref.shape[2], ref.shape[3]))


def _infer_concat(children: Sequence[TensorData]) -> TensorData:
    axis = children[0].expect_int("concat axis")
    tensors = [c.expect_tensor("concat input") for c in children[1:]]
    if len(tensors) < 2:
        raise ShapeError("concat needs at least two tensors")
    rank = tensors[0].rank
    if not 0 <= axis < rank:
        raise ShapeError(f"concat axis {axis} out of range for rank-{rank} tensors")
    for t in tensors[1:]:
        if t.rank != rank:
            raise ShapeError("concat inputs must all have the same rank")
        for d in range(rank):
            if d != axis and t.shape[d] != tensors[0].shape[d]:
                raise ShapeError(
                    f"concat inputs disagree on non-concat axis {d}: {t.shape} vs {tensors[0].shape}"
                )
    sizes = tuple(t.shape[axis] for t in tensors)
    out_shape = list(tensors[0].shape)
    out_shape[axis] = sum(sizes)
    return TensorData.tensor(tuple(out_shape)).with_split(axis, sizes)


def _infer_split(children: Sequence[TensorData]) -> TensorData:
    axis = children[0].expect_int("split axis")
    x = children[1].expect_tensor("split input")
    if not 0 <= axis < x.rank:
        raise ShapeError(f"split axis {axis} out of range for shape {x.shape}")
    sizes = x.split_sizes_for_axis(axis)
    total = x.shape[axis]
    if sizes is None:
        # No recorded concat: split in half (requires an even dimension).
        if total % 2 != 0:
            raise ShapeError(
                f"split along axis {axis} of size {total} has no recorded concat position "
                f"and the dimension is odd"
            )
        first, second = total // 2, total // 2
    else:
        if sum(sizes) != total:
            raise ShapeError(f"recorded split sizes {sizes} do not sum to dimension {total}")
        # The split is binary (Table 2): first piece vs. the rest.
        first = sizes[0]
        second = total - first
    if first <= 0 or second <= 0:
        raise ShapeError(f"split along axis {axis} would produce an empty piece ({first}, {second})")

    def piece(size: int) -> TensorData:
        shape = list(x.shape)
        shape[axis] = size
        return TensorData.tensor(tuple(shape))

    first_part = piece(first)
    second_part = piece(second)
    if sizes is not None and len(sizes) > 2:
        # The remainder is still a concatenation of the remaining pieces.
        second_part = second_part.with_split(axis, tuple(sizes[1:]))
    return TensorData.tuple_of((first_part, second_part))


def _infer_split_index(children: Sequence[TensorData], index: int) -> TensorData:
    t = children[0]
    if t.kind != DataKind.TUPLE:
        raise ShapeError(f"split{index} expects the output of split, got {t.kind.value}")
    if len(t.parts) <= index:
        raise ShapeError(f"split tuple has no element {index}")
    return t.parts[index]


def _infer_split0(children: Sequence[TensorData]) -> TensorData:
    return _infer_split_index(children, 0)


def _infer_split1(children: Sequence[TensorData]) -> TensorData:
    return _infer_split_index(children, 1)


def _infer_merge(children: Sequence[TensorData]) -> TensorData:
    w = children[0].expect_tensor("merge weight")
    count = children[1].expect_int("merge count")
    if w.rank != 4:
        raise ShapeError("merge expects a 4-D convolution weight")
    if count <= 0:
        raise ShapeError("merge count must be positive")
    c_out, c_in, kh, kw = w.shape
    return TensorData.tensor((c_out, c_in * count, kh, kw))


def _infer_reshape(children: Sequence[TensorData]) -> TensorData:
    x = children[0].expect_tensor("reshape input")
    shape_str = children[1].expect_string("reshape target shape")
    try:
        new_shape = tuple(int(tok) for tok in shape_str.split())
    except ValueError as exc:
        raise ShapeError(f"malformed reshape target {shape_str!r}") from exc
    if any(d <= 0 for d in new_shape):
        raise ShapeError(f"reshape target {new_shape} has non-positive dimensions")
    n_in, n_out = x.num_elements, 1
    for d in new_shape:
        n_out *= d
    if n_in != n_out:
        raise ShapeError(f"reshape cannot change the number of elements: {x.shape} -> {new_shape}")
    return TensorData.tensor(new_shape)


def _infer_identifier(children: Sequence[TensorData]) -> TensorData:
    ident = children[0].expect_string("tensor identifier")
    _, shape = parse_identifier(ident)
    return TensorData.tensor(shape)


def _infer_input(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 1:
        raise ShapeError("input expects a single identifier child")
    return _infer_identifier(children)


def _infer_weight(children: Sequence[TensorData]) -> TensorData:
    if len(children) != 1:
        raise ShapeError("weight expects a single identifier child")
    return _infer_identifier(children).with_from_weights(True)


def _infer_noop(children: Sequence[TensorData]) -> TensorData:
    # noop only glues graph outputs together; it carries no tensor semantics.
    for child in children:
        if not child.is_valid:
            raise ShapeError("noop child is invalid")
    return TensorData.tensor(())


def _infer_num_literal(children: Sequence[TensorData]) -> TensorData:
    raise ShapeError("num literals are inferred from their symbol, not their children")


def _infer_str_literal(children: Sequence[TensorData]) -> TensorData:
    raise ShapeError("str literals are inferred from their symbol, not their children")


# ---------------------------------------------------------------------- #
# Per-operator FLOP / byte accounting
# ---------------------------------------------------------------------- #


def zero_flops(children: Sequence[TensorData], output: TensorData) -> float:
    """Data-movement operators perform no arithmetic."""
    return 0.0


def zero_bytes(children: Sequence[TensorData], output: TensorData) -> float:
    """Literals, identifiers, and glue nodes move no bytes at runtime."""
    return 0.0


def tensor_traffic(children: Sequence[TensorData], output: TensorData) -> float:
    """Default memory traffic: read every tensor operand, write the output."""
    read = sum(c.num_elements for c in children if c.kind == DataKind.TENSOR)
    if output.kind == DataKind.TUPLE:
        written = sum(p.num_elements for p in output.parts)
    else:
        written = output.num_elements
    return FLOAT_BYTES * float(read + written)


def _flops_matmul(children: Sequence[TensorData], output: TensorData) -> float:
    a = children[1]
    k = a.shape[-1]
    flops = 2.0 * output.num_elements * k
    if children[0].kind == DataKind.INT and children[0].value != Activation.NONE:
        flops += output.num_elements
    return flops


def _flops_conv(children: Sequence[TensorData], output: TensorData) -> float:
    w = children[5]
    _, c_in_per_group, kh, kw = w.shape
    flops = 2.0 * output.num_elements * c_in_per_group * kh * kw
    if children[3].kind == DataKind.INT and children[3].value != Activation.NONE:
        flops += output.num_elements
    return flops


def _flops_ewise(children: Sequence[TensorData], output: TensorData) -> float:
    return float(output.num_elements)


def _flops_relu(children: Sequence[TensorData], output: TensorData) -> float:
    return 1.0 * output.num_elements


def _flops_transcendental(children: Sequence[TensorData], output: TensorData) -> float:
    # Transcendentals cost a few flops per element; a small constant factor
    # keeps tanh/sigmoid slightly more expensive than relu.
    return 4.0 * output.num_elements


def _flops_pool(children: Sequence[TensorData], output: TensorData) -> float:
    kh = children[1].value if children[1].kind == DataKind.INT else 1
    kw = children[2].value if children[2].kind == DataKind.INT else 1
    return float(output.num_elements) * float(kh) * float(kw)


# ---------------------------------------------------------------------- #
# OpSpec and the registry
# ---------------------------------------------------------------------- #

#: ``(min, max)`` child counts; ``max`` may be None for unbounded, the whole
#: arity may be None for "unchecked" (the per-op infer fn validates itself).
Arity = Optional[Tuple[int, Optional[int]]]


@dataclass(frozen=True)
class OpSpec:
    """Everything the system knows about one Table-2 operator family.

    Attributes
    ----------
    kind:
        The :class:`~repro.ir.ops.OpKind` this spec describes.
    name:
        Serialization name (the ``op`` field of JSON graph documents);
        equals ``kind.value`` for the built-in table.
    signature:
        Human-readable operand signature from Table 2, used in diagnostics
        and in the generated operator documentation.
    arity:
        ``(min, max)`` child counts enforced by the dispatcher before the
        inference function runs (``None`` max = unbounded; ``None`` arity =
        the inference function checks itself).
    symbols:
        Every e-graph operator symbol owned by this family.  Most operators
        own exactly one; ``concat`` owns the ``concat2`` .. ``concat{N}``
        arity-specialisation family; literal specs (``num``/``str``) own
        none -- their symbols *are* their values.
    infer:
        Shape-inference rule ``(children) -> TensorData`` (raises
        :class:`~repro.ir.tensor.ShapeError` on incompatible operands).
    flops:
        Arithmetic work ``(children, output) -> float``; use
        :func:`zero_flops` for data-movement operators.
    op_bytes:
        Memory traffic ``(children, output) -> float``; use
        :func:`tensor_traffic` for real kernels, :func:`zero_bytes` for
        literals / identifiers / glue.
    symbol_of:
        Optional ``(num_inputs, value) -> symbol`` override for families
        whose symbol depends on arity or payload (``concat``, literals);
        ``None`` means the fixed ``name``.
    onnx_ops:
        ONNX ``op_type`` names the importer maps onto this operator (the
        coverage table in ``docs/operators.md`` derives from this field).
    """

    kind: OpKind
    name: str
    signature: str
    arity: Arity
    symbols: Tuple[str, ...]
    infer: Callable[[Sequence[TensorData]], TensorData]
    flops: Callable[[Sequence[TensorData], TensorData], float]
    op_bytes: Callable[[Sequence[TensorData], TensorData], float]
    symbol_of: Optional[Callable[[Optional[int], object], str]] = None
    onnx_ops: Tuple[str, ...] = ()

    @property
    def is_compute(self) -> bool:
        return self.kind.is_compute


class OpRegistry:
    """Ordered ``OpKind -> OpSpec`` table with a symbol index.

    Registration order is Table-2 order; :meth:`names` (serialization names)
    and iteration preserve it.  Symbols must be globally unique across
    specs.  ``concat_max_inputs`` is derived from the concat family's symbol
    count -- the old module-level ``CONCAT_MAX_INPUTS`` constant now reads
    through here (see :func:`register_concat` for widening it).
    """

    def __init__(self) -> None:
        self._by_kind: Dict[OpKind, OpSpec] = {}
        self._by_name: Dict[str, OpSpec] = {}
        self._by_symbol: Dict[str, OpSpec] = {}

    # -- registration -------------------------------------------------- #

    def register(self, spec: OpSpec, replace: bool = False) -> OpSpec:
        """Register ``spec``; with ``replace=True`` an existing spec for the
        same kind is swapped out (used to widen the concat family)."""
        if not replace and spec.kind in self._by_kind:
            raise ValueError(f"operator {spec.kind.value!r} is already registered")
        if replace and spec.kind in self._by_kind:
            old = self._by_kind[spec.kind]
            del self._by_name[old.name]
            for symbol in old.symbols:
                del self._by_symbol[symbol]
        if spec.name in self._by_name:
            raise ValueError(f"operator name {spec.name!r} is already registered")
        for symbol in spec.symbols:
            owner = self._by_symbol.get(symbol)
            if owner is not None:
                raise ValueError(f"symbol {symbol!r} is already owned by {owner.name!r}")
        self._by_kind[spec.kind] = spec
        self._by_name[spec.name] = spec
        for symbol in spec.symbols:
            self._by_symbol[symbol] = spec
        return spec

    def unregister(self, kind: OpKind) -> None:
        """Remove a spec (mainly for tests and plugin teardown)."""
        spec = self._by_kind.pop(kind, None)
        if spec is None:
            raise ValueError(f"operator {kind!r} is not registered")
        del self._by_name[spec.name]
        for symbol in spec.symbols:
            del self._by_symbol[symbol]

    # -- lookup -------------------------------------------------------- #

    def spec(self, kind: OpKind) -> OpSpec:
        try:
            return self._by_kind[kind]
        except KeyError:
            raise ValueError(f"operator {kind!r} has no registered spec") from None

    def from_name(self, name: str) -> Optional[OpSpec]:
        """The spec whose serialization name is ``name`` (None if unknown)."""
        return self._by_name.get(name)

    def for_symbol(self, symbol: str) -> Optional[OpSpec]:
        """The spec owning e-graph symbol ``symbol`` (None for literals)."""
        return self._by_symbol.get(symbol)

    def names(self) -> Tuple[str, ...]:
        """Serialization names in registration (Table-2) order."""
        return tuple(self._by_name)

    def symbols(self) -> Tuple[str, ...]:
        """Every registered e-graph symbol, in registration order."""
        return tuple(self._by_symbol)

    def __iter__(self) -> Iterator[OpSpec]:
        return iter(self._by_kind.values())

    def __len__(self) -> int:
        return len(self._by_kind)

    def __contains__(self, kind: object) -> bool:
        return kind in self._by_kind

    @property
    def concat_max_inputs(self) -> int:
        """Widest concat arity representable with the registered symbol family."""
        return len(self.spec(OpKind.CONCAT).symbols) + 1

    # -- symbol mapping ------------------------------------------------ #

    def op_symbol(self, kind: OpKind, num_inputs: Optional[int] = None, value: object = None) -> str:
        """E-graph operator symbol for an IR node (see :func:`repro.ir.ops.op_symbol`)."""
        spec = self.spec(kind)
        if spec.symbol_of is not None:
            return spec.symbol_of(num_inputs, value)
        return spec.name

    def resolve_symbol(self, symbol: str, strict: bool = False) -> Tuple[OpKind, object]:
        """Map an e-graph symbol to ``(OpKind, literal value)``.

        Unknown symbols are classified as literals: integers become ``NUM``
        nodes; in the default lenient mode *everything else* becomes a
        ``STR`` node (the historical behaviour).  With ``strict=True`` only
        symbols that look like genuine string-literal payloads -- tensor
        identifiers (``name@dims``) and whitespace-separated integer lists
        (axis permutations, reshape targets) -- are accepted as ``STR``;
        anything else raises :class:`UnknownOperatorError`, so a typo'd rule
        target or corrupted term fails loudly instead of silently becoming a
        string node.
        """
        spec = self._by_symbol.get(symbol)
        if spec is not None:
            return spec.kind, None
        try:
            return OpKind.NUM, int(symbol)
        except ValueError:
            pass
        if not strict or _string_literal_like(symbol):
            return OpKind.STR, symbol
        raise UnknownOperatorError(
            f"unknown operator symbol {symbol!r} (not a registered operator, an integer, "
            f"a 'name@dims' identifier, or an integer-list literal); registered: "
            f"{', '.join(self.names())}"
        )

    # -- semantic dispatch (the hot paths) ----------------------------- #

    def infer(self, symbol: str, children: Sequence[TensorData]) -> TensorData:
        """Registry-dispatched shape inference (see :func:`infer_symbol`)."""
        spec = self._by_symbol.get(symbol)
        if spec is None:
            # Literal symbols carry their payload in the symbol itself.
            try:
                return TensorData.integer(int(symbol))
            except ValueError:
                return TensorData.string(symbol)
        for child in children:
            if not child.is_valid:
                raise ShapeError(f"{symbol}: invalid operand")
        arity = spec.arity
        if arity is not None:
            lo, hi = arity
            n = len(children)
            if n < lo or (hi is not None and n > hi):
                raise ShapeError(f"{symbol} expects {spec.signature}, got {n} operands")
        result = spec.infer(children)
        # Weight-only subgraphs can be pre-computed before inference (paper
        # Figure 10); propagate the flag exactly as the executable spec does.
        kind = spec.kind
        if result.kind == DataKind.TENSOR and not kind.is_literal and not kind.is_identifier:
            tensor_children = [c for c in children if c.kind in (DataKind.TENSOR, DataKind.TUPLE)]
            if tensor_children and all(c.from_weights for c in tensor_children):
                result = result.with_from_weights(True)
        if result.kind == DataKind.TUPLE:
            tensor_children = [c for c in children if c.kind in (DataKind.TENSOR, DataKind.TUPLE)]
            if tensor_children and all(c.from_weights for c in tensor_children):
                result = TensorData.tuple_of(tuple(p.with_from_weights(True) for p in result.parts))
        return result

    def op_flops(self, symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
        """Registry-dispatched FLOP accounting (see :func:`op_flops`)."""
        spec = self._by_symbol.get(symbol)
        if spec is None:  # literal symbols perform no arithmetic
            return 0.0
        return spec.flops(children, output)

    def op_bytes(self, symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
        """Registry-dispatched byte accounting (see :func:`op_bytes`)."""
        spec = self._by_symbol.get(symbol)
        if spec is None:  # literal symbols move no bytes
            return 0.0
        return spec.op_bytes(children, output)


def _string_literal_like(symbol: str) -> bool:
    """Whether ``symbol`` looks like a genuine string-literal payload."""
    if "@" in symbol:  # tensor identifier 'name@d1 d2 ...'
        return True
    tokens = symbol.split()
    if not tokens:
        return False
    for token in tokens:  # axis permutations / reshape targets: '0 2 1 3'
        try:
            int(token)
        except ValueError:
            return False
    return True


# ---------------------------------------------------------------------- #
# The built-in Table-2 operator table
# ---------------------------------------------------------------------- #

OPS = OpRegistry()


def _num_symbol(num_inputs: Optional[int], value: object) -> str:
    return str(int(value))


def _str_symbol(num_inputs: Optional[int], value: object) -> str:
    return str(value)


def _concat_symbols(max_inputs: int) -> Tuple[str, ...]:
    return tuple(f"concat{n}" for n in range(2, max_inputs + 1))


def _make_concat_symbol_of(max_inputs: int):
    def concat_symbol(num_inputs: Optional[int], value: object) -> str:
        if num_inputs is None:
            raise ValueError("concat needs num_inputs to determine its e-graph symbol")
        n_tensors = num_inputs - 1  # first input is the axis
        if not 2 <= n_tensors <= max_inputs:
            raise ValueError(f"concat of {n_tensors} tensors unsupported (max {max_inputs})")
        return f"concat{n_tensors}"

    return concat_symbol


def register_concat(max_inputs: int) -> OpSpec:
    """(Re-)register the concat family with arity symbols ``concat2..concat{N}``.

    The ``CONCAT_MAX_INPUTS = 8`` default is a representation choice, not a
    semantic limit: each arity needs its own e-graph symbol (Table 2 note d).
    Widening the family is one call -- shape inference, cost accounting,
    serialization validation, the ONNX importer's rejection threshold, and
    the config digest all derive from the registered symbol set::

        from repro.ir.opspec import register_concat
        register_concat(16)   # now concat2 .. concat16 exist everywhere
    """
    if max_inputs < 2:
        raise ValueError(f"concat needs at least 2 inputs, got max_inputs={max_inputs}")
    return OPS.register(
        OpSpec(
            kind=OpKind.CONCAT,
            name="concat",
            signature="(axis, input1, ..., inputN)",
            arity=(3, max_inputs + 1),
            symbols=_concat_symbols(max_inputs),
            infer=_infer_concat,
            flops=zero_flops,
            op_bytes=tensor_traffic,
            symbol_of=_make_concat_symbol_of(max_inputs),
            onnx_ops=("Concat",),
        ),
        replace=OpKind.CONCAT in OPS,
    )


def _register_builtins() -> None:
    reg = OPS.register
    reg(OpSpec(OpKind.NUM, "num", "(integer literal)", (0, 0), (),
               _infer_num_literal, zero_flops, zero_bytes, symbol_of=_num_symbol))
    reg(OpSpec(OpKind.STR, "str", "(string literal)", (0, 0), (),
               _infer_str_literal, zero_flops, zero_bytes, symbol_of=_str_symbol))
    reg(OpSpec(OpKind.INPUT, "input", "(identifier)", (1, 1), ("input",),
               _infer_input, zero_flops, zero_bytes))
    reg(OpSpec(OpKind.WEIGHT, "weight", "(identifier)", (1, 1), ("weight",),
               _infer_weight, zero_flops, zero_bytes))
    reg(OpSpec(OpKind.EWADD, "ewadd", "(input1, input2)", (2, 2), ("ewadd",),
               _infer_ewise, _flops_ewise, tensor_traffic, onnx_ops=("Add",)))
    reg(OpSpec(OpKind.EWMUL, "ewmul", "(input1, input2)", (2, 2), ("ewmul",),
               _infer_ewise, _flops_ewise, tensor_traffic, onnx_ops=("Mul",)))
    reg(OpSpec(OpKind.MATMUL, "matmul", "(activation, input1, input2)", (3, 3), ("matmul",),
               _infer_matmul, _flops_matmul, tensor_traffic, onnx_ops=("MatMul", "Gemm")))
    reg(OpSpec(OpKind.CONV, "conv",
               "(stride_h, stride_w, padding, activation, input, weight)", (6, 6), ("conv",),
               _infer_conv, _flops_conv, tensor_traffic, onnx_ops=("Conv",)))
    reg(OpSpec(OpKind.RELU, "relu", "(input)", (1, 1), ("relu",),
               _infer_activation, _flops_relu, tensor_traffic, onnx_ops=("Relu",)))
    reg(OpSpec(OpKind.TANH, "tanh", "(input)", (1, 1), ("tanh",),
               _infer_activation, _flops_transcendental, tensor_traffic, onnx_ops=("Tanh",)))
    reg(OpSpec(OpKind.SIGMOID, "sigmoid", "(input)", (1, 1), ("sigmoid",),
               _infer_activation, _flops_transcendental, tensor_traffic, onnx_ops=("Sigmoid",)))
    reg(OpSpec(OpKind.POOLMAX, "poolmax",
               "(input, kernel_h, kernel_w, stride_h, stride_w, padding, activation)",
               (7, 7), ("poolmax",), _infer_pool, _flops_pool, tensor_traffic,
               onnx_ops=("MaxPool",)))
    reg(OpSpec(OpKind.POOLAVG, "poolavg",
               "(input, kernel_h, kernel_w, stride_h, stride_w, padding, activation)",
               (7, 7), ("poolavg",), _infer_pool, _flops_pool, tensor_traffic,
               onnx_ops=("AveragePool",)))
    reg(OpSpec(OpKind.TRANSPOSE, "transpose", "(input, permutation)", (2, 2), ("transpose",),
               _infer_transpose, zero_flops, tensor_traffic, onnx_ops=("Transpose",)))
    reg(OpSpec(OpKind.ENLARGE, "enlarge", "(input, ref_input)", (2, 2), ("enlarge",),
               _infer_enlarge, zero_flops, tensor_traffic))
    register_concat(8)
    reg(OpSpec(OpKind.SPLIT, "split", "(axis, input)", (2, 2), ("split",),
               _infer_split, zero_flops, tensor_traffic, onnx_ops=("Split",)))
    reg(OpSpec(OpKind.SPLIT0, "split0", "(input)", (1, 1), ("split0",),
               _infer_split0, zero_flops, tensor_traffic))
    reg(OpSpec(OpKind.SPLIT1, "split1", "(input)", (1, 1), ("split1",),
               _infer_split1, zero_flops, tensor_traffic))
    reg(OpSpec(OpKind.MERGE, "merge", "(weight, count)", (2, 2), ("merge",),
               _infer_merge, zero_flops, tensor_traffic))
    reg(OpSpec(OpKind.RESHAPE, "reshape", "(input, shape)", (2, 2), ("reshape",),
               _infer_reshape, zero_flops, tensor_traffic, onnx_ops=("Reshape",)))
    reg(OpSpec(OpKind.NOOP, "noop", "(input1, input2)", None, ("noop",),
               _infer_noop, zero_flops, zero_bytes))


_register_builtins()


# ---------------------------------------------------------------------- #
# Module-level front doors (the names the rest of the system imports)
# ---------------------------------------------------------------------- #


def infer_symbol(symbol: str, children: Sequence[TensorData]) -> TensorData:
    """Infer the :class:`TensorData` produced by e-graph operator ``symbol``.

    Raises :class:`~repro.ir.tensor.ShapeError` when the operands are
    incompatible -- this is exactly the "shape checking" the paper performs
    before applying a rewrite at a syntactic match.  Dispatches through the
    :data:`OPS` registry; the historical if/elif chain survives as
    :func:`repro.ir.shapes.infer_symbol_spec`, pinned verdict-by-verdict in
    ``tests/test_opspec.py``.
    """
    return OPS.infer(symbol, children)


def op_flops(symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
    """Floating point operations performed by the operator (registry dispatch)."""
    return OPS.op_flops(symbol, children, output)


def op_bytes(symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
    """Bytes read plus bytes written by the operator (registry dispatch)."""
    return OPS.op_bytes(symbol, children, output)
