"""Semantic validation of tensor graphs.

:class:`~repro.ir.graph.TensorGraph` already enforces topological node order
at construction; this module re-checks the *semantic* invariants that the
optimizer must preserve:

* every node's shape is consistent with re-running inference on its inputs,
* the graph is acyclic and single-connected from its outputs,
* inputs/weights referenced by the optimized graph existed in the original
  graph with identical shapes (the optimizer may only rearrange computation,
  never invent data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ir.graph import TensorGraph
from repro.ir.ops import OpKind
from repro.ir.opspec import infer_symbol
from repro.ir.tensor import ShapeError

__all__ = ["ValidationError", "validate_graph", "check_same_interface", "reachable_from_outputs"]


class ValidationError(ValueError):
    """Raised when a graph violates a semantic invariant."""


def reachable_from_outputs(graph: TensorGraph) -> Set[int]:
    """Node ids reachable from the graph outputs (the 'live' part of the DAG)."""
    seen: Set[int] = set()
    stack = list(graph.outputs)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(graph.nodes[nid].inputs)
    return seen


def validate_graph(graph: TensorGraph) -> None:
    """Check shape consistency and basic well-formedness; raise :class:`ValidationError`."""
    for node in graph.nodes:
        children = [graph.nodes[c].data for c in node.inputs]
        try:
            inferred = infer_symbol(node.symbol, children)
        except ShapeError as exc:
            raise ValidationError(f"node {node.id} ({node.symbol}) fails shape inference: {exc}") from exc
        if inferred.kind != node.data.kind:
            raise ValidationError(
                f"node {node.id} ({node.symbol}) has kind {node.data.kind} but inference gives {inferred.kind}"
            )
        if inferred.shape != node.data.shape:
            raise ValidationError(
                f"node {node.id} ({node.symbol}) has shape {node.data.shape} but inference gives {inferred.shape}"
            )
    if not graph.outputs:
        raise ValidationError("graph has no outputs")


def check_same_interface(original: TensorGraph, optimized: TensorGraph) -> None:
    """Check the optimized graph uses only inputs/weights available in the original.

    Weights may be *recombined* (e.g. concatenated) by rewrites, so the check
    is on identifiers: every input/weight identifier of the optimized graph
    must appear in the original with the same shape, and the number of graph
    outputs must match.
    """
    def identifiers(graph: TensorGraph) -> Dict[str, Tuple[int, ...]]:
        idents: Dict[str, Tuple[int, ...]] = {}
        for node in graph.nodes:
            if node.op in (OpKind.INPUT, OpKind.WEIGHT):
                ident_node = graph.nodes[node.inputs[0]]
                idents[str(ident_node.value)] = node.data.shape
        return idents

    orig = identifiers(original)
    opt = identifiers(optimized)
    for ident, shape in opt.items():
        if ident not in orig:
            raise ValidationError(f"optimized graph references unknown tensor {ident!r}")
        if orig[ident] != shape:
            raise ValidationError(
                f"tensor {ident!r} changed shape: {orig[ident]} in the original vs {shape} optimized"
            )
    if len(original.outputs) != len(optimized.outputs):
        raise ValidationError(
            f"output arity changed: {len(original.outputs)} originally vs {len(optimized.outputs)} optimized"
        )
