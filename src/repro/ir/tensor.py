"""Tensor metadata: shapes, data kinds, and the analysis payload.

:class:`TensorData` is the value attached to every IR node and to every
e-class by the tensor e-class analysis (paper Section 6: "we store all the
relevant information of the tensors (shape, layout, split locations) in the
analysis data").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["DataKind", "TensorShape", "TensorData", "ShapeError", "parse_identifier", "format_identifier"]

TensorShape = Tuple[int, ...]


class ShapeError(ValueError):
    """Raised when operator inputs have incompatible shapes or parameters."""


class DataKind(enum.Enum):
    """The four node types of the paper's Table 2 plus an 'invalid' marker."""

    TENSOR = "tensor"
    INT = "int"
    STRING = "string"
    TUPLE = "tuple"  # tensor tuple (output of split)
    INVALID = "invalid"


@dataclass(frozen=True)
class TensorData:
    """Metadata describing the value produced by a node / e-class.

    Attributes
    ----------
    kind:
        Which of the Table-2 types this value has.
    shape:
        Tensor shape (``kind == TENSOR``), or ``()``.
    value:
        The integer (``kind == INT``) or string (``kind == STRING``) payload.
    split_sizes:
        "Split locations": for each axis along which this tensor is known to
        be a concatenation, the sizes of the concatenated pieces.  ``split``
        consults the most recent concat on its axis (Table 2, note e).
    parts:
        For ``kind == TUPLE``: the element tensors' metadata.
    from_weights:
        True when the value depends only on weight tensors; such subgraphs can
        be pre-computed before inference, so the cost model treats them as
        free (paper Figure 10: "the two concat operators only involve weight
        nodes as inputs, they can be pre-computed in inference time").
    """

    kind: DataKind
    shape: TensorShape = ()
    value: object = None
    split_sizes: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    parts: Tuple["TensorData", ...] = ()
    from_weights: bool = False

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def tensor(
        shape: TensorShape,
        split_sizes: Tuple[Tuple[int, Tuple[int, ...]], ...] = (),
        from_weights: bool = False,
    ) -> "TensorData":
        return TensorData(
            kind=DataKind.TENSOR,
            shape=tuple(int(d) for d in shape),
            split_sizes=split_sizes,
            from_weights=from_weights,
        )

    @staticmethod
    def integer(value: int) -> "TensorData":
        return TensorData(kind=DataKind.INT, value=int(value))

    @staticmethod
    def string(value: str) -> "TensorData":
        return TensorData(kind=DataKind.STRING, value=str(value))

    @staticmethod
    def tuple_of(parts: Tuple["TensorData", ...]) -> "TensorData":
        return TensorData(kind=DataKind.TUPLE, parts=tuple(parts))

    @staticmethod
    def invalid(reason: str = "") -> "TensorData":
        return TensorData(kind=DataKind.INVALID, value=reason)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def is_tensor(self) -> bool:
        return self.kind == DataKind.TENSOR

    @property
    def is_valid(self) -> bool:
        return self.kind != DataKind.INVALID

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    def split_sizes_for_axis(self, axis: int) -> Optional[Tuple[int, ...]]:
        """Sizes recorded by the most recent concat along ``axis`` (if any)."""
        for ax, sizes in self.split_sizes:
            if ax == axis:
                return sizes
        return None

    def with_split(self, axis: int, sizes: Tuple[int, ...]) -> "TensorData":
        """Record that this tensor is a concatenation of ``sizes`` along ``axis``."""
        remaining = tuple((ax, sz) for ax, sz in self.split_sizes if ax != axis)
        return TensorData(
            kind=self.kind,
            shape=self.shape,
            value=self.value,
            split_sizes=((axis, tuple(int(s) for s in sizes)),) + remaining,
            parts=self.parts,
            from_weights=self.from_weights,
        )

    def with_from_weights(self, from_weights: bool) -> "TensorData":
        """Return a copy with the pre-computability flag set."""
        return TensorData(
            kind=self.kind,
            shape=self.shape,
            value=self.value,
            split_sizes=self.split_sizes,
            parts=self.parts,
            from_weights=from_weights,
        )

    def without_splits(self) -> "TensorData":
        return TensorData(
            kind=self.kind,
            shape=self.shape,
            value=self.value,
            parts=self.parts,
            from_weights=self.from_weights,
        )

    def expect_tensor(self, what: str = "operand") -> "TensorData":
        if self.kind != DataKind.TENSOR:
            raise ShapeError(f"expected a tensor for {what}, got {self.kind.value}")
        return self

    def expect_int(self, what: str = "parameter") -> int:
        if self.kind != DataKind.INT:
            raise ShapeError(f"expected an integer for {what}, got {self.kind.value}")
        return int(self.value)

    def expect_string(self, what: str = "parameter") -> str:
        if self.kind != DataKind.STRING:
            raise ShapeError(f"expected a string for {what}, got {self.kind.value}")
        return str(self.value)

    def __str__(self) -> str:
        if self.kind == DataKind.TENSOR:
            return f"T{list(self.shape)}"
        if self.kind == DataKind.TUPLE:
            return "(" + ", ".join(str(p) for p in self.parts) + ")"
        if self.kind == DataKind.INVALID:
            return f"invalid({self.value})"
        return f"{self.kind.value}:{self.value}"


# ---------------------------------------------------------------------- #
# ``name@d1 d2 ...`` identifier strings for input/weight nodes (Table 2 note h)
# ---------------------------------------------------------------------- #


def parse_identifier(identifier: str) -> Tuple[str, TensorShape]:
    """Parse a ``name@dim1 dim2 ...`` tensor identifier."""
    if "@" not in identifier:
        raise ShapeError(f"tensor identifier {identifier!r} must have the form 'name@dim1 dim2 ...'")
    name, _, dims = identifier.partition("@")
    dims = dims.strip()
    if not name:
        raise ShapeError(f"tensor identifier {identifier!r} has an empty name")
    try:
        shape = tuple(int(tok) for tok in dims.split()) if dims else ()
    except ValueError as exc:
        raise ShapeError(f"tensor identifier {identifier!r} has a malformed shape") from exc
    if any(d <= 0 for d in shape):
        raise ShapeError(f"tensor identifier {identifier!r} has non-positive dimensions")
    return name, shape


def format_identifier(name: str, shape: TensorShape) -> str:
    """Format a ``name@dim1 dim2 ...`` tensor identifier."""
    return f"{name}@{' '.join(str(int(d)) for d in shape)}"
