"""Device profiles for the analytic cost model."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "T4", "CPU_REFERENCE"]


@dataclass(frozen=True)
class DeviceProfile:
    """Roofline-style description of an accelerator.

    Attributes
    ----------
    name:
        Human-readable device name.
    peak_flops:
        Peak floating-point throughput in FLOP/s.
    memory_bandwidth:
        Peak DRAM bandwidth in bytes/s.
    kernel_launch_overhead:
        Fixed per-kernel launch cost in seconds.  This is what makes merging
        several small operators into one larger operator profitable even when
        the arithmetic work is unchanged.
    fused_activation_overhead:
        Extra seconds charged when an activation is fused into a matmul/conv
        kernel (small, but non-zero so fusion is not literally free).
    efficiency:
        Fraction of peak throughput that dense kernels actually reach.
    """

    name: str = "generic"
    peak_flops: float = 8.1e12
    memory_bandwidth: float = 300e9
    kernel_launch_overhead: float = 5e-6
    fused_activation_overhead: float = 0.5e-6
    efficiency: float = 0.55

    def compute_seconds(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations."""
        if flops <= 0:
            return 0.0
        return flops / (self.peak_flops * self.efficiency)

    def memory_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` through DRAM."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.memory_bandwidth


#: An NVIDIA-T4-like profile (FP32 peak ~8.1 TFLOP/s, ~300 GB/s GDDR6).  The
#: paper measures on a T4; only relative comparisons matter here.
T4 = DeviceProfile(
    name="nvidia-t4-like",
    peak_flops=8.1e12,
    memory_bandwidth=300e9,
    kernel_launch_overhead=5e-6,
    fused_activation_overhead=0.5e-6,
    efficiency=0.55,
)

#: A CPU-like profile used by some tests to check that cost-model choices are
#: profile-dependent (different devices can prefer different graphs).
CPU_REFERENCE = DeviceProfile(
    name="cpu-reference",
    peak_flops=2.0e11,
    memory_bandwidth=50e9,
    kernel_launch_overhead=1e-7,
    fused_activation_overhead=1e-8,
    efficiency=0.8,
)
