"""A measured cost model: times each operator on the numpy backend.

The paper's cost model uses the *measured* runtime of every operator on the
target GPU.  The closest available analogue is to execute each operator with
the numpy reference kernels and time it.  Results are cached per
``(symbol, operand shapes, parameters)`` so each distinct configuration is
measured once, exactly like TASO's operator cache.

This model is far slower than :class:`~repro.costs.model.AnalyticCostModel`
and is mainly useful for sanity checks that the analytic model ranks
operators in a reasonable order; the benchmarks default to the analytic model.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.costs.model import CostModel, INVALID_COST
from repro.ir.ops import OpKind, symbol_to_op
from repro.ir.opspec import infer_symbol
from repro.ir.tensor import DataKind, ShapeError, TensorData

__all__ = ["MeasuredCostModel"]


class MeasuredCostModel(CostModel):
    """Times operators on the numpy backend, with caching and warmup."""

    def __init__(self, repeats: int = 3, warmup: int = 1, seed: int = 0) -> None:
        self.repeats = repeats
        self.warmup = warmup
        self._rng = np.random.default_rng(seed)
        self._cache: Dict[Tuple, float] = {}

    def _cache_key(self, symbol: str, children: Sequence[TensorData]) -> Tuple:
        parts = [symbol]
        for child in children:
            if child.kind == DataKind.TENSOR:
                parts.append(("T", child.shape))
            elif child.kind == DataKind.TUPLE:
                parts.append(("TT", tuple(p.shape for p in child.parts)))
            else:
                parts.append((child.kind.value, child.value))
        return tuple(parts)

    def _random_operand(self, data: TensorData) -> object:
        if data.kind == DataKind.TENSOR:
            return self._rng.standard_normal(data.shape).astype(np.float32)
        if data.kind == DataKind.TUPLE:
            return tuple(self._random_operand(p) for p in data.parts)
        return data.value

    def op_cost(
        self,
        symbol: str,
        children: Sequence[TensorData],
        output: Optional[TensorData] = None,
    ) -> float:
        from repro.backend.kernels import execute_symbol

        op, _ = symbol_to_op(symbol)
        if not op.is_compute:
            return 0.0
        if output is None:
            try:
                output = infer_symbol(symbol, children)
            except ShapeError:
                return INVALID_COST
        if not output.is_valid:
            return INVALID_COST
        if output.kind in (DataKind.TENSOR, DataKind.TUPLE) and output.from_weights:
            return 0.0

        key = self._cache_key(symbol, children)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        operands = [self._random_operand(c) for c in children]
        try:
            for _ in range(self.warmup):
                execute_symbol(symbol, operands, children)
            start = time.perf_counter()
            for _ in range(self.repeats):
                execute_symbol(symbol, operands, children)
            elapsed_ms = (time.perf_counter() - start) / self.repeats * 1e3
        except (ShapeError, ValueError):
            elapsed_ms = INVALID_COST
        self._cache[key] = elapsed_ms
        return elapsed_ms
