"""Per-operator FLOP and byte accounting.

These functions compute the arithmetic work and memory traffic of a single
operator from its operands' metadata.  They are deliberately simple: the cost
model only needs to rank graphs consistently, not predict absolute runtimes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.ops import Activation, OpKind, symbol_to_op
from repro.ir.tensor import DataKind, TensorData

__all__ = ["op_flops", "op_bytes", "FLOAT_BYTES"]

FLOAT_BYTES = 4  # FP32


def _tensor_children(children: Sequence[TensorData]) -> list:
    return [c for c in children if c.kind == DataKind.TENSOR]


def op_flops(symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
    """Floating point operations performed by the operator."""
    op, _ = symbol_to_op(symbol)

    if op == OpKind.MATMUL:
        a, b = children[1], children[2]
        k = a.shape[-1]
        flops = 2.0 * output.num_elements * k
        if children[0].kind == DataKind.INT and children[0].value != Activation.NONE:
            flops += output.num_elements
        return flops

    if op == OpKind.CONV:
        w = children[5]
        _, c_in_per_group, kh, kw = w.shape
        flops = 2.0 * output.num_elements * c_in_per_group * kh * kw
        if children[3].kind == DataKind.INT and children[3].value != Activation.NONE:
            flops += output.num_elements
        return flops

    if op in (OpKind.EWADD, OpKind.EWMUL):
        return float(output.num_elements)

    if op in (OpKind.RELU, OpKind.TANH, OpKind.SIGMOID):
        # Transcendentals cost a few flops per element; a small constant factor
        # keeps tanh/sigmoid slightly more expensive than relu.
        factor = 1.0 if op == OpKind.RELU else 4.0
        return factor * output.num_elements

    if op in (OpKind.POOLMAX, OpKind.POOLAVG):
        kh = children[1].value if children[1].kind == DataKind.INT else 1
        kw = children[2].value if children[2].kind == DataKind.INT else 1
        return float(output.num_elements) * float(kh) * float(kw)

    # Data-movement operators perform no arithmetic.
    return 0.0


def op_bytes(symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
    """Bytes read plus bytes written by the operator."""
    op, _ = symbol_to_op(symbol)

    if op in (OpKind.NUM, OpKind.STR, OpKind.INPUT, OpKind.WEIGHT, OpKind.NOOP):
        return 0.0

    read = sum(c.num_elements for c in _tensor_children(children))
    if output.kind == DataKind.TUPLE:
        written = sum(p.num_elements for p in output.parts)
    else:
        written = output.num_elements
    return FLOAT_BYTES * float(read + written)
