"""Per-operator FLOP and byte accounting.

These functions compute the arithmetic work and memory traffic of a single
operator from its operands' metadata.  They are deliberately simple: the cost
model only needs to rank graphs consistently, not predict absolute runtimes.

The per-operator arithmetic lives on each operator's
:class:`~repro.ir.opspec.OpSpec` (its ``flops`` / ``op_bytes`` fields);
:func:`op_flops` and :func:`op_bytes` dispatch through the
:data:`~repro.ir.opspec.OPS` registry.  The original per-symbol if/elif
chains survive below as :func:`op_flops_spec` / :func:`op_bytes_spec` --
executable specifications pinned verdict-by-verdict against the registry
dispatch by ``tests/test_opspec.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.ops import Activation, OpKind, symbol_to_op
from repro.ir.opspec import FLOAT_BYTES, op_bytes, op_flops  # noqa: F401  (front door)
from repro.ir.tensor import DataKind, TensorData

__all__ = ["op_flops", "op_bytes", "op_flops_spec", "op_bytes_spec", "FLOAT_BYTES"]


def _tensor_children(children: Sequence[TensorData]) -> list:
    return [c for c in children if c.kind == DataKind.TENSOR]


def op_flops_spec(symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
    """Executable spec: the original if/elif chain for :func:`op_flops`."""
    op, _ = symbol_to_op(symbol)

    if op == OpKind.MATMUL:
        a, b = children[1], children[2]
        k = a.shape[-1]
        flops = 2.0 * output.num_elements * k
        if children[0].kind == DataKind.INT and children[0].value != Activation.NONE:
            flops += output.num_elements
        return flops

    if op == OpKind.CONV:
        w = children[5]
        _, c_in_per_group, kh, kw = w.shape
        flops = 2.0 * output.num_elements * c_in_per_group * kh * kw
        if children[3].kind == DataKind.INT and children[3].value != Activation.NONE:
            flops += output.num_elements
        return flops

    if op in (OpKind.EWADD, OpKind.EWMUL):
        return float(output.num_elements)

    if op in (OpKind.RELU, OpKind.TANH, OpKind.SIGMOID):
        # Transcendentals cost a few flops per element; a small constant factor
        # keeps tanh/sigmoid slightly more expensive than relu.
        factor = 1.0 if op == OpKind.RELU else 4.0
        return factor * output.num_elements

    if op in (OpKind.POOLMAX, OpKind.POOLAVG):
        kh = children[1].value if children[1].kind == DataKind.INT else 1
        kw = children[2].value if children[2].kind == DataKind.INT else 1
        return float(output.num_elements) * float(kh) * float(kw)

    # Data-movement operators perform no arithmetic.
    return 0.0


def op_bytes_spec(symbol: str, children: Sequence[TensorData], output: TensorData) -> float:
    """Executable spec: the original if/elif chain for :func:`op_bytes`."""
    op, _ = symbol_to_op(symbol)

    if op in (OpKind.NUM, OpKind.STR, OpKind.INPUT, OpKind.WEIGHT, OpKind.NOOP):
        return 0.0

    read = sum(c.num_elements for c in _tensor_children(children))
    if output.kind == DataKind.TUPLE:
        written = sum(p.num_elements for p in output.parts)
    else:
        written = output.num_elements
    return FLOAT_BYTES * float(read + written)
