"""Operator cost models.

The paper's cost model is additive and per-operator: "Each operator has a
separate and independent cost, which is the measured runtime of that operator
... on hardware.  The total cost of a graph is the sum of costs of each of its
nodes" (Section 5).  Without the paper's NVIDIA T4 + cuDNN measurement
backend, this package provides:

* :class:`~repro.costs.model.AnalyticCostModel` -- a roofline-style device
  model (FLOPs / memory traffic / kernel launch overhead) parameterised by a
  :class:`~repro.costs.device.DeviceProfile` (default: T4-like numbers),
* :class:`~repro.costs.model.TableCostModel` -- explicit per-operator costs
  for tests,
* :class:`~repro.costs.measure.MeasuredCostModel` -- actually times each
  operator with the numpy backend (slow; closest analogue of the paper's
  measured model).

All models share the :class:`~repro.costs.model.CostModel` interface and are
deterministic, which is what the who-wins comparisons in the benchmarks rely
on.
"""

from repro.costs.device import DeviceProfile
from repro.costs.flops import op_bytes, op_flops
from repro.costs.model import AnalyticCostModel, CostModel, TableCostModel
from repro.costs.measure import MeasuredCostModel

__all__ = [
    "DeviceProfile",
    "CostModel",
    "AnalyticCostModel",
    "TableCostModel",
    "MeasuredCostModel",
    "op_flops",
    "op_bytes",
]
