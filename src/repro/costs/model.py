"""Cost model interface and the analytic (roofline) implementation.

A cost model assigns each operator instance an independent cost (paper
Section 5); the cost of a graph is the sum over its nodes, and the cost of a
candidate e-node during extraction is computed from the analysis data of its
children e-classes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.costs.device import DeviceProfile, T4
from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode
from repro.ir.ops import OpKind
from repro.ir.opspec import OPS, infer_symbol, op_bytes, op_flops
from repro.ir.tensor import DataKind, ShapeError, TensorData

__all__ = ["CostModel", "AnalyticCostModel", "TableCostModel", "INVALID_COST"]

#: Cost assigned to e-nodes whose operands are shape-invalid; large enough
#: that extraction never selects them, finite so the ILP stays well-scaled.
INVALID_COST = 1e6


class CostModel:
    """Interface shared by all cost models.  Costs are in milliseconds."""

    def op_cost(
        self,
        symbol: str,
        children: Sequence[TensorData],
        output: Optional[TensorData] = None,
    ) -> float:
        """Cost of one operator instance given operand / result metadata."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Adapters
    # ------------------------------------------------------------------ #

    def enode_cost(self, enode: ENode, egraph: EGraph) -> float:
        """Cost of an e-node, reading operand metadata from the e-class analysis."""
        children = [egraph.analysis_data(c) for c in enode.children]
        if any(c is None for c in children):
            return INVALID_COST
        try:
            output = infer_symbol(enode.op, children)
        except ShapeError:
            return INVALID_COST
        if not output.is_valid:
            return INVALID_COST
        return self.op_cost(enode.op, children, output)

    def extraction_cost_function(self):
        """The ``node_cost`` callable expected by the extractors."""
        return lambda enode, egraph: self.enode_cost(enode, egraph)

    def graph_cost(self, graph) -> float:
        """Total cost of a :class:`~repro.ir.graph.TensorGraph`."""
        return graph.total_cost(self)


class AnalyticCostModel(CostModel):
    """Roofline-style analytic model over a :class:`DeviceProfile`.

    The cost of a kernel is::

        launch_overhead + max(flops / effective_peak, bytes / bandwidth)

    with two TASO/TENSAT-specific refinements:

    * operators whose operands all derive from weights are free -- they can be
      pre-computed once before inference (paper Figure 10),
    * ``split`` and its projections are free: they are metadata-only views in
      TASO's runtime, which is what makes the concat/split merge rewrites
      profitable.
    """

    #: Operators that never cost anything at inference time.
    FREE_OPS = {
        OpKind.NUM,
        OpKind.STR,
        OpKind.INPUT,
        OpKind.WEIGHT,
        OpKind.NOOP,
        OpKind.SPLIT,
        OpKind.SPLIT0,
        OpKind.SPLIT1,
        OpKind.RESHAPE,
    }

    def __init__(self, device: DeviceProfile = T4) -> None:
        self.device = device

    def op_cost(
        self,
        symbol: str,
        children: Sequence[TensorData],
        output: Optional[TensorData] = None,
    ) -> float:
        spec = OPS.for_symbol(symbol)
        if spec is None:  # literal symbols (num/str payloads) are free
            return 0.0
        op = spec.kind
        if op in self.FREE_OPS:
            return 0.0
        if output is None:
            output = infer_symbol(symbol, children)
        if not output.is_valid:
            return INVALID_COST
        # Weight-only subgraphs are pre-computed before inference.
        if output.kind in (DataKind.TENSOR, DataKind.TUPLE) and output.from_weights:
            return 0.0

        flops = op_flops(symbol, children, output)
        nbytes = op_bytes(symbol, children, output)
        seconds = self.device.kernel_launch_overhead + max(
            self.device.compute_seconds(flops), self.device.memory_seconds(nbytes)
        )
        if op in (OpKind.MATMUL, OpKind.CONV):
            act_index = 0 if op == OpKind.MATMUL else 3
            act = children[act_index]
            if act.kind == DataKind.INT and act.value != 0:
                seconds += self.device.fused_activation_overhead
        return seconds * 1e3  # milliseconds


class TableCostModel(CostModel):
    """Cost model with explicit per-symbol costs; unknown symbols fall back.

    Useful in unit tests where exact, easily-reasoned-about costs are needed.
    """

    def __init__(
        self,
        table: Dict[str, float],
        default: float = 0.0,
        fallback: Optional[CostModel] = None,
    ) -> None:
        self.table = dict(table)
        self.default = default
        self.fallback = fallback

    def op_cost(
        self,
        symbol: str,
        children: Sequence[TensorData],
        output: Optional[TensorData] = None,
    ) -> float:
        if symbol in self.table:
            return self.table[symbol]
        if self.fallback is not None:
            return self.fallback.op_cost(symbol, children, output)
        spec = OPS.for_symbol(symbol)
        if spec is None or not spec.is_compute:
            return 0.0
        return self.default
