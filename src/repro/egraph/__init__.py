"""E-graph / equality saturation substrate.

This subpackage is a from-scratch Python implementation of the machinery the
paper builds on top of ``egg`` (Willsey et al., 2020):

* :mod:`repro.egraph.unionfind`    -- disjoint-set forest.
* :mod:`repro.egraph.language`     -- e-nodes and recursive expressions (terms).
* :mod:`repro.egraph.egraph`       -- the e-graph itself (hash-consing, congruence closure,
  e-class analyses).
* :mod:`repro.egraph.pattern`      -- patterns with variables, parsed from S-expressions.
* :mod:`repro.egraph.ematch`       -- e-matching (pattern search over an e-graph).
* :mod:`repro.egraph.machine`      -- the compiled e-matching virtual machine and
  incremental (iteration-delta) search; see ``docs/ematching.md``.
* :mod:`repro.egraph.checkcache`   -- memoized shape/condition checking with
  generation invalidation; see ``docs/apply_plan.md``.
* :mod:`repro.egraph.rewrite`      -- single-pattern rewrite rules.
* :mod:`repro.egraph.multipattern` -- multi-pattern rewrite rules (paper Algorithm 1).
* :mod:`repro.egraph.applier`      -- batched apply plans (dedup, bulk add, queued
  unions, one rebuild per phase); see ``docs/apply_plan.md``.
* :mod:`repro.egraph.scheduler`    -- rule scheduling strategies (simple, backoff).
* :mod:`repro.egraph.runner`       -- the search -> schedule -> plan -> apply -> rebuild
  saturation pipeline with limits and cycle filtering.
* :mod:`repro.egraph.cycles`       -- vanilla and efficient cycle filtering (paper Algorithm 2).
* :mod:`repro.egraph.extraction`   -- greedy and ILP extraction.
"""

from repro.egraph.applier import ApplyPlan, ApplyStats
from repro.egraph.checkcache import (
    ConditionChecker,
    DirectConditionChecker,
    MemoizedConditionChecker,
)
from repro.egraph.egraph import EClass, EGraph
from repro.egraph.language import ENode, RecExpr
from repro.egraph.machine import (
    IncrementalMatcher,
    Program,
    RuleTrie,
    TrieMatcher,
    build_rule_trie,
    compile_pattern,
)
from repro.egraph.pattern import Pattern, PatternNode, PatternVar
from repro.egraph.rewrite import Rewrite
from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.runner import Runner, RunnerLimits, RunnerReport, StopReason
from repro.egraph.scheduler import BackoffScheduler, Scheduler, SimpleScheduler, make_scheduler
from repro.egraph.unionfind import UnionFind

__all__ = [
    "ApplyPlan",
    "ApplyStats",
    "ConditionChecker",
    "DirectConditionChecker",
    "MemoizedConditionChecker",
    "EClass",
    "EGraph",
    "ENode",
    "IncrementalMatcher",
    "Program",
    "RuleTrie",
    "TrieMatcher",
    "build_rule_trie",
    "compile_pattern",
    "RecExpr",
    "Pattern",
    "PatternNode",
    "PatternVar",
    "Rewrite",
    "MultiPatternRewrite",
    "Runner",
    "RunnerLimits",
    "RunnerReport",
    "StopReason",
    "Scheduler",
    "SimpleScheduler",
    "BackoffScheduler",
    "make_scheduler",
    "UnionFind",
]
