"""Cycle handling for extraction (paper Section 5.2).

Valid rewrites can introduce cycles at the e-class level (paper Figure 3):
an e-node in e-class ``m`` may (transitively) have ``m`` itself among its
children e-classes.  The extracted graph must be a DAG, so TENSAT either

* encodes acyclicity in the ILP via topological-order variables (slow), or
* keeps the e-graph free of such cycles during exploration so the ILP does
  not need cycle constraints.

This module implements both cycle-filtering strategies from the paper:

* **Vanilla**: before applying each substitution, run a fresh reachability
  pass over the whole e-graph and discard the substitution if it would create
  a cycle -- ``O(n_m * N)`` per iteration.
* **Efficient** (Algorithm 2): build one descendants map per iteration and use
  it as a constant-time *pre-filter* per match; since the map goes stale
  within the iteration, a *post-processing* DFS pass collects the cycles that
  slipped through and resolves each by adding its most recently inserted
  e-node to a *filter list*.  Filtered nodes are treated as removed: the
  descendants map, the DFS, and extraction all ignore them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode

__all__ = [
    "FilterList",
    "descendants_map",
    "would_create_cycle",
    "reaches",
    "find_cycles",
    "resolve_cycles",
    "CycleFilter",
    "VanillaCycleFilter",
    "EfficientCycleFilter",
]


class FilterList:
    """Set of e-nodes considered removed from the e-graph.

    Nodes are stored canonicalized against the current union-find; membership
    checks re-canonicalise so the list stays valid across unions.
    """

    def __init__(self) -> None:
        self._nodes: Set[ENode] = set()

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def add(self, egraph: EGraph, enode: ENode) -> None:
        self._nodes.add(egraph.canonicalize(enode))

    def contains(self, egraph: EGraph, enode: ENode) -> bool:
        if not self._nodes:
            return False
        canonical = egraph.canonicalize(enode)
        if canonical in self._nodes:
            return True
        # Entries may have been inserted before later unions; re-canonicalise lazily.
        stale = {n for n in self._nodes if egraph.canonicalize(n) == canonical}
        if stale:
            self._nodes -= stale
            self._nodes.add(canonical)
            return True
        return False

    def refresh(self, egraph: EGraph) -> None:
        """Re-canonicalise all entries (cheap; called once per iteration)."""
        self._nodes = {egraph.canonicalize(n) for n in self._nodes}

    def as_set(self, egraph: EGraph) -> FrozenSet[ENode]:
        self.refresh(egraph)
        return frozenset(self._nodes)


# ---------------------------------------------------------------------- #
# Reachability
# ---------------------------------------------------------------------- #


def _children_of_class(egraph: EGraph, eclass_id: int, filtered: FrozenSet[ENode]) -> Set[int]:
    children: Set[int] = set()
    for node in egraph[eclass_id].nodes:
        canonical = egraph.canonicalize(node)
        if filtered and canonical in filtered:
            continue
        # canonicalize() already mapped every child through find().
        children.update(canonical.children)
    return children


def descendants_map(
    egraph: EGraph, filter_list: Optional[FilterList] = None
) -> Dict[int, Set[int]]:
    """Map every e-class to the set of e-classes reachable through unfiltered e-nodes.

    One pass over the e-graph (iterative DFS with memoisation).  If the
    e-graph happens to contain cycles (possible mid-iteration before the
    post-processing step has run), reachability is still well defined; nodes
    on a cycle simply see each other as descendants as far as the already
    finished portion of the traversal allows, which keeps the pre-filter a
    sound approximation exactly as the paper describes.
    """
    filtered = filter_list.as_set(egraph) if filter_list is not None else frozenset()
    desc: Dict[int, Set[int]] = {}
    state: Dict[int, int] = {}  # 0 = unvisited, 1 = on stack, 2 = done

    for start in egraph.eclass_ids():
        start = egraph.find(start)
        if state.get(start, 0) == 2:
            continue
        stack: List[Tuple[int, Iterable[int]]] = [(start, iter(_children_of_class(egraph, start, filtered)))]
        state[start] = 1
        desc.setdefault(start, set())
        while stack:
            cls, it = stack[-1]
            advanced = False
            for child in it:
                desc[cls].add(child)
                child_state = state.get(child, 0)
                if child_state == 0:
                    state[child] = 1
                    desc.setdefault(child, set())
                    stack.append((child, iter(_children_of_class(egraph, child, filtered))))
                    advanced = True
                    break
                if child_state == 2:
                    desc[cls] |= desc[child]
                # child on stack (cycle): skip, handled by post-processing
            if not advanced:
                state[cls] = 2
                stack.pop()
                if stack:
                    parent = stack[-1][0]
                    desc[parent].add(cls)
                    desc[parent] |= desc[cls]
    return desc


def reaches(
    egraph: EGraph,
    source: int,
    target: int,
    filter_list: Optional[FilterList] = None,
) -> bool:
    """Fresh DFS: is ``target`` reachable from ``source`` (parent-to-child direction)?"""
    filtered = filter_list.as_set(egraph) if filter_list is not None else frozenset()
    source, target = egraph.find(source), egraph.find(target)
    if source == target:
        return True
    seen: Set[int] = {source}
    stack: List[int] = [source]
    while stack:
        cls = stack.pop()
        for child in _children_of_class(egraph, cls, filtered):
            if child == target:
                return True
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return False


def would_create_cycle(
    egraph: EGraph,
    matched_eclasses: Sequence[int],
    leaf_eclasses: Sequence[int],
    desc: Dict[int, Set[int]],
) -> bool:
    """Pre-filter check (Algorithm 2, ``WillCreateCycle``).

    Applying a rewrite adds, to each matched e-class ``m``, a new sub-term
    whose leaves are the e-classes the substitution binds.  If some leaf ``s``
    can already reach ``m``, then after the rewrite ``m`` reaches ``s`` too and
    a cycle appears.  Sound but not complete: relations added earlier in the
    same iteration are not in ``desc`` (the paper handles those in the
    post-processing step).
    """
    for m in matched_eclasses:
        m = egraph.find(m)
        for leaf in leaf_eclasses:
            leaf = egraph.find(leaf)
            if leaf == m or m in desc.get(leaf, ()):
                return True
    return False


# ---------------------------------------------------------------------- #
# Post-processing: find and resolve cycles
# ---------------------------------------------------------------------- #


def find_cycles(
    egraph: EGraph, filter_list: Optional[FilterList] = None
) -> List[List[Tuple[int, ENode]]]:
    """One DFS pass over the e-graph collecting e-class-level cycles.

    Each cycle is returned as a list of ``(eclass_id, enode)`` edges, where
    ``enode`` belongs to ``eclass_id`` and has the next e-class on the cycle
    among its children.  A single pass may return many (possibly overlapping)
    cycles; the caller loops until a pass finds none.
    """
    filtered = filter_list.as_set(egraph) if filter_list is not None else frozenset()
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    cycles: List[List[Tuple[int, ENode]]] = []

    def class_edges(cls: int) -> List[Tuple[ENode, int]]:
        edges: List[Tuple[ENode, int]] = []
        seen_edges = set()
        for node in egraph[cls].nodes:
            canonical = egraph.canonicalize(node)
            if filtered and canonical in filtered:
                continue
            # canonicalize() already mapped every child through find().
            for child in canonical.children:
                key = (canonical, child)
                if key not in seen_edges:
                    seen_edges.add(key)
                    edges.append(key)
        return edges

    # Explicit-stack DFS.  ``path_edges`` holds the (class, enode) edges taken
    # from the DFS root down to the class currently being expanded, and
    # ``path_index`` maps each gray class to its position on that path so a
    # back edge can be turned into the list of edges forming the cycle.
    for start in egraph.eclass_ids():
        start = egraph.find(start)
        if color.get(start, WHITE) != WHITE:
            continue
        color[start] = GRAY
        path_edges: List[Tuple[int, ENode]] = []
        path_index: Dict[int, int] = {start: 0}
        # Stack frames: (class, iterator over its edges)
        frames: List[Tuple[int, Iterable[Tuple[ENode, int]]]] = [(start, iter(class_edges(start)))]
        while frames:
            cls, edge_iter = frames[-1]
            descended = False
            for enode, child in edge_iter:
                child_color = color.get(child, WHITE)
                if child_color == GRAY:
                    # Back edge -> cycle from ``child`` down to ``cls`` plus this edge.
                    start_pos = path_index[child]
                    cycle = path_edges[start_pos:] + [(cls, enode)]
                    cycles.append(cycle)
                elif child_color == WHITE:
                    color[child] = GRAY
                    path_edges.append((cls, enode))
                    path_index[child] = len(path_edges)
                    frames.append((child, iter(class_edges(child))))
                    descended = True
                    break
            if not descended:
                color[cls] = BLACK
                frames.pop()
                if path_edges and frames:
                    path_edges.pop()
                path_index.pop(cls, None)
    return cycles


def resolve_cycles(
    egraph: EGraph,
    filter_list: FilterList,
    cycles: Sequence[List[Tuple[int, ENode]]],
) -> int:
    """Resolve each cycle by filtering out its most recently added e-node."""
    resolved = 0
    for cycle in cycles:
        if not cycle:
            continue
        # Skip cycles already broken by an earlier resolution in this batch.
        if any(filter_list.contains(egraph, enode) for _, enode in cycle):
            continue
        newest = max(cycle, key=lambda entry: egraph.node_birth(entry[1]))
        filter_list.add(egraph, newest[1])
        resolved += 1
    return resolved


# ---------------------------------------------------------------------- #
# Strategy objects used by the Runner
# ---------------------------------------------------------------------- #


@dataclass
class CycleFilter:
    """Interface for cycle-filtering strategies plugged into the exploration loop."""

    filter_list: FilterList = field(default_factory=FilterList)

    def begin_iteration(self, egraph: EGraph) -> None:
        """Called once at the start of every exploration iteration."""

    def allows(self, egraph: EGraph, matched_eclasses: Sequence[int], leaf_eclasses: Sequence[int]) -> bool:
        """Per-match check run just before a substitution is applied."""
        return True

    def end_iteration(self, egraph: EGraph) -> int:
        """Called after all substitutions of an iteration; returns #cycles resolved."""
        return 0

    @property
    def name(self) -> str:
        return type(self).__name__


class NoCycleFilter(CycleFilter):
    """Disable filtering entirely (used with ILP cycle constraints)."""


class VanillaCycleFilter(CycleFilter):
    """Full reachability pass per candidate substitution (paper Section 5.2, vanilla)."""

    def allows(self, egraph: EGraph, matched_eclasses: Sequence[int], leaf_eclasses: Sequence[int]) -> bool:
        for m in matched_eclasses:
            for leaf in leaf_eclasses:
                if reaches(egraph, leaf, m, self.filter_list):
                    return False
        return True

    def end_iteration(self, egraph: EGraph) -> int:
        # The per-match check is complete w.r.t. the state it saw, but checks
        # within one iteration still interleave with applications, so a
        # clean-up pass keeps the invariant (and mirrors Algorithm 2's loop).
        return _postprocess(egraph, self.filter_list)


class EfficientCycleFilter(CycleFilter):
    """Descendants-map pre-filter + DFS post-processing (paper Algorithm 2)."""

    def __init__(self) -> None:
        super().__init__()
        self._descendants: Dict[int, Set[int]] = {}

    def begin_iteration(self, egraph: EGraph) -> None:
        self.filter_list.refresh(egraph)
        self._descendants = descendants_map(egraph, self.filter_list)

    def allows(self, egraph: EGraph, matched_eclasses: Sequence[int], leaf_eclasses: Sequence[int]) -> bool:
        return not would_create_cycle(egraph, matched_eclasses, leaf_eclasses, self._descendants)

    def end_iteration(self, egraph: EGraph) -> int:
        return _postprocess(egraph, self.filter_list)


def _postprocess(egraph: EGraph, filter_list: FilterList) -> int:
    """Loop DFS passes until the e-graph (minus filtered nodes) is acyclic."""
    total = 0
    while True:
        cycles = find_cycles(egraph, filter_list)
        if not cycles:
            return total
        resolved = resolve_cycles(egraph, filter_list, cycles)
        if resolved == 0:
            # Every remaining cycle was already broken; re-check on next pass.
            resolved_extra = 0
            for cycle in cycles:
                if not any(filter_list.contains(egraph, enode) for _, enode in cycle):
                    newest = max(cycle, key=lambda entry: egraph.node_birth(entry[1]))
                    filter_list.add(egraph, newest[1])
                    resolved_extra += 1
            if resolved_extra == 0:
                return total
            total += resolved_extra
        else:
            total += resolved
