"""E-class shape analysis: precomputed, interned tensor facts per e-class.

The shape-checking preconditions of rewrite rules (paper Section 4) and the
cost model (Section 6) both need tensor metadata for arbitrary e-classes.
Before this module the metadata existed per e-class but every condition
check re-derived facts for the *target* pattern's operator spine from
scratch, which made condition checking dominate nasrnn exploration time
(see ``benchmarks/results/bench_ematch.json``).  The fix is the standard
e-class-analysis pattern (egg, Willsey et al. 2020) taken to its
conclusion:

* :class:`TensorShapeAnalysis` computes each e-class's
  :class:`~repro.ir.tensor.TensorData` once -- ``make`` runs
  :func:`~repro.ir.shapes.infer_symbol` on the children's facts, ``merge``
  combines the facts of unioned classes with conflict detection -- and the
  e-graph's rebuild keeps the facts at their make/merge fixpoint.
* every fact is **interned** (:func:`intern_data`): structurally equal
  :class:`TensorData` values are represented by one canonical object, so
  equality checks are pointer comparisons and facts can key memo tables by
  ``id()``.  The intern table is module-level and never pruned, so an
  interned object's ``id`` is stable for the life of the process (ids of
  dead objects can be reused by the allocator; interned facts never die).

:mod:`repro.rules.conditions` builds on both properties: target patterns
compile into flat programs whose variable leaves read
``egraph.analysis_data`` directly and whose operator steps memoize
``infer_symbol`` results keyed on the interned children facts -- across
candidate bindings, iterations, and e-graphs, because inference is a pure
function of the children facts.

The analysis must uphold one contract for that fast path to be sound:
**every fact it stores into an e-class is interned** (``make``, ``merge``
and the seeding in ``EGraph.add`` all return interned objects).  An
analysis advertising :attr:`TensorShapeAnalysis.compiled_conditions` makes
that promise; the condition compiler falls back to the on-demand inference
spec path for any other analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.egraph.analysis import Analysis
from repro.ir.opspec import infer_symbol
from repro.ir.tensor import DataKind, ShapeError, TensorData

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.egraph.egraph import EGraph
    from repro.egraph.language import ENode

__all__ = ["TensorShapeAnalysis", "intern_data", "intern_table_size"]


# Module-level (process-lifetime) intern table.  TensorData is a frozen,
# hashable-by-value dataclass, so structural equality picks the canonical
# representative.  Entries are never evicted: the compiled condition
# programs key memo tables on id(fact), which is only collision-free while
# every keyed object stays alive.
_INTERN: Dict[TensorData, TensorData] = {}


def intern_data(data: TensorData) -> TensorData:
    """Return the canonical object for ``data`` (pointer-comparable facts).

    Tuple facts intern their parts too, so the parts of two equal tuples
    are pointer-equal as well (``split`` conditions compare parts).
    """
    canonical = _INTERN.get(data)
    if canonical is not None:
        return canonical
    if data.parts:
        data = TensorData(
            kind=data.kind,
            shape=data.shape,
            value=data.value,
            split_sizes=data.split_sizes,
            parts=tuple(intern_data(p) for p in data.parts),
            from_weights=data.from_weights,
        )
        canonical = _INTERN.get(data)
        if canonical is not None:
            return canonical
    _INTERN[data] = data
    return data


def intern_table_size() -> int:
    """Number of distinct facts interned so far (monitoring / tests)."""
    return len(_INTERN)


class TensorShapeAnalysis(Analysis):
    """E-class analysis carrying interned tensor metadata per e-class.

    ``make`` runs shape inference for each new e-node; when the operands
    are incompatible the e-node's data is marked invalid (rewrite
    conditions prevent such nodes from being added in the first place, and
    the cost model assigns them an effectively infinite cost so they are
    never extracted).

    ``merge`` prefers valid data over invalid data and unions
    split-location records.  Two valid tensors that disagree on shape are a
    *conflict* -- equivalent tensors must agree on shape -- which is
    counted (:attr:`n_conflicts`, :attr:`last_conflict`) and, in ``strict``
    mode, raised as :class:`~repro.ir.tensor.ShapeError`; otherwise the
    surviving class's data wins deterministically.

    Parameters
    ----------
    strict:
        Raise on shape conflicts instead of recording them.
    compiled_conditions:
        Advertise the interned facts to :mod:`repro.rules.conditions`: when
        True (the default) ``targets_shape_valid`` runs its compiled flat
        programs over the per-class facts; when False conditions take the
        on-demand inference path (the executable spec, the
        ``shape_analysis="off"`` config setting).  The facts themselves are
        maintained identically either way.
    """

    def __init__(self, strict: bool = False, compiled_conditions: bool = True) -> None:
        self.strict = strict
        #: Consulted by the condition compiler and the runner's
        #: ``condition_cache="auto"`` resolution.
        self.compiled_conditions = compiled_conditions
        #: Number of valid-vs-valid shape disagreements seen by ``merge``.
        self.n_conflicts = 0
        #: The most recent conflicting pair ``(kept, discarded)``.
        self.last_conflict: Optional[Tuple[TensorData, TensorData]] = None

    def make(self, egraph: "EGraph", enode: "ENode") -> TensorData:
        children = [egraph.analysis_data(c) for c in enode.children]
        if any(child is None for child in children):
            return intern_data(TensorData.invalid("missing child analysis data"))
        try:
            return intern_data(infer_symbol(enode.op, children))
        except ShapeError as exc:
            return intern_data(TensorData.invalid(str(exc)))

    def merge(self, a: TensorData, b: TensorData) -> Tuple[TensorData, bool]:
        if a is None:
            return (b if b is None else intern_data(b)), True
        if b is None:
            return intern_data(a), False
        a, b = intern_data(a), intern_data(b)
        if not a.is_valid and b.is_valid:
            return b, True
        if not b.is_valid or not a.is_valid:
            return a, False
        if a.kind == DataKind.TENSOR and b.kind == DataKind.TENSOR:
            if a.shape != b.shape:
                if self.strict:
                    raise ShapeError(
                        f"merging e-classes with different shapes: {a.shape} vs {b.shape}"
                    )
                self.n_conflicts += 1
                self.last_conflict = (a, b)
                return a, False
            # Union split-location records, keeping a's entries on conflict.
            merged = a
            known_axes = {ax for ax, _ in a.split_sizes}
            changed = False
            for ax, sizes in b.split_sizes:
                if ax not in known_axes:
                    merged = merged.with_split(ax, sizes)
                    changed = True
            if changed:
                merged = intern_data(merged)
            return merged, changed
        return a, False
