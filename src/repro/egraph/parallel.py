"""Parallel sharded search: fan the trie bucket sweep out across workers.

The saturation pipeline freezes the e-graph for the whole search phase (PR 2)
and the shared-prefix rule trie is bucketed by root operator
(:mod:`repro.egraph.machine`), so per-op-bucket search is embarrassingly
parallel: no bucket reads another bucket's output, every rule lives in
exactly one bucket, and each rule's final match list is *sorted* with
:func:`~repro.egraph.machine.match_sort_key` before anyone consumes it.
Sharding therefore cannot change results -- any partition of the buckets
produces the same per-rule match multiset, and the deterministic sort
normalises arrival order (the determinism argument in ``docs/parallel.md``).

This module provides the three pieces the runner composes:

* :func:`plan_shards` -- cost-weighted assignment of op buckets to ``jobs``
  workers (greedy longest-processing-time over per-bucket candidate counts).
* :class:`EGraphSnapshot` -- a picklable read-only view of a frozen e-graph,
  exactly the surface the trie sweep touches (``find`` / node lists /
  hash-cons ``lookup``), shipped to process workers each iteration.
* The executors -- :class:`SerialSearchExecutor` (run shards inline, the
  determinism fixture), :class:`ThreadSearchExecutor` (shared e-graph, no
  snapshot; bounded by the GIL on CPython but free on GIL-less builds), and
  :class:`ProcessSearchExecutor` (true multi-core: workers rebuild the trie
  from the pickled patterns once, then receive a snapshot per iteration) --
  all behind the :data:`repro.core.registry.SEARCH_EXECUTORS` registry and
  the ``search_jobs`` / ``search_executor`` config knobs.

Trade-offs (see ``docs/parallel.md``): threads pay nothing to ship state but
only overlap on interpreters without a GIL; processes pay one snapshot
pickle/unpickle per worker per iteration and win once bucket sweep time
dominates that; serial pays nothing and wins on one core.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.egraph.language import ENode

__all__ = [
    "ConfigError",
    "EGraphSnapshot",
    "ProcessSearchExecutor",
    "SerialSearchExecutor",
    "ShardStats",
    "ThreadSearchExecutor",
    "ensure_picklable",
    "plan_shards",
]


class ConfigError(ValueError):
    """A configuration combination that cannot run as requested.

    Raised instead of letting the underlying failure (a deep pickle
    traceback, a silently-serial pool) surface later: the message names the
    offending knob or component and what to change.
    """


def ensure_picklable(components: Mapping[str, object], context: str) -> None:
    """Raise :class:`ConfigError` naming the first unpicklable component.

    Process-based execution ships state across process boundaries with
    pickle; a user-registered component holding a lambda or an open handle
    would otherwise die with a traceback deep inside the pool machinery,
    far from the configuration that caused it.
    """
    for name, value in components.items():
        try:
            pickle.dumps(value)
        except Exception as exc:
            raise ConfigError(
                f"{context} requires picklable components, but {name} "
                f"({type(value).__name__}) is not picklable: {exc}"
            ) from exc


# --------------------------------------------------------------------- #
# Shard planning
# --------------------------------------------------------------------- #


def plan_shards(weights: Mapping[str, float], n_shards: int) -> List[List[str]]:
    """Partition bucket keys into ``n_shards`` load-balanced groups.

    Greedy longest-processing-time assignment: keys are taken heaviest first
    (ties broken by key, so the plan is deterministic) and each lands on the
    currently lightest shard (ties broken by shard index).  Every key appears
    in exactly one shard -- no drops, no duplicates -- which is all
    correctness needs; the balance is a 4/3-approximation, plenty for bucket
    weights that are only an estimate anyway.

    The runner weights each bucket by its candidate count
    (``len(classes_with_op(op))`` scaled by the bucket's instruction count),
    but the planner is policy-free: any non-negative weights work.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards: List[List[str]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    for key in sorted(weights, key=lambda k: (-weights[k], k)):
        lightest = min(range(n_shards), key=lambda i: (loads[i], i))
        shards[lightest].append(key)
        loads[lightest] += weights[key]
    return shards


@dataclass
class ShardStats:
    """One shard's share of a search phase: size and wall time."""

    shard: int
    n_buckets: int
    n_candidates: int
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "buckets": self.n_buckets,
            "candidates": self.n_candidates,
            "seconds": round(self.seconds, 6),
        }


# --------------------------------------------------------------------- #
# Picklable frozen e-graph view (process executor)
# --------------------------------------------------------------------- #


class _SnapshotClass:
    """The slice of an e-class the bucket sweep reads: its node list."""

    __slots__ = ("nodes",)

    def __init__(self, nodes: List[ENode]) -> None:
        self.nodes = nodes

    def __getstate__(self):
        return self.nodes

    def __setstate__(self, nodes) -> None:
        self.nodes = nodes


class EGraphSnapshot:
    """A read-only, picklable view of an e-graph frozen for search.

    Captures exactly what :func:`repro.egraph.machine.trie_search_classes`
    touches -- the canonical-id mapping, each class's node list, and the
    hash-cons memo for ground-term lookups -- and none of what it does not:
    no analysis data (condition checks run on the driver), no parent lists
    (delta closures are computed on the driver, which has the live graph),
    no union-find internals.  That keeps the per-iteration pickle payload
    minimal and makes process search independent of whether user-registered
    analyses are picklable.
    """

    __slots__ = ("_finds", "_classes", "_memo", "_clean")

    def __init__(
        self,
        finds: List[int],
        classes: Dict[int, _SnapshotClass],
        memo: Dict[ENode, int],
        clean: bool,
    ) -> None:
        self._finds = finds
        self._classes = classes
        self._memo = memo
        self._clean = clean

    @classmethod
    def freeze(cls, egraph) -> "EGraphSnapshot":
        """Snapshot ``egraph`` as it stands (the search phase never mutates it)."""
        finds = [egraph.find(i) for i in range(len(egraph._uf))]
        classes = {c.id: _SnapshotClass(c.nodes) for c in egraph.classes()}
        return cls(finds, classes, dict(egraph._memo), egraph.is_clean())

    # -- the read-only EGraph surface the trie sweep uses ---------------- #

    def find(self, eclass_id: int) -> int:
        return self._finds[eclass_id]

    def __getitem__(self, eclass_id: int) -> _SnapshotClass:
        return self._classes[self._finds[eclass_id]]

    def lookup(self, enode: ENode) -> Optional[int]:
        finds = self._finds
        if enode.children:
            enode = ENode(enode.op, tuple(finds[c] for c in enode.children))
        found = self._memo.get(enode)
        return None if found is None else finds[found]

    def is_clean(self) -> bool:
        return self._clean

    def __getstate__(self):
        return (self._finds, self._classes, self._memo, self._clean)

    def __setstate__(self, state) -> None:
        self._finds, self._classes, self._memo, self._clean = state


# --------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------- #

#: One shard's work order: ``(op, sorted candidate e-class ids)`` pairs.
ShardWork = List[Tuple[str, List[int]]]


def _sweep_shard(egraph, trie, work: ShardWork) -> Dict[int, list]:
    """Sweep one shard's buckets; the unit of work every executor runs."""
    from repro.egraph.machine import sweep_trie_buckets

    return sweep_trie_buckets(egraph, trie, work)


class _SearchExecutorBase:
    """Shared shape of the search executors.

    ``run(matcher, egraph, op_candidates)`` plans the shards, sweeps them,
    and returns the per-shard partial results as ``rule_id -> match list``
    dicts, in shard order.  Per-shard wall times land in :attr:`last_shards`
    for the stats spine.  Executors hold pool resources; :meth:`close` is
    idempotent and the runner calls it as soon as exploration stops.
    """

    kind = "base"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("search executor needs jobs >= 1")
        self.jobs = jobs
        self.last_shards: List[ShardStats] = []

    def prepare(self, patterns: Sequence[object]) -> None:
        """Preflight hook; process executors validate picklability here."""

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- shared planning ------------------------------------------------- #

    def _plan(self, matcher, op_candidates: Mapping[str, List[int]]) -> List[ShardWork]:
        buckets = matcher.trie.buckets
        weights = {
            op: len(cands) * max(1, buckets[op].n_insts)
            for op, cands in op_candidates.items()
        }
        plan = plan_shards(weights, self.jobs)
        return [[(op, op_candidates[op]) for op in shard_ops] for shard_ops in plan]

    def _record(self, shards: List[ShardWork], seconds: List[float]) -> None:
        self.last_shards = [
            ShardStats(
                shard=i,
                n_buckets=len(work),
                n_candidates=sum(len(c) for _, c in work),
                seconds=seconds[i],
            )
            for i, work in enumerate(shards)
        ]


class SerialSearchExecutor(_SearchExecutorBase):
    """Run the shards one after another on the caller's thread.

    Nothing overlaps, so this is pure overhead relative to the unsharded
    sweep -- it exists as the determinism fixture (sharding with no pool in
    the way) and as the explicit "don't parallelise" choice.
    """

    kind = "serial"

    def run(self, matcher, egraph, op_candidates: Mapping[str, List[int]]) -> List[Dict[int, list]]:
        shards = self._plan(matcher, op_candidates)
        results: List[Dict[int, list]] = []
        seconds: List[float] = []
        for work in shards:
            t0 = time.perf_counter()
            results.append(_sweep_shard(egraph, matcher.trie, work))
            seconds.append(time.perf_counter() - t0)
        self._record(shards, seconds)
        return results


class ThreadSearchExecutor(_SearchExecutorBase):
    """Sweep shards on a thread pool over the live (frozen) e-graph.

    Workers share the e-graph directly -- no snapshot, no pickling.  The
    only writes a sweep performs are union-find path compressions, which
    are idempotent single-element list stores (safe under the GIL and
    commutative: every interleaving writes the same root).  On CPython with
    a GIL the sweeps serialise, so expect parity with serial rather than
    speedup; on free-threaded builds the same executor scales with cores.
    """

    kind = "thread"

    def __init__(self, jobs: int) -> None:
        super().__init__(jobs)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-search"
            )
        return self._pool

    def run(self, matcher, egraph, op_candidates: Mapping[str, List[int]]) -> List[Dict[int, list]]:
        shards = self._plan(matcher, op_candidates)
        pool = self._ensure_pool()

        def task(work: ShardWork):
            t0 = time.perf_counter()
            result = _sweep_shard(egraph, matcher.trie, work)
            return result, time.perf_counter() - t0

        futures = [pool.submit(task, work) for work in shards]
        results, seconds = [], []
        for future in futures:  # future order == shard order (deterministic)
            result, dt = future.result()
            results.append(result)
            seconds.append(dt)
        self._record(shards, seconds)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- process executor worker side (module-level: must be importable) ---- #

_WORKER_TRIE = None
_WORKER_SNAPSHOT: Tuple[Optional[int], Optional[EGraphSnapshot]] = (None, None)


def _process_worker_init(patterns_payload: bytes) -> None:
    """Rebuild the shared rule trie once per worker process.

    Compilation is deterministic (see :func:`repro.egraph.machine.
    build_rule_trie`), so the worker's trie is structurally identical to the
    driver's: same buckets, same rule ids, same yield order.
    """
    global _WORKER_TRIE
    from repro.egraph.machine import build_rule_trie

    _WORKER_TRIE = build_rule_trie(pickle.loads(patterns_payload))


def _process_worker_sweep(token: int, snapshot_payload: bytes, work: ShardWork):
    """Sweep one shard against the iteration's snapshot (cached per token)."""
    global _WORKER_SNAPSHOT
    if _WORKER_SNAPSHOT[0] != token:
        _WORKER_SNAPSHOT = (token, pickle.loads(snapshot_payload))
    t0 = time.perf_counter()
    result = _sweep_shard(_WORKER_SNAPSHOT[1], _WORKER_TRIE, work)
    return result, time.perf_counter() - t0


class ProcessSearchExecutor(_SearchExecutorBase):
    """Sweep shards on a process pool over a pickled frozen snapshot.

    The worker pool is built lazily from a ``fork`` context (workers inherit
    module state, so user-registered components resolve) with the compiled
    patterns shipped once through the initializer; each :meth:`run` pickles
    one :class:`EGraphSnapshot` and sends it alongside every shard (workers
    cache the decoded snapshot per iteration token, so a worker that gets
    two shards decodes once).  This is the only executor that escapes the
    GIL on stock CPython; it earns its keep once per-iteration sweep time
    dominates the snapshot round-trip.
    """

    kind = "process"

    def __init__(self, jobs: int) -> None:
        super().__init__(jobs)
        self._pool = None
        self._patterns_payload: Optional[bytes] = None
        self._token = 0

    def prepare(self, patterns: Sequence[object]) -> None:
        """Validate and stage the pattern payload (raises ConfigError early)."""
        ensure_picklable(
            {"the compiled search patterns": list(patterns)},
            "search_executor='process'",
        )
        self._patterns_payload = pickle.dumps(list(patterns))

    def _ensure_pool(self, matcher):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            if self._patterns_payload is None:
                self.prepare(matcher.patterns)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_process_worker_init,
                initargs=(self._patterns_payload,),
            )
        return self._pool

    def run(self, matcher, egraph, op_candidates: Mapping[str, List[int]]) -> List[Dict[int, list]]:
        shards = self._plan(matcher, op_candidates)
        pool = self._ensure_pool(matcher)
        self._token += 1
        snapshot_payload = pickle.dumps(EGraphSnapshot.freeze(egraph))
        futures = [
            pool.submit(_process_worker_sweep, self._token, snapshot_payload, work)
            for work in shards
        ]
        results, seconds = [], []
        for future in futures:  # future order == shard order (deterministic)
            result, dt = future.result()
            results.append(result)
            seconds.append(dt)
        self._record(shards, seconds)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
