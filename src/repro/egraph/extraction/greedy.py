"""Greedy extraction (paper Section 5.1).

For every e-class, compute the cheapest subtree cost over its e-nodes by a
bottom-up fixpoint, then pick the argmin e-node.  Because the subtree costs of
different children are summed independently, sharing is ignored -- the exact
weakness the paper demonstrates with the concat/split merge rewrites
(Table 4): greedy never pays off the shared merged ``matmul``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.base import ExtractionResult, Extractor, NodeCost, build_recexpr, dag_cost
from repro.egraph.language import ENode

__all__ = ["GreedyExtractor"]


class GreedyExtractor(Extractor):
    """Bottom-up greedy extractor under an additive per-node cost model.

    Parameters
    ----------
    node_cost:
        Cost of a single e-node; the subtree cost is this plus the children's
        subtree costs (double-counting shared children, as in the paper).
    filter_list:
        E-nodes to ignore (they are "removed" by cycle filtering).
    """

    def __init__(
        self,
        node_cost: NodeCost,
        filter_list: Optional[FilterList] = None,
    ) -> None:
        self.node_cost = node_cost
        self.filter_list = filter_list

    def extract(self, egraph: EGraph, root: int) -> ExtractionResult:
        t0 = time.perf_counter()
        root = egraph.find(root)
        filtered: Set[ENode] = (
            set(self.filter_list.as_set(egraph)) if self.filter_list is not None else set()
        )

        best_cost: Dict[int, float] = {}
        best_node: Dict[int, ENode] = {}
        node_costs: Dict[ENode, float] = {}

        # Fixpoint: keep sweeping until no e-class improves.
        changed = True
        while changed:
            changed = False
            for eclass in egraph.classes():
                cid = egraph.find(eclass.id)
                for node in eclass.nodes:
                    canonical = egraph.canonicalize(node)
                    if canonical in filtered:
                        continue
                    if any(egraph.find(c) not in best_cost for c in canonical.children):
                        continue
                    if canonical not in node_costs:
                        node_costs[canonical] = self.node_cost(canonical, egraph)
                    total = node_costs[canonical] + sum(
                        best_cost[egraph.find(c)] for c in canonical.children
                    )
                    if total < best_cost.get(cid, math.inf) - 1e-12:
                        best_cost[cid] = total
                        best_node[cid] = canonical
                        changed = True

        if root not in best_cost:
            raise ValueError(
                "greedy extraction failed: the root e-class has no acyclic representative "
                "(did cycle filtering remove every candidate?)"
            )

        expr = build_recexpr(egraph, root, best_node)
        cost = dag_cost(egraph, root, best_node, self.node_cost)
        seconds = time.perf_counter() - t0
        return ExtractionResult(
            expr=expr,
            cost=cost,
            choices={cls: node for cls, node in best_node.items()},
            solve_seconds=seconds,
            status="ok",
            stages={"greedy": seconds},
            stage_costs={"greedy": cost},
        )
