"""ILP extraction (paper Section 5.1).

Selecting one e-node per needed e-class such that the extracted graph is a
valid DAG of minimum total cost is formulated as a 0/1 integer linear
program.  The paper's formulation is reproduced exactly, including:

* the optional topological-order ("cycle") constraints with either real or
  integer order variables (Table 5 ablation),
* the filter-list constraints ``x_i = 0`` for e-nodes removed by cycle
  filtering (Section 5.2),
* a solver time limit (the paper uses 1 hour with SCIP; here the default
  backend is HiGHS through :func:`scipy.optimize.milp`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.base import ExtractionResult, Extractor, NodeCost, build_recexpr, dag_cost
from repro.egraph.extraction.bnb import solve_branch_and_bound
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.problem import ILPProblem, build_extraction_problem
from repro.egraph.language import ENode

__all__ = ["ILPExtractor", "ILPSolveInfo"]


@dataclass
class ILPSolveInfo:
    """Details about one ILP solve (exposed for the Table 5 benchmark)."""

    status: str
    objective: float
    solve_seconds: float
    num_variables: int
    num_constraints: int
    backend: str


class ILPExtractor(Extractor):
    """Extract the minimum-cost DAG from an e-graph by solving an ILP.

    Parameters
    ----------
    node_cost:
        Additive per-e-node cost.
    with_cycle_constraints:
        Include the topological-order constraints (paper constraint (4)).
        When the e-graph was kept acyclic by cycle filtering these can be
        dropped, which is the paper's key scalability lever (Table 5).
    integer_topo:
        Use integer instead of real topological-order variables.
    filter_list:
        E-nodes excluded by cycle filtering (forced to ``x_i = 0``).
    time_limit:
        Solver wall-clock limit in seconds (paper: 3600).
    backend:
        ``"scipy"`` (HiGHS via ``scipy.optimize.milp``) or ``"bnb"`` (the
        pure-Python branch-and-bound fallback).
    fallback_to_greedy:
        On solver failure/timeout, fall back to greedy extraction instead of
        raising, so end-to-end optimization always returns a graph.
    mip_rel_gap:
        Relative optimality gap passed to the MIP solver; 0 demands a proven
        optimum, small positive values trade a bounded amount of optimality
        for a large reduction in solve time on big e-graphs.
    """

    def __init__(
        self,
        node_cost: NodeCost,
        with_cycle_constraints: bool = False,
        integer_topo: bool = False,
        filter_list: Optional[FilterList] = None,
        time_limit: float = 3600.0,
        backend: str = "scipy",
        fallback_to_greedy: bool = True,
        mip_rel_gap: float = 0.0,
    ) -> None:
        if backend not in ("scipy", "bnb"):
            raise ValueError(f"unknown ILP backend {backend!r}; expected 'scipy' or 'bnb'")
        self.node_cost = node_cost
        self.with_cycle_constraints = with_cycle_constraints
        self.integer_topo = integer_topo
        self.filter_list = filter_list
        self.time_limit = time_limit
        self.backend = backend
        self.fallback_to_greedy = fallback_to_greedy
        self.mip_rel_gap = mip_rel_gap
        self.last_solve_info: Optional[ILPSolveInfo] = None

    # ------------------------------------------------------------------ #

    def build_problem(self, egraph: EGraph, root: int) -> ILPProblem:
        return build_extraction_problem(
            egraph,
            root,
            self.node_cost,
            with_cycle_constraints=self.with_cycle_constraints,
            integer_topo=self.integer_topo,
            filter_list=self.filter_list,
        )

    def _solve_scipy(self, problem: ILPProblem):
        constraints = [
            LinearConstraint(problem.a_ub, -np.inf, problem.b_ub),
            LinearConstraint(problem.a_eq, problem.b_eq, problem.b_eq),
        ]
        options = {"time_limit": self.time_limit, "presolve": True}
        if self.mip_rel_gap > 0:
            options["mip_rel_gap"] = self.mip_rel_gap
        res = milp(
            c=problem.c,
            constraints=constraints,
            integrality=problem.integrality,
            bounds=Bounds(problem.lower, problem.upper),
            options=options,
        )
        if res.status == 0 and res.x is not None:
            return res.x, float(res.fun), "optimal"
        if res.x is not None:
            return res.x, float(res.fun), "feasible"
        status = {1: "iteration_or_time_limit", 2: "infeasible", 3: "unbounded"}.get(res.status, "failed")
        return None, float("inf"), status

    def _solve_bnb(self, problem: ILPProblem):
        res = solve_branch_and_bound(
            problem.c,
            problem.a_ub,
            problem.b_ub,
            problem.a_eq,
            problem.b_eq,
            problem.lower,
            problem.upper,
            problem.integrality,
            time_limit=self.time_limit,
        )
        if res.x is not None:
            return res.x, res.objective, "optimal" if res.status == "optimal" else res.status
        return None, float("inf"), res.status

    # ------------------------------------------------------------------ #

    def extract(self, egraph: EGraph, root: int) -> ExtractionResult:
        t0 = time.perf_counter()
        root = egraph.find(root)
        problem = self.build_problem(egraph, root)

        if self.backend == "scipy":
            x, objective, status = self._solve_scipy(problem)
        else:
            x, objective, status = self._solve_bnb(problem)

        solve_seconds = time.perf_counter() - t0
        self.last_solve_info = ILPSolveInfo(
            status=status,
            objective=objective,
            solve_seconds=solve_seconds,
            num_variables=problem.num_variables,
            num_constraints=problem.a_ub.shape[0] + problem.a_eq.shape[0],
            backend=self.backend,
        )

        if x is None:
            if self.fallback_to_greedy:
                greedy = GreedyExtractor(self.node_cost, filter_list=self.filter_list)
                result = greedy.extract(egraph, root)
                result.status = f"ilp_{status}_greedy_fallback"
                result.solve_seconds = solve_seconds + result.solve_seconds
                return result
            raise RuntimeError(f"ILP extraction failed: solver status {status!r}")

        choices = self._choices_from_solution(egraph, problem, x)
        expr = build_recexpr(egraph, root, choices)
        cost = dag_cost(egraph, root, choices, self.node_cost)
        return ExtractionResult(
            expr=expr,
            cost=cost,
            choices=choices,
            solve_seconds=solve_seconds,
            status=status,
        )

    @staticmethod
    def _choices_from_solution(egraph: EGraph, problem: ILPProblem, x: np.ndarray) -> Dict[int, ENode]:
        variables = problem.variables
        choices: Dict[int, ENode] = {}
        best_value: Dict[int, float] = {}
        for i, (class_pos, node) in enumerate(variables.nodes):
            value = float(x[i])
            if value < 0.5:
                continue
            cid = variables.class_ids[class_pos]
            if value > best_value.get(cid, 0.0):
                best_value[cid] = value
                choices[cid] = node
        return choices
