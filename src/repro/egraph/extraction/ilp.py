"""ILP extraction (paper Section 5.1).

Selecting one e-node per needed e-class such that the extracted graph is a
valid DAG of minimum total cost is formulated as a 0/1 integer linear
program.  The paper's formulation is reproduced exactly, including:

* the optional topological-order ("cycle") constraints with either real or
  integer order variables (Table 5 ablation),
* the filter-list constraints ``x_i = 0`` for e-nodes removed by cycle
  filtering (Section 5.2),
* a solver time limit (the paper uses 1 hour with SCIP; here the default
  backend is HiGHS through :func:`scipy.optimize.milp`).

Two extraction-at-scale levers sit on top (see ``docs/extraction.md``):

* **problem reduction** (``reduce_problem``, default on): dominated e-nodes
  are pruned and the forced singleton chain from the root is fixed before the
  solver sees the problem (:func:`~repro.egraph.extraction.problem.build_extraction_problem`);
* **warm starting** (``warm_start``, default on): the greedy solution is
  computed on the reduced problem and seeds the solve -- the ``bnb`` backend
  takes it as its starting incumbent, and the HiGHS backend (which scipy
  exposes without a MIP-start hook) gets an objective-cutoff row
  ``c @ x <= greedy_cost`` that prunes everything the incumbent already beats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.base import ExtractionResult, Extractor, NodeCost, build_recexpr, dag_cost
from repro.egraph.extraction.bnb import solve_branch_and_bound
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.problem import ILPProblem, build_extraction_problem, warm_start_solution
from repro.egraph.language import ENode

__all__ = ["ILPExtractor", "ILPSolveInfo"]

#: Slack added to the warm-start objective cutoff so the incumbent itself
#: (and every equal-cost optimum) stays feasible under floating-point noise.
_CUTOFF_SLACK = 1e-6


@dataclass
class ILPSolveInfo:
    """Details about one ILP solve (exposed for the Table 5 benchmark)."""

    status: str
    objective: float
    solve_seconds: float
    num_variables: int
    num_constraints: int
    backend: str
    #: True when a greedy warm start seeded this solve.
    warm_started: bool = False
    #: Objective of the warm-start incumbent (None when solving cold).
    warm_start_objective: Optional[float] = None
    #: Variable-space shrink factor of the problem-reduction pass (1.0 = none).
    prune_ratio: float = 1.0


class ILPExtractor(Extractor):
    """Extract the minimum-cost DAG from an e-graph by solving an ILP.

    Parameters
    ----------
    node_cost:
        Additive per-e-node cost.
    with_cycle_constraints:
        Include the topological-order constraints (paper constraint (4)).
        When the e-graph was kept acyclic by cycle filtering these can be
        dropped, which is the paper's key scalability lever (Table 5).
    integer_topo:
        Use integer instead of real topological-order variables.
    filter_list:
        E-nodes excluded by cycle filtering (forced to ``x_i = 0``).
    time_limit:
        Solver wall-clock limit in seconds (paper: 3600).
    backend:
        ``"scipy"`` (HiGHS via ``scipy.optimize.milp``) or ``"bnb"`` (the
        pure-Python branch-and-bound fallback).
    fallback_to_greedy:
        On solver failure/timeout, fall back to greedy extraction instead of
        raising, so end-to-end optimization always returns a graph.
    mip_rel_gap:
        Relative optimality gap passed to the MIP solver; 0 demands a proven
        optimum, small positive values trade a bounded amount of optimality
        for a large reduction in solve time on big e-graphs.
    reduce_problem:
        Prune dominated e-nodes and fix the singleton chain before solving
        (optimum-preserving; see :mod:`repro.egraph.extraction.problem`).
    warm_start:
        Seed the solver from the greedy solution (incumbent for ``bnb``,
        objective cutoff for ``scipy``).  Optimum-preserving.
    """

    def __init__(
        self,
        node_cost: NodeCost,
        with_cycle_constraints: bool = False,
        integer_topo: bool = False,
        filter_list: Optional[FilterList] = None,
        time_limit: float = 3600.0,
        backend: str = "scipy",
        fallback_to_greedy: bool = True,
        mip_rel_gap: float = 0.0,
        reduce_problem: bool = True,
        warm_start: bool = True,
    ) -> None:
        if backend not in ("scipy", "bnb"):
            raise ValueError(f"unknown ILP backend {backend!r}; expected 'scipy' or 'bnb'")
        self.node_cost = node_cost
        self.with_cycle_constraints = with_cycle_constraints
        self.integer_topo = integer_topo
        self.filter_list = filter_list
        self.time_limit = time_limit
        self.backend = backend
        self.fallback_to_greedy = fallback_to_greedy
        self.mip_rel_gap = mip_rel_gap
        self.reduce_problem = reduce_problem
        self.warm_start = warm_start
        self.last_solve_info: Optional[ILPSolveInfo] = None

    # ------------------------------------------------------------------ #

    def build_problem(self, egraph: EGraph, root: int) -> ILPProblem:
        return build_extraction_problem(
            egraph,
            root,
            self.node_cost,
            with_cycle_constraints=self.with_cycle_constraints,
            integer_topo=self.integer_topo,
            filter_list=self.filter_list,
            prune_dominated=self.reduce_problem,
            collapse_singletons=self.reduce_problem,
        )

    def _solve_scipy(self, problem: ILPProblem, cutoff: Optional[float] = None):
        constraints = [
            LinearConstraint(problem.a_ub, -np.inf, problem.b_ub),
            LinearConstraint(problem.a_eq, problem.b_eq, problem.b_eq),
        ]
        if cutoff is not None:
            # The warm-start surrogate: no solution worse than the greedy
            # incumbent is worth enumerating.  The row is normalized by
            # max|c| -- HiGHS mis-declares infeasibility when the cost
            # coefficients are very small (sub-millisecond node costs).
            scale = float(np.abs(problem.c).max()) or 1.0
            constraints.append(
                LinearConstraint(
                    (problem.c / scale).reshape(1, -1), -np.inf, [cutoff / scale + _CUTOFF_SLACK]
                )
            )
        options = {"time_limit": self.time_limit, "presolve": True}
        if self.mip_rel_gap > 0:
            options["mip_rel_gap"] = self.mip_rel_gap
        res = milp(
            c=problem.c,
            constraints=constraints,
            integrality=problem.integrality,
            bounds=Bounds(problem.lower, problem.upper),
            options=options,
        )
        if res.status == 0 and res.x is not None:
            return res.x, float(res.fun), "optimal"
        if res.x is not None:
            return res.x, float(res.fun), "feasible"
        status = {1: "iteration_or_time_limit", 2: "infeasible", 3: "unbounded"}.get(res.status, "failed")
        return None, float("inf"), status

    def _solve_bnb(self, problem: ILPProblem, incumbent=None):
        res = solve_branch_and_bound(
            problem.c,
            problem.a_ub,
            problem.b_ub,
            problem.a_eq,
            problem.b_eq,
            problem.lower,
            problem.upper,
            problem.integrality,
            time_limit=self.time_limit,
            incumbent=incumbent,
        )
        if res.x is not None:
            return res.x, res.objective, "optimal" if res.status == "optimal" else res.status
        return None, float("inf"), res.status

    # ------------------------------------------------------------------ #

    def extract(self, egraph: EGraph, root: int) -> ExtractionResult:
        t0 = time.perf_counter()
        root = egraph.find(root)
        stages: Dict[str, float] = {}
        stage_costs: Dict[str, float] = {}

        problem = self.build_problem(egraph, root)
        stages["prune"] = time.perf_counter() - t0
        reduction = problem.reduction.as_dict() if problem.reduction is not None else None

        warm: Optional[Tuple[np.ndarray, float]] = None
        if self.warm_start:
            t_warm = time.perf_counter()
            warm = warm_start_solution(problem)
            stages["greedy"] = time.perf_counter() - t_warm
            if warm is not None:
                stage_costs["greedy"] = warm[1]

        t_solve = time.perf_counter()
        if self.backend == "scipy":
            x, objective, status = self._solve_scipy(
                problem, cutoff=warm[1] if warm is not None else None
            )
        else:
            x, objective, status = self._solve_bnb(problem, incumbent=warm)
        stage_name = "ilp" if self.backend == "scipy" else "bnb"
        stages[stage_name] = time.perf_counter() - t_solve

        solve_seconds = time.perf_counter() - t0
        self.last_solve_info = ILPSolveInfo(
            status=status,
            objective=objective,
            solve_seconds=solve_seconds,
            num_variables=problem.num_variables,
            num_constraints=problem.a_ub.shape[0] + problem.a_eq.shape[0],
            backend=self.backend,
            warm_started=warm is not None,
            warm_start_objective=warm[1] if warm is not None else None,
            prune_ratio=problem.reduction.variable_ratio if problem.reduction else 1.0,
        )

        if x is None and warm is not None:
            # The solver gave nothing back, but the warm-start incumbent is a
            # full feasible solution -- return it instead of re-running greedy.
            x, objective, status = warm[0], warm[1], f"{status}_warm_incumbent"

        if x is None:
            if self.fallback_to_greedy:
                greedy = GreedyExtractor(self.node_cost, filter_list=self.filter_list)
                result = greedy.extract(egraph, root)
                result.status = f"ilp_{status}_greedy_fallback"
                result.solve_seconds = solve_seconds + result.solve_seconds
                result.stages = {**stages, **result.stages}
                result.reduction = reduction
                return result
            raise RuntimeError(f"ILP extraction failed: solver status {status!r}")

        choices = self._choices_from_solution(egraph, problem, x)
        expr = build_recexpr(egraph, root, choices)
        cost = dag_cost(egraph, root, choices, self.node_cost)
        stage_costs[stage_name] = cost
        return ExtractionResult(
            expr=expr,
            cost=cost,
            choices=choices,
            solve_seconds=solve_seconds,
            status=status,
            stages=stages,
            stage_costs=stage_costs,
            reduction=reduction,
        )

    @staticmethod
    def _choices_from_solution(egraph: EGraph, problem: ILPProblem, x: np.ndarray) -> Dict[int, ENode]:
        variables = problem.variables
        choices: Dict[int, ENode] = {}
        best_value: Dict[int, float] = {}
        for i, (class_pos, node) in enumerate(variables.nodes):
            value = float(x[i])
            if value < 0.5:
                continue
            cid = variables.class_ids[class_pos]
            if value > best_value.get(cid, 0.0):
                best_value[cid] = value
                choices[cid] = node
        return choices
