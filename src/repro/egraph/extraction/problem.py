"""Construction of the extraction ILP (paper Section 5.1, constraints (1)-(5)).

The problem is built once as plain numpy/scipy-sparse data so it can be handed
to either solver backend (:mod:`scipy.optimize.milp` or the pure-Python
branch-and-bound in :mod:`repro.egraph.extraction.bnb`), and so tests can
inspect the formulation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.base import NodeCost
from repro.egraph.language import ENode

__all__ = ["ILPVariables", "ILPProblem", "build_extraction_problem"]

#: Nodes whose cost reaches this threshold (shape-invalid operands) are forced
#: to x_i = 0, exactly like filter-list entries; this keeps the objective well
#: scaled for the MIP solver.
UNSELECTABLE_COST = 1e5


@dataclass
class ILPVariables:
    """Bookkeeping that maps ILP variables back to e-graph entities."""

    #: canonical e-class ids in a fixed order; ``t`` variables follow this order
    class_ids: List[int]
    #: per variable index: (class position in ``class_ids``, the e-node)
    nodes: List[Tuple[int, ENode]]
    #: index of the root e-class within ``class_ids``
    root_position: int

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_classes(self) -> int:
        return len(self.class_ids)


@dataclass
class ILPProblem:
    """A mixed 0/1 linear program ``min c@x  s.t.  A_ub@x <= b_ub, A_eq@x == b_eq``."""

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # 1 = integer variable, 0 = continuous
    variables: ILPVariables
    with_cycle_constraints: bool
    integer_topo: bool

    @property
    def num_variables(self) -> int:
        return len(self.c)


def build_extraction_problem(
    egraph: EGraph,
    root: int,
    node_cost: NodeCost,
    with_cycle_constraints: bool = False,
    integer_topo: bool = False,
    filter_list: Optional[FilterList] = None,
    at_most_one_per_class: bool = True,
) -> ILPProblem:
    """Build the extraction ILP.

    Variables are ``x_i`` (one binary per e-node) followed, when
    ``with_cycle_constraints`` is set, by ``t_m`` (one topological-order
    variable per e-class -- real in ``[0, 1]`` or integer in ``[0, M-1]``).

    Constraints (numbered as in the paper):

    2. exactly one e-node is picked in the root e-class;
    3. a picked e-node forces at least one pick in each child e-class;
    4. (optional) topological-order constraints that forbid cycles;
    5. bounds on the ``t`` variables.

    Nodes on the filter list (paper Section 5.2) get an explicit ``x_i = 0``
    via their upper bound.

    ``at_most_one_per_class`` adds ``sum_{i in e_m} x_i <= 1`` rows for every
    e-class.  The paper's formulation omits them and relies on the fact that
    an optimal solution never selects two nodes from one class; adding them is
    a standard strengthening that does not change the optimum but tightens the
    LP relaxation considerably, which matters for the open-source MIP solver
    used here.
    """
    root = egraph.find(root)
    filtered = filter_list.as_set(egraph) if filter_list is not None else frozenset()

    # Only e-classes reachable from the root through unfiltered e-nodes can
    # ever be selected, so restrict the problem to them.  This keeps the ILP
    # size proportional to the useful part of the e-graph.
    reachable: set = set()
    stack = [root]
    while stack:
        cid = egraph.find(stack.pop())
        if cid in reachable:
            continue
        reachable.add(cid)
        for node in egraph[cid].nodes:
            canonical = egraph.canonicalize(node)
            if canonical in filtered:
                continue
            for child in canonical.children:
                child = egraph.find(child)
                if child not in reachable:
                    stack.append(child)

    class_ids = sorted(reachable)
    class_pos: Dict[int, int] = {cid: i for i, cid in enumerate(class_ids)}
    if root not in class_pos:
        raise ValueError(f"root e-class {root} not present in the e-graph")

    nodes: List[Tuple[int, ENode]] = []
    nodes_filtered: List[bool] = []
    class_node_indices: Dict[int, List[int]] = {cid: [] for cid in class_ids}
    seen_per_class: Dict[int, set] = {cid: set() for cid in class_ids}
    for eclass in egraph.classes():
        cid = egraph.find(eclass.id)
        if cid not in class_pos:
            continue
        for node in eclass.nodes:
            canonical = egraph.canonicalize(node)
            if canonical in seen_per_class[cid]:
                continue
            # E-nodes whose children fall outside the reachable set can only
            # occur through filtered children; they can never be selected.
            if any(egraph.find(ch) not in class_pos for ch in canonical.children):
                continue
            seen_per_class[cid].add(canonical)
            idx = len(nodes)
            nodes.append((class_pos[cid], canonical))
            nodes_filtered.append(canonical in filtered)
            class_node_indices[cid].append(idx)

    n_nodes = len(nodes)
    n_classes = len(class_ids)
    n_vars = n_nodes + (n_classes if with_cycle_constraints else 0)

    # Objective
    c = np.zeros(n_vars)
    for i, (_, node) in enumerate(nodes):
        c[i] = node_cost(node, egraph)

    # Bounds and integrality
    lower = np.zeros(n_vars)
    upper = np.ones(n_vars)
    integrality = np.zeros(n_vars)
    integrality[:n_nodes] = 1
    for i, is_filtered in enumerate(nodes_filtered):
        if is_filtered or c[i] >= UNSELECTABLE_COST:
            upper[i] = 0.0
            c[i] = 0.0
    if with_cycle_constraints:
        if integer_topo:
            upper[n_nodes:] = max(n_classes - 1, 0)
            integrality[n_nodes:] = 1
        else:
            upper[n_nodes:] = 1.0

    # Equality constraint (2): exactly one pick in the root class.
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    for idx in class_node_indices[root]:
        eq_rows.append(0)
        eq_cols.append(idx)
        eq_vals.append(1.0)
    a_eq = sparse.csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(1, n_vars))
    b_eq = np.array([1.0])

    # Inequality constraints.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    b_ub: List[float] = []
    row = 0

    eps = 1.0 / (2 * max(n_classes, 1))
    big_a = float(n_classes + 1) if integer_topo else 1.0 + 2 * eps

    if at_most_one_per_class:
        for cid in class_ids:
            indices = class_node_indices[cid]
            if len(indices) <= 1:
                continue
            for j in indices:
                ub_rows.append(row)
                ub_cols.append(j)
                ub_vals.append(1.0)
            b_ub.append(1.0)
            row += 1

    for i, (cls_pos, node) in enumerate(nodes):
        child_classes = {egraph.find(ch) for ch in node.children}
        for m in child_classes:
            # (3)  x_i - sum_{j in e_m} x_j <= 0
            ub_rows.append(row)
            ub_cols.append(i)
            ub_vals.append(1.0)
            for j in class_node_indices[m]:
                ub_rows.append(row)
                ub_cols.append(j)
                ub_vals.append(-1.0)
            b_ub.append(0.0)
            row += 1

            if with_cycle_constraints and m != class_ids[cls_pos]:
                # (4)  t_g(i) - t_m - eps + A*(1 - x_i) >= 0   (real topo vars)
                #      t_g(i) - t_m + A*(1 - x_i) >= 1          (integer topo vars)
                # rewritten as  -t_g + t_m + A*x_i <= A - rhs_gap
                rhs_gap = 1.0 if integer_topo else eps
                ub_rows.append(row)
                ub_cols.append(n_nodes + cls_pos)
                ub_vals.append(-1.0)
                ub_rows.append(row)
                ub_cols.append(n_nodes + class_pos[m])
                ub_vals.append(1.0)
                ub_rows.append(row)
                ub_cols.append(i)
                ub_vals.append(big_a)
                b_ub.append(big_a - rhs_gap)
                row += 1
            elif with_cycle_constraints and m == class_ids[cls_pos]:
                # Self-loop e-node: can never be picked in an acyclic solution.
                ub_rows.append(row)
                ub_cols.append(i)
                ub_vals.append(1.0)
                b_ub.append(0.0)
                row += 1

    a_ub = sparse.csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(max(row, 1), n_vars))
    b_ub_arr = np.array(b_ub if b_ub else [0.0])
    if row == 0:
        # No inequality constraints at all (single-node e-graph); keep shapes consistent.
        a_ub = sparse.csr_matrix((1, n_vars))
        b_ub_arr = np.array([0.0])

    variables = ILPVariables(class_ids=class_ids, nodes=nodes, root_position=class_pos[root])
    return ILPProblem(
        c=c,
        a_ub=a_ub,
        b_ub=b_ub_arr,
        a_eq=a_eq,
        b_eq=b_eq,
        lower=lower,
        upper=upper,
        integrality=integrality,
        variables=variables,
        with_cycle_constraints=with_cycle_constraints,
        integer_topo=integer_topo,
    )
