"""Construction of the extraction ILP (paper Section 5.1, constraints (1)-(5)).

The problem is built once as plain numpy/scipy-sparse data so it can be handed
to either solver backend (:mod:`scipy.optimize.milp` or the pure-Python
branch-and-bound in :mod:`repro.egraph.extraction.bnb`), and so tests can
inspect the formulation directly.

Two optional *problem-reduction* passes shrink the variable space before any
solver runs (see ``docs/extraction.md``):

* **dominated-node pruning** (``prune_dominated``): within one e-class, an
  e-node whose child-class set is a superset of another's and whose cost is no
  smaller can never appear in an optimal solution -- any selection using it
  can swap to the dominating node without demanding new e-classes or paying
  more.  Dominated nodes (and filter-list entries) are dropped entirely and
  reachability is recomputed over the survivors, so whole e-classes can fall
  out of the problem.
* **singleton collapse** (``collapse_singletons``): starting at the root, an
  e-class with exactly one selectable candidate must pick it whenever the
  class is demanded; the forced chain from the root has its variables fixed to
  1 (``lower = upper = 1``), removing them from the solver's branching space.

Both passes preserve the optimal objective value exactly (property-tested in
``tests/test_extraction_equivalence.py``); :class:`ReductionStats` records
what they removed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.base import NodeCost
from repro.egraph.language import ENode

__all__ = [
    "ILPVariables",
    "ILPProblem",
    "ReductionStats",
    "build_extraction_problem",
    "warm_start_solution",
]

#: Nodes whose cost reaches this threshold (shape-invalid operands) are forced
#: to x_i = 0, exactly like filter-list entries; this keeps the objective well
#: scaled for the MIP solver.
UNSELECTABLE_COST = 1e5


@dataclass
class ReductionStats:
    """What the problem-reduction passes removed (see module docstring)."""

    #: Candidate e-node variables before / after reduction.
    nodes_before: int = 0
    nodes_after: int = 0
    #: E-classes in the problem before / after reduction.
    classes_before: int = 0
    classes_after: int = 0
    #: Dominated e-nodes dropped (a subset of ``nodes_before - nodes_after``;
    #: the rest are filter-list entries and nodes orphaned by reachability).
    dominated_pruned: int = 0
    #: Variables fixed to 1 by the singleton-collapse chain from the root.
    singletons_fixed: int = 0

    @property
    def variable_ratio(self) -> float:
        """How many times smaller the e-node variable space became (>= 1.0)."""
        if self.nodes_after <= 0:
            return 1.0
        return self.nodes_before / self.nodes_after

    def as_dict(self) -> Dict[str, float]:
        return {
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "classes_before": self.classes_before,
            "classes_after": self.classes_after,
            "dominated_pruned": self.dominated_pruned,
            "singletons_fixed": self.singletons_fixed,
            "variable_ratio": round(self.variable_ratio, 4),
        }


@dataclass
class ILPVariables:
    """Bookkeeping that maps ILP variables back to e-graph entities."""

    #: canonical e-class ids in a fixed order; ``t`` variables follow this order
    class_ids: List[int]
    #: per variable index: (class position in ``class_ids``, the e-node)
    nodes: List[Tuple[int, ENode]]
    #: index of the root e-class within ``class_ids``
    root_position: int

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_classes(self) -> int:
        return len(self.class_ids)


@dataclass
class ILPProblem:
    """A mixed 0/1 linear program ``min c@x  s.t.  A_ub@x <= b_ub, A_eq@x == b_eq``."""

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray  # 1 = integer variable, 0 = continuous
    variables: ILPVariables
    with_cycle_constraints: bool
    integer_topo: bool
    #: Populated when a reduction pass ran; None for the raw formulation.
    reduction: Optional[ReductionStats] = None

    @property
    def num_variables(self) -> int:
        return len(self.c)


def _dominated_indices(
    class_indices: Sequence[int],
    child_sets: Sequence[Set[int]],
    costs: np.ndarray,
) -> Set[int]:
    """Indices (into the flat node list) dominated by a same-class sibling.

    ``a`` dominates ``b`` when children(a) is a subset of children(b) and
    cost(a) <= cost(b), with a strict edge somewhere (or, on an exact tie,
    the earlier index wins so duplicates collapse deterministically).
    """
    dominated: Set[int] = set()
    for pos_b, b in enumerate(class_indices):
        if b in dominated:
            continue
        for pos_a, a in enumerate(class_indices):
            if a == b or a in dominated:
                continue
            if not child_sets[a] <= child_sets[b]:
                continue
            if costs[a] > costs[b]:
                continue
            strictly_better = child_sets[a] != child_sets[b] or costs[a] < costs[b]
            if strictly_better or pos_a < pos_b:
                dominated.add(b)
                break
    return dominated


def build_extraction_problem(
    egraph: EGraph,
    root: int,
    node_cost: NodeCost,
    with_cycle_constraints: bool = False,
    integer_topo: bool = False,
    filter_list: Optional[FilterList] = None,
    at_most_one_per_class: bool = True,
    prune_dominated: bool = False,
    collapse_singletons: bool = False,
) -> ILPProblem:
    """Build the extraction ILP.

    Variables are ``x_i`` (one binary per e-node) followed, when
    ``with_cycle_constraints`` is set, by ``t_m`` (one topological-order
    variable per e-class -- real in ``[0, 1]`` or integer in ``[0, M-1]``).

    Constraints (numbered as in the paper):

    2. exactly one e-node is picked in the root e-class;
    3. a picked e-node forces at least one pick in each child e-class;
    4. (optional) topological-order constraints that forbid cycles;
    5. bounds on the ``t`` variables.

    Nodes on the filter list (paper Section 5.2) get an explicit ``x_i = 0``
    via their upper bound (or are dropped entirely under ``prune_dominated``).

    ``at_most_one_per_class`` adds ``sum_{i in e_m} x_i <= 1`` rows for every
    e-class.  The paper's formulation omits them and relies on the fact that
    an optimal solution never selects two nodes from one class; adding them is
    a standard strengthening that does not change the optimum but tightens the
    LP relaxation considerably, which matters for the open-source MIP solver
    used here.

    ``prune_dominated`` / ``collapse_singletons`` run the optimum-preserving
    reduction passes described in the module docstring; the resulting
    :class:`ILPProblem` carries a :class:`ReductionStats` in ``reduction``.
    """
    root = egraph.find(root)
    filtered = filter_list.as_set(egraph) if filter_list is not None else frozenset()

    # Only e-classes reachable from the root through unfiltered e-nodes can
    # ever be selected, so restrict the problem to them.  This keeps the ILP
    # size proportional to the useful part of the e-graph.
    reachable: set = set()
    stack = [root]
    while stack:
        cid = egraph.find(stack.pop())
        if cid in reachable:
            continue
        reachable.add(cid)
        for node in egraph[cid].nodes:
            canonical = egraph.canonicalize(node)
            if canonical in filtered:
                continue
            for child in canonical.children:
                child = egraph.find(child)
                if child not in reachable:
                    stack.append(child)

    class_ids = sorted(reachable)
    class_pos: Dict[int, int] = {cid: i for i, cid in enumerate(class_ids)}
    if root not in class_pos:
        raise ValueError(f"root e-class {root} not present in the e-graph")

    nodes: List[Tuple[int, ENode]] = []
    nodes_filtered: List[bool] = []
    node_class: List[int] = []  # canonical e-class id per flat node index
    class_node_indices: Dict[int, List[int]] = {cid: [] for cid in class_ids}
    seen_per_class: Dict[int, set] = {cid: set() for cid in class_ids}
    for eclass in egraph.classes():
        cid = egraph.find(eclass.id)
        if cid not in class_pos:
            continue
        for node in eclass.nodes:
            canonical = egraph.canonicalize(node)
            if canonical in seen_per_class[cid]:
                continue
            # E-nodes whose children fall outside the reachable set can only
            # occur through filtered children; they can never be selected.
            if any(egraph.find(ch) not in class_pos for ch in canonical.children):
                continue
            seen_per_class[cid].add(canonical)
            idx = len(nodes)
            nodes.append((class_pos[cid], canonical))
            nodes_filtered.append(canonical in filtered)
            node_class.append(cid)
            class_node_indices[cid].append(idx)

    reduction: Optional[ReductionStats] = None
    if prune_dominated or collapse_singletons:
        reduction = ReductionStats(
            nodes_before=len(nodes),
            nodes_after=len(nodes),
            classes_before=len(class_ids),
            classes_after=len(class_ids),
        )

    if prune_dominated:
        raw_costs = np.array([node_cost(node, egraph) for _, node in nodes])
        child_sets: List[Set[int]] = [
            {egraph.find(ch) for ch in node.children} for _, node in nodes
        ]
        # Filter-list entries and shape-invalid nodes are forced to zero
        # anyway; under pruning they are simply dropped.
        dropped: Set[int] = {
            i for i in range(len(nodes)) if nodes_filtered[i] or raw_costs[i] >= UNSELECTABLE_COST
        }
        for cid in class_ids:
            selectable = [i for i in class_node_indices[cid] if i not in dropped]
            dominated = _dominated_indices(selectable, child_sets, raw_costs)
            reduction.dominated_pruned += len(dominated)
            dropped |= dominated
        # Pruning can orphan entire e-classes: recompute reachability over
        # the surviving nodes and drop everything the root no longer needs.
        survivors_by_class: Dict[int, List[int]] = {cid: [] for cid in class_ids}
        for i in range(len(nodes)):
            if i not in dropped:
                survivors_by_class[node_class[i]].append(i)
        still_reachable: Set[int] = set()
        stack = [root]
        while stack:
            cid = stack.pop()
            if cid in still_reachable:
                continue
            still_reachable.add(cid)
            for i in survivors_by_class[cid]:
                for ch in child_sets[i]:
                    if ch not in still_reachable:
                        stack.append(ch)

        keep = [
            i
            for i in range(len(nodes))
            if i not in dropped and node_class[i] in still_reachable
        ]
        class_ids = sorted(still_reachable)
        class_pos = {cid: i for i, cid in enumerate(class_ids)}
        old_nodes = nodes
        nodes = [(class_pos[node_class[i]], old_nodes[i][1]) for i in keep]
        nodes_filtered = [False] * len(nodes)
        node_class = [node_class[i] for i in keep]
        class_node_indices = {cid: [] for cid in class_ids}
        for new_idx, _ in enumerate(nodes):
            class_node_indices[node_class[new_idx]].append(new_idx)
        reduction.nodes_after = len(nodes)
        reduction.classes_after = len(class_ids)

    n_nodes = len(nodes)
    n_classes = len(class_ids)
    n_vars = n_nodes + (n_classes if with_cycle_constraints else 0)

    # Objective
    c = np.zeros(n_vars)
    for i, (_, node) in enumerate(nodes):
        c[i] = node_cost(node, egraph)

    # Bounds and integrality
    lower = np.zeros(n_vars)
    upper = np.ones(n_vars)
    integrality = np.zeros(n_vars)
    integrality[:n_nodes] = 1
    for i, is_filtered in enumerate(nodes_filtered):
        if is_filtered or c[i] >= UNSELECTABLE_COST:
            upper[i] = 0.0
            c[i] = 0.0

    if with_cycle_constraints:
        if integer_topo:
            upper[n_nodes:] = max(n_classes - 1, 0)
            integrality[n_nodes:] = 1
        else:
            upper[n_nodes:] = 1.0

    if collapse_singletons:
        # The root class must make a pick; follow the chain of single-candidate
        # classes it forces and fix those variables to 1.  Self-loop nodes are
        # excluded: under cycle constraints they carry an x_i <= 0 row.
        forced_stack = [root]
        forced_seen: Set[int] = set()
        while forced_stack:
            cid = forced_stack.pop()
            if cid in forced_seen:
                continue
            forced_seen.add(cid)
            selectable = [i for i in class_node_indices[cid] if upper[i] > 0.5]
            if len(selectable) != 1:
                continue
            idx = selectable[0]
            child_ids = {egraph.find(ch) for ch in nodes[idx][1].children}
            if cid in child_ids:
                continue
            if lower[idx] < 0.5:
                lower[idx] = 1.0
                reduction.singletons_fixed += 1
            forced_stack.extend(child_ids)

    # Equality constraint (2): exactly one pick in the root class.
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    for idx in class_node_indices[root]:
        eq_rows.append(0)
        eq_cols.append(idx)
        eq_vals.append(1.0)
    a_eq = sparse.csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(1, n_vars))
    b_eq = np.array([1.0])

    # Inequality constraints.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    b_ub: List[float] = []
    row = 0

    eps = 1.0 / (2 * max(n_classes, 1))
    big_a = float(n_classes + 1) if integer_topo else 1.0 + 2 * eps

    if at_most_one_per_class:
        for cid in class_ids:
            indices = class_node_indices[cid]
            if len(indices) <= 1:
                continue
            for j in indices:
                ub_rows.append(row)
                ub_cols.append(j)
                ub_vals.append(1.0)
            b_ub.append(1.0)
            row += 1

    for i, (cls_pos, node) in enumerate(nodes):
        child_classes = {egraph.find(ch) for ch in node.children}
        for m in child_classes:
            # (3)  x_i - sum_{j in e_m} x_j <= 0
            ub_rows.append(row)
            ub_cols.append(i)
            ub_vals.append(1.0)
            for j in class_node_indices[m]:
                ub_rows.append(row)
                ub_cols.append(j)
                ub_vals.append(-1.0)
            b_ub.append(0.0)
            row += 1

            if with_cycle_constraints and m != class_ids[cls_pos]:
                # (4)  t_g(i) - t_m - eps + A*(1 - x_i) >= 0   (real topo vars)
                #      t_g(i) - t_m + A*(1 - x_i) >= 1          (integer topo vars)
                # rewritten as  -t_g + t_m + A*x_i <= A - rhs_gap
                rhs_gap = 1.0 if integer_topo else eps
                ub_rows.append(row)
                ub_cols.append(n_nodes + cls_pos)
                ub_vals.append(-1.0)
                ub_rows.append(row)
                ub_cols.append(n_nodes + class_pos[m])
                ub_vals.append(1.0)
                ub_rows.append(row)
                ub_cols.append(i)
                ub_vals.append(big_a)
                b_ub.append(big_a - rhs_gap)
                row += 1
            elif with_cycle_constraints and m == class_ids[cls_pos]:
                # Self-loop e-node: can never be picked in an acyclic solution.
                ub_rows.append(row)
                ub_cols.append(i)
                ub_vals.append(1.0)
                b_ub.append(0.0)
                row += 1

    a_ub = sparse.csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(max(row, 1), n_vars))
    b_ub_arr = np.array(b_ub if b_ub else [0.0])
    if row == 0:
        # No inequality constraints at all (single-node e-graph); keep shapes consistent.
        a_ub = sparse.csr_matrix((1, n_vars))
        b_ub_arr = np.array([0.0])

    variables = ILPVariables(class_ids=class_ids, nodes=nodes, root_position=class_pos[root])
    return ILPProblem(
        c=c,
        a_ub=a_ub,
        b_ub=b_ub_arr,
        a_eq=a_eq,
        b_eq=b_eq,
        lower=lower,
        upper=upper,
        integrality=integrality,
        variables=variables,
        with_cycle_constraints=with_cycle_constraints,
        integer_topo=integer_topo,
        reduction=reduction,
    )


def warm_start_solution(problem: ILPProblem) -> Optional[Tuple[np.ndarray, float]]:
    """The greedy solution lifted into ``problem``'s variable space.

    Runs the bottom-up greedy fixpoint over the problem's own candidate lists
    (so the selection is consistent with whatever pruning produced them) and
    returns ``(x0, objective)`` where ``x0`` is a feasible assignment -- one
    selected e-node per demanded class, topological-order variables set from
    the selection's heights -- and ``objective`` is its DAG-aware cost
    ``c @ x0``.  Returns ``None`` when no acyclic greedy selection covers the
    root (every root candidate filtered, or a pathological negative-cost
    cycle), in which case the caller solves cold.
    """
    variables = problem.variables
    n_classes = variables.num_classes
    n_nodes = variables.num_nodes
    class_pos = {cid: pos for pos, cid in enumerate(variables.class_ids)}

    # Per class position: selectable candidate indices and their child positions.
    by_class: List[List[int]] = [[] for _ in range(n_classes)]
    child_positions: List[List[int]] = []
    for i, (cls_pos, node) in enumerate(variables.nodes):
        children = sorted({class_pos[ch] for ch in node.children})
        child_positions.append(children)
        if problem.upper[i] > 0.5 and cls_pos not in children:  # skip self-loops
            by_class[cls_pos].append(i)

    best_cost = [math.inf] * n_classes
    best_idx = [-1] * n_classes
    changed = True
    while changed:
        changed = False
        for cls in range(n_classes):
            for i in by_class[cls]:
                if any(best_idx[ch] < 0 for ch in child_positions[i]):
                    continue
                total = problem.c[i] + sum(best_cost[ch] for ch in child_positions[i])
                if total < best_cost[cls] - 1e-12:
                    best_cost[cls] = total
                    best_idx[cls] = i
                    changed = True

    root_pos = variables.root_position
    if best_idx[root_pos] < 0:
        return None

    # Collect the demanded classes (children-first); a cycle in the selection
    # (only possible with negative costs) voids the warm start.
    used: List[int] = []
    state: Dict[int, int] = {}  # 0/absent = unvisited, 1 = on stack, 2 = done
    dfs: List[Tuple[int, int]] = [(root_pos, 0)]  # (class position, next child slot)
    while dfs:
        cls, slot = dfs.pop()
        if slot == 0:
            if state.get(cls) == 2:
                continue
            state[cls] = 1
        children = child_positions[best_idx[cls]]
        descended = False
        while slot < len(children):
            ch = children[slot]
            slot += 1
            child_state = state.get(ch)
            if child_state == 1:
                return None  # cycle in the selection
            if child_state != 2:
                dfs.append((cls, slot))
                dfs.append((ch, 0))
                descended = True
                break
        if not descended:
            state[cls] = 2
            used.append(cls)

    x0 = np.zeros(problem.num_variables)
    objective = 0.0
    for cls in used:
        idx = best_idx[cls]
        x0[idx] = 1.0
        objective += float(problem.c[idx])

    if problem.with_cycle_constraints:
        # Topological order from selection heights: leaves 0, parents above.
        height = [0] * n_classes
        for cls in used:  # ``used`` is already children-first
            children = child_positions[best_idx[cls]]
            if children:
                height[cls] = 1 + max(height[ch] for ch in children)
        eps = 1.0 / (2 * max(n_classes, 1))
        scale = 1.0 if problem.integer_topo else eps
        for cls in used:
            x0[n_nodes + cls] = height[cls] * scale

    return x0, objective
