"""A small pure-Python branch-and-bound 0/1 MILP solver.

This is the fallback backend for :class:`~repro.egraph.extraction.ilp.ILPExtractor`
(the primary backend is ``scipy.optimize.milp`` / HiGHS).  It solves::

    min  c @ x
    s.t. A_ub @ x <= b_ub
         A_eq @ x == b_eq
         lower <= x <= upper
         x_i integer for integrality_i == 1

by LP-relaxation branch and bound using :func:`scipy.optimize.linprog` for the
relaxations.  It is intended for the small e-graphs exercised in unit tests
and as an independent cross-check of the HiGHS results, not for production
sized problems.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

__all__ = ["BnBResult", "incumbent_is_feasible", "solve_branch_and_bound"]


@dataclass
class BnBResult:
    """Result of the branch-and-bound solve."""

    x: Optional[np.ndarray]
    objective: float
    status: str  # "optimal", "infeasible", "timeout", "node_limit"
    nodes_explored: int
    seconds: float


def _solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, lower, upper):
    bounds = np.column_stack([lower, upper])
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    return res


def incumbent_is_feasible(
    x: np.ndarray,
    a_ub: sparse.csr_matrix,
    b_ub: np.ndarray,
    a_eq: sparse.csr_matrix,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    tol: float = 1e-6,
) -> bool:
    """Whether a candidate warm-start vector satisfies every constraint."""
    if x.shape != lower.shape:
        return False
    if np.any(x < lower - tol) or np.any(x > upper + tol):
        return False
    if a_ub.shape[0] and np.any(a_ub @ x > b_ub + tol):
        return False
    if a_eq.shape[0] and np.any(np.abs(a_eq @ x - b_eq) > tol):
        return False
    return True


def solve_branch_and_bound(
    c: np.ndarray,
    a_ub: sparse.csr_matrix,
    b_ub: np.ndarray,
    a_eq: sparse.csr_matrix,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    integrality: np.ndarray,
    time_limit: float = 60.0,
    node_limit: int = 10_000,
    tol: float = 1e-6,
    incumbent: Optional[Tuple[np.ndarray, float]] = None,
) -> BnBResult:
    """Depth-first branch and bound with best-known-incumbent pruning.

    ``incumbent`` optionally seeds the search with a known feasible solution
    ``(x, objective)`` -- typically the greedy extraction -- giving the solver
    an immediate upper bound: subtrees whose LP relaxation cannot beat it are
    pruned from the first node on.  An infeasible incumbent is ignored.
    """
    t0 = time.perf_counter()
    integer_vars = np.where(integrality > 0.5)[0]

    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    if incumbent is not None:
        x_in, obj_in = incumbent
        x_in = np.asarray(x_in, dtype=float)
        if incumbent_is_feasible(x_in, a_ub, b_ub, a_eq, b_eq, lower, upper, tol):
            best_x = x_in
            best_obj = float(obj_in)
    nodes_explored = 0
    status = "optimal"

    # Each stack entry is a (lower_bounds, upper_bounds) pair defining a subproblem.
    stack = [(lower.copy(), upper.copy())]

    while stack:
        if time.perf_counter() - t0 > time_limit:
            status = "timeout"
            break
        if nodes_explored >= node_limit:
            status = "node_limit"
            break

        lo, hi = stack.pop()
        nodes_explored += 1
        res = _solve_relaxation(c, a_ub, b_ub, a_eq, b_eq, lo, hi)
        if not res.success:
            continue  # infeasible subproblem
        if res.fun >= best_obj - tol:
            continue  # bound: cannot beat incumbent

        x = res.x
        # Find the most fractional integer variable.
        frac_var = -1
        frac_dist = tol
        for i in integer_vars:
            frac = abs(x[i] - round(x[i]))
            if frac > frac_dist:
                frac_dist = frac
                frac_var = i

        if frac_var < 0:
            # Integral (within tolerance) solution: round and record as incumbent.
            x_int = x.copy()
            x_int[integer_vars] = np.round(x_int[integer_vars])
            obj = float(c @ x_int)
            if obj < best_obj - tol:
                best_obj = obj
                best_x = x_int
            continue

        # Branch on frac_var: floor branch and ceil branch.
        floor_val = math.floor(x[frac_var])
        ceil_val = floor_val + 1

        lo_floor, hi_floor = lo.copy(), hi.copy()
        hi_floor[frac_var] = min(hi_floor[frac_var], floor_val)
        lo_ceil, hi_ceil = lo.copy(), hi.copy()
        lo_ceil[frac_var] = max(lo_ceil[frac_var], ceil_val)

        # Explore the branch suggested by the relaxation first (depth-first).
        if x[frac_var] - floor_val > 0.5:
            stack.append((lo_floor, hi_floor))
            stack.append((lo_ceil, hi_ceil))
        else:
            stack.append((lo_ceil, hi_ceil))
            stack.append((lo_floor, hi_floor))

    if best_x is None and status == "optimal":
        status = "infeasible"
    return BnBResult(
        x=best_x,
        objective=best_obj,
        status=status,
        nodes_explored=nodes_explored,
        seconds=time.perf_counter() - t0,
    )
