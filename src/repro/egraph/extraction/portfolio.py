"""Anytime/portfolio extraction under a wall-clock deadline.

The three extraction strategies trade optimality for time in a strict order:
greedy is near-instant but ignores sharing, branch-and-bound is exact but only
viable on small problems, and the HiGHS ILP is exact and scales furthest but
can still hit its time limit on saturated e-graphs.  The portfolio extractor
races them **sequentially** under one deadline:

1. ``greedy`` always runs (it is the feasibility guarantee -- the portfolio
   never raises on a tight deadline, it degrades to the greedy result);
2. ``bnb`` runs with a slice of the remaining budget, warm-started from the
   greedy incumbent;
3. ``ilp`` runs with everything left, warm-started via an objective cutoff,
   unless BnB already proved optimality.

The returned :class:`~repro.egraph.extraction.base.ExtractionResult` carries
per-stage provenance: ``stages`` maps each stage that ran to its wall time,
``stage_costs`` to the cost it achieved, and ``status`` is
``"portfolio_<winner>"`` with a ``"_fallback"`` suffix whenever the deadline
forced later stages to be skipped (the PR 4 regression-guard convention --
see ``docs/extraction.md``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.base import ExtractionResult, Extractor, NodeCost
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor, ILPSolveInfo

__all__ = ["PortfolioExtractor"]

#: A cost must improve on the incumbent by more than this to win a stage.
_COST_TOL = 1e-12


class PortfolioExtractor(Extractor):
    """Race greedy -> BnB -> ILP under a deadline; return the best feasible term.

    Parameters
    ----------
    node_cost:
        Additive per-e-node cost shared by every stage.
    deadline:
        Total wall-clock budget in seconds for all stages combined.
    filter_list / with_cycle_constraints / integer_topo / mip_rel_gap:
        Forwarded to the exact backends (same semantics as
        :class:`~repro.egraph.extraction.ilp.ILPExtractor`).
    reduce_problem / warm_start:
        Extraction-at-scale levers forwarded to the exact backends.
    ilp_time_limit:
        Upper cap on the ILP stage's slice even when the deadline leaves more.
    bnb_share:
        Fraction of the remaining budget handed to the BnB stage.
    min_stage_seconds:
        A stage is only attempted if at least this much budget remains.
    """

    def __init__(
        self,
        node_cost: NodeCost,
        deadline: float = 60.0,
        filter_list: Optional[FilterList] = None,
        with_cycle_constraints: bool = False,
        integer_topo: bool = False,
        mip_rel_gap: float = 0.0,
        reduce_problem: bool = True,
        warm_start: bool = True,
        ilp_time_limit: float = 3600.0,
        bnb_share: float = 0.25,
        min_stage_seconds: float = 0.05,
    ) -> None:
        if deadline <= 0:
            raise ValueError(f"portfolio deadline must be positive, got {deadline}")
        self.node_cost = node_cost
        self.deadline = deadline
        self.filter_list = filter_list
        self.with_cycle_constraints = with_cycle_constraints
        self.integer_topo = integer_topo
        self.mip_rel_gap = mip_rel_gap
        self.reduce_problem = reduce_problem
        self.warm_start = warm_start
        self.ilp_time_limit = ilp_time_limit
        self.bnb_share = bnb_share
        self.min_stage_seconds = min_stage_seconds
        self.last_solve_info: Optional[ILPSolveInfo] = None

    # ------------------------------------------------------------------ #

    def extract(self, egraph: EGraph, root: int) -> ExtractionResult:
        t0 = time.perf_counter()
        remaining = lambda: self.deadline - (time.perf_counter() - t0)  # noqa: E731

        stages: Dict[str, float] = {}
        stage_costs: Dict[str, float] = {}
        reduction: Optional[Dict[str, float]] = None
        self.last_solve_info = None

        # Stage 1: greedy -- the feasibility floor.  Always runs, regardless
        # of how little budget is left.
        greedy = GreedyExtractor(self.node_cost, filter_list=self.filter_list)
        best = greedy.extract(egraph, root)
        winner = "greedy"
        stages.update(best.stages)
        stage_costs.update(best.stage_costs)

        bnb_proved_optimal = False
        skipped = False

        # Stage 2: branch and bound with a budget slice and the greedy incumbent.
        bnb_budget = max(self.min_stage_seconds, remaining() * self.bnb_share)
        if remaining() >= self.min_stage_seconds:
            bnb = ILPExtractor(
                self.node_cost,
                with_cycle_constraints=self.with_cycle_constraints,
                integer_topo=self.integer_topo,
                filter_list=self.filter_list,
                time_limit=bnb_budget,
                backend="bnb",
                fallback_to_greedy=False,
                reduce_problem=self.reduce_problem,
                warm_start=self.warm_start,
            )
            try:
                candidate = bnb.extract(egraph, root)
            except RuntimeError:
                candidate = None
            if candidate is not None:
                for name, secs in candidate.stages.items():
                    stages[name] = stages.get(name, 0.0) + secs
                if "bnb" in candidate.stage_costs:
                    stage_costs["bnb"] = candidate.stage_costs["bnb"]
                if candidate.reduction is not None:
                    reduction = candidate.reduction
                self.last_solve_info = bnb.last_solve_info
                if candidate.status == "optimal":
                    bnb_proved_optimal = True
                if candidate.cost < best.cost - _COST_TOL:
                    best, winner = candidate, "bnb"
        else:
            skipped = True

        # Stage 3: the HiGHS ILP with everything left, unless BnB already
        # proved its answer optimal (re-solving would be pure waste).
        if bnb_proved_optimal:
            pass
        elif remaining() >= self.min_stage_seconds:
            ilp = ILPExtractor(
                self.node_cost,
                with_cycle_constraints=self.with_cycle_constraints,
                integer_topo=self.integer_topo,
                filter_list=self.filter_list,
                time_limit=min(remaining(), self.ilp_time_limit),
                backend="scipy",
                fallback_to_greedy=False,
                mip_rel_gap=self.mip_rel_gap,
                reduce_problem=self.reduce_problem,
                warm_start=self.warm_start,
            )
            try:
                candidate = ilp.extract(egraph, root)
            except RuntimeError:
                candidate = None
            if candidate is not None:
                for name, secs in candidate.stages.items():
                    stages[name] = stages.get(name, 0.0) + secs
                if "ilp" in candidate.stage_costs:
                    stage_costs["ilp"] = candidate.stage_costs["ilp"]
                if candidate.reduction is not None:
                    reduction = candidate.reduction
                self.last_solve_info = ilp.last_solve_info
                if candidate.cost < best.cost - _COST_TOL:
                    best, winner = candidate, "ilp"
        else:
            skipped = True

        status = f"portfolio_{winner}"
        if skipped:
            status += "_fallback"
        return ExtractionResult(
            expr=best.expr,
            cost=best.cost,
            choices=best.choices,
            solve_seconds=time.perf_counter() - t0,
            status=status,
            stages=stages,
            stage_costs=stage_costs,
            reduction=reduction,
        )
