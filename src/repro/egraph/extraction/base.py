"""Shared extraction interfaces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode, RecExpr

__all__ = ["NodeCost", "ExtractionResult", "Extractor", "dag_cost", "build_recexpr"]

#: Cost of a single e-node (independent of its children -- the paper's
#: additive cost model, Section 5).
NodeCost = Callable[[ENode, EGraph], float]


@dataclass
class ExtractionResult:
    """The outcome of extraction.

    ``cost`` is the DAG-aware cost: the sum of the cost of each *distinct*
    selected e-node (shared subgraphs counted once), which is the objective
    the ILP optimizes and the quantity the paper reports.

    ``stages`` breaks ``solve_seconds`` into pipeline stages (``"prune"`` /
    ``"greedy"`` / ``"bnb"`` / ``"ilp"``), ``stage_costs`` records the best
    cost each stage produced (portfolio provenance), and ``reduction`` is the
    :meth:`~repro.egraph.extraction.problem.ReductionStats.as_dict` of the
    problem-reduction pass when one ran.
    """

    expr: RecExpr
    cost: float
    choices: Dict[int, ENode] = field(default_factory=dict)
    solve_seconds: float = 0.0
    status: str = "ok"
    stages: Dict[str, float] = field(default_factory=dict)
    stage_costs: Dict[str, float] = field(default_factory=dict)
    reduction: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.expr is None:
            raise ValueError("extraction produced no expression")


class Extractor:
    """Base class for extractors."""

    def extract(self, egraph: EGraph, root: int) -> ExtractionResult:
        raise NotImplementedError


def used_choices(egraph: EGraph, root: int, choices: Dict[int, ENode]) -> Dict[int, ENode]:
    """The subset of ``choices`` reachable from ``root`` (the selected DAG)."""
    used: Dict[int, ENode] = {}
    stack = [egraph.find(root)]
    while stack:
        eclass = egraph.find(stack.pop())
        if eclass in used:
            continue
        node = choices.get(eclass)
        if node is None:
            raise ValueError(f"no extraction choice for e-class {eclass}")
        used[eclass] = node
        stack.extend(egraph.find(c) for c in node.children)
    return used


def dag_cost(
    egraph: EGraph,
    root: int,
    choices: Dict[int, ENode],
    node_cost: NodeCost,
) -> float:
    """DAG-aware cost of a selection: each selected e-node counted exactly once."""
    return sum(node_cost(node, egraph) for node in used_choices(egraph, root, choices).values())


def build_recexpr(
    egraph: EGraph,
    root: int,
    choices: Dict[int, ENode],
) -> RecExpr:
    """Build the extracted term from per-e-class choices, preserving sharing.

    Raises ``ValueError`` if the choices are cyclic (which would mean the
    selection does not correspond to a DAG).
    """
    expr = RecExpr()
    memo: Dict[int, int] = {}
    visiting: set = set()

    def go(eclass: int) -> int:
        eclass = egraph.find(eclass)
        if eclass in memo:
            return memo[eclass]
        if eclass in visiting:
            raise ValueError(f"cyclic extraction choice at e-class {eclass}")
        visiting.add(eclass)
        node = choices.get(eclass)
        if node is None:
            raise ValueError(f"no extraction choice for e-class {eclass}")
        child_indices = tuple(go(c) for c in node.children)
        visiting.discard(eclass)
        idx = expr.add(ENode(node.op, child_indices))
        memo[eclass] = idx
        return idx

    go(root)
    return expr
