"""Extraction: selecting the best represented term from an e-graph.

Two extractors are provided, matching the paper's Section 5:

* :class:`~repro.egraph.extraction.greedy.GreedyExtractor` -- bottom-up
  fixpoint that picks, per e-class, the e-node with the smallest subtree cost.
  Fast, but ignores sharing between subtrees and can therefore miss the
  optimum (paper Section 6.5, Table 4).
* :class:`~repro.egraph.extraction.ilp.ILPExtractor` -- 0/1 integer linear
  program over e-node selection variables, optionally with topological-order
  variables that forbid cycles (paper constraints (1)-(5)).
* :class:`~repro.egraph.extraction.portfolio.PortfolioExtractor` -- anytime
  racer (greedy -> BnB -> ILP) under a wall-clock deadline, returning the best
  feasible result with per-stage provenance (see ``docs/extraction.md``).

All extractors run on top of the shared problem-reduction pass in
:mod:`repro.egraph.extraction.problem` (dominated-node pruning + singleton
collapse) and can be warm-started from the greedy solution.
"""

from repro.egraph.extraction.base import ExtractionResult, Extractor
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.portfolio import PortfolioExtractor
from repro.egraph.extraction.problem import ReductionStats, build_extraction_problem, warm_start_solution

__all__ = [
    "ExtractionResult",
    "Extractor",
    "GreedyExtractor",
    "ILPExtractor",
    "PortfolioExtractor",
    "ReductionStats",
    "build_extraction_problem",
    "warm_start_solution",
]
