"""Extraction: selecting the best represented term from an e-graph.

Two extractors are provided, matching the paper's Section 5:

* :class:`~repro.egraph.extraction.greedy.GreedyExtractor` -- bottom-up
  fixpoint that picks, per e-class, the e-node with the smallest subtree cost.
  Fast, but ignores sharing between subtrees and can therefore miss the
  optimum (paper Section 6.5, Table 4).
* :class:`~repro.egraph.extraction.ilp.ILPExtractor` -- 0/1 integer linear
  program over e-node selection variables, optionally with topological-order
  variables that forbid cycles (paper constraints (1)-(5)).
"""

from repro.egraph.extraction.base import ExtractionResult, Extractor
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor

__all__ = ["ExtractionResult", "Extractor", "GreedyExtractor", "ILPExtractor"]
