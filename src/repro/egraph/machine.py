"""Compiled e-matching virtual machine.

The classical matcher in :mod:`repro.egraph.ematch` interprets the pattern
tree on every search, recursing through Python generators.  This module
follows egg's design instead: each :class:`~repro.egraph.pattern.Pattern` is
*compiled once* into a flat program of four instructions executed over an
explicit register list (e-class ids), with backtracking driven by an explicit
choice-point stack rather than recursion.

Instruction set
---------------

``Bind(op, arity, in_reg, out_reg)``
    Branch over every e-node with operator ``op`` / arity ``arity`` in the
    e-class held in ``regs[in_reg]``; for each, write its (canonicalised)
    child e-classes into ``regs[out_reg:out_reg + arity]``.  This is the only
    branching instruction, so it is the only place a choice point is pushed.

``Compare(reg_a, reg_b)``
    Fail unless both registers hold the same canonical e-class (a repeated
    pattern variable).

``Lookup(steps, reg)``
    Fail unless the e-class in ``regs[reg]`` represents the ground sub-term
    described by ``steps`` (a bottom-up tuple of ``(op, child_slots)``).  On a
    clean e-graph this is a pure hash-cons lookup; on a dirty one (mid
    iteration, unions pending) it degrades to a membership descent, which is
    what the interpretive matcher effectively does.

``Yield(names, regs)``
    Emit the substitution ``{name: regs[r]}`` and backtrack to enumerate the
    next match.

Incremental (delta) search
--------------------------

:class:`IncrementalMatcher` caches a pattern's match set per e-graph and, for
e-classes reported dirty since the previous search, re-searches only the
*delta closure*: the dirty classes plus their ancestors within ``depth``
parent hops, where ``depth`` is the pattern's operator depth.  Because
e-graphs grow monotonically, old matches never disappear (they only
canonicalise), so ``cached ∪ re-search(closure)`` equals a full search; see
``docs/ematching.md`` for the argument.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode
from repro.egraph.pattern import Pattern, PatternNode, PatternTerm, PatternVar

__all__ = [
    "Program",
    "compile_pattern",
    "vm_search_pattern",
    "vm_search_eclass",
    "delta_closure",
    "IncrementalMatcher",
    "match_sort_key",
]

# Opcodes (tuples keep the program flat and cheap to execute).
BIND, COMPARE, LOOKUP, YIELD = range(4)

#: Ground sub-terms with at least this many operator nodes are compiled to a
#: single Lookup instead of a chain of Binds.
_LOOKUP_MIN_NODES = 2


@dataclass(frozen=True)
class Program:
    """A compiled pattern: a flat instruction tuple plus metadata."""

    insts: Tuple[tuple, ...]
    n_regs: int
    #: Operator depth of the pattern (variables contribute 0).  The matcher
    #: observes class identities up to ``depth`` edges below a match root, so
    #: a new match can appear up to ``depth`` parent hops above a dirty class.
    depth: int
    #: Root operator, or ``None`` for the degenerate variable-root pattern.
    root_op: Optional[str]

    def __len__(self) -> int:
        return len(self.insts)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        names = {BIND: "Bind", COMPARE: "Compare", LOOKUP: "Lookup", YIELD: "Yield"}
        return "\n".join(f"{i:3d}  {names[inst[0]]}{inst[1:]}" for i, inst in enumerate(self.insts))


# Weak keys: programs live as long as some rule (or caller) holds the
# pattern, so dynamically-built patterns don't pin compiled programs forever.
_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Pattern, Program]" = weakref.WeakKeyDictionary()


def _is_ground(term: PatternTerm) -> bool:
    if isinstance(term, PatternVar):
        return False
    return all(_is_ground(c) for c in term.children)


def _ground_size(term: PatternNode) -> int:
    return 1 + sum(_ground_size(c) for c in term.children)


def _ground_steps(term: PatternNode) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """Flatten a ground term into bottom-up ``(op, child_slots)`` steps."""
    steps: List[Tuple[str, Tuple[int, ...]]] = []

    def go(t: PatternNode) -> int:
        slots = tuple(go(c) for c in t.children)
        steps.append((t.op, slots))
        return len(steps) - 1

    go(term)
    return tuple(steps)


def compile_pattern(pattern: Pattern) -> Program:
    """Compile ``pattern`` into a :class:`Program` (cached per pattern)."""
    cached = _PROGRAM_CACHE.get(pattern)
    if cached is not None:
        return cached

    insts: List[tuple] = []
    var_regs: Dict[str, int] = {}
    next_reg = 1
    todo: deque = deque([(0, pattern.root)])
    while todo:
        reg, term = todo.popleft()
        if isinstance(term, PatternVar):
            first = var_regs.get(term.name)
            if first is None:
                var_regs[term.name] = reg
            else:
                insts.append((COMPARE, reg, first))
        elif _is_ground(term) and _ground_size(term) >= _LOOKUP_MIN_NODES:
            insts.append((LOOKUP, _ground_steps(term), reg))
        else:
            out = next_reg
            next_reg += len(term.children)
            insts.append((BIND, term.op, len(term.children), reg, out))
            for i, child in enumerate(term.children):
                todo.append((out + i, child))

    order = pattern.variables()
    insts.append((YIELD, tuple(order), tuple(var_regs[name] for name in order)))

    root = pattern.root
    program = Program(
        insts=tuple(insts),
        n_regs=next_reg,
        depth=pattern.depth(),
        root_op=None if isinstance(root, PatternVar) else root.op,
    )
    _PROGRAM_CACHE[pattern] = program
    return program


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


def _ground_lookup_ok(egraph: EGraph, steps, eclass_id: int) -> bool:
    """Does ``eclass_id`` represent the ground term encoded by ``steps``?"""
    if egraph.is_clean():
        # Hash-cons path: evaluate the term bottom-up through the memo.
        values: List[int] = []
        for op, slots in steps:
            found = egraph.lookup(ENode(op, tuple(values[s] for s in slots)))
            if found is None:
                return False
            values.append(found)
        return values[-1] == egraph.find(eclass_id)

    # Dirty graph: the memo may miss congruent-but-unmerged nodes, so fall
    # back to the same membership descent the interpretive matcher performs.
    memo: Dict[Tuple[int, int], bool] = {}

    def represented(step: int, cls: int) -> bool:
        cls = egraph.find(cls)
        key = (step, cls)
        hit = memo.get(key)
        if hit is not None:
            return hit
        memo[key] = False  # cycle guard; e-graphs can be cyclic
        op, slots = steps[step]
        ok = False
        for node in egraph[cls].nodes:
            if node.op == op and len(node.children) == len(slots):
                if all(represented(s, c) for s, c in zip(slots, node.children)):
                    ok = True
                    break
        memo[key] = ok
        return ok

    return represented(len(steps) - 1, eclass_id)


def _execute(egraph: EGraph, program: Program, root_class: int) -> Iterable[Dict[str, int]]:
    """Run ``program`` rooted at ``root_class``, yielding raw substitutions."""
    insts = program.insts
    n = len(insts)
    find = egraph.find
    regs: List[int] = [find(root_class)]
    # Choice points: [pc, saved_reg_len, node_iterator, op, arity]
    stack: List[list] = []
    pc = 0

    while True:
        advanced = True
        while pc < n:
            inst = insts[pc]
            code = inst[0]
            if code == BIND:
                stack.append([pc, len(regs), iter(egraph[regs[inst[3]]].nodes), inst[1], inst[2]])
                advanced = False
                break
            if code == COMPARE:
                if find(regs[inst[1]]) != find(regs[inst[2]]):
                    advanced = False
                    break
                pc += 1
            elif code == LOOKUP:
                if not _ground_lookup_ok(egraph, inst[1], regs[inst[2]]):
                    advanced = False
                    break
                pc += 1
            else:  # YIELD -- emit, then backtrack for the next match.
                yield {name: find(regs[r]) for name, r in zip(inst[1], inst[2])}
                advanced = False
                break

        if advanced:  # defensive: a program always ends in YIELD
            return  # pragma: no cover

        # Backtrack: advance the most recent choice point with work left.
        while stack:
            frame = stack[-1]
            fpc, reg_len, node_iter, op, arity = frame
            node = None
            for candidate in node_iter:
                if candidate.op == op and len(candidate.children) == arity:
                    node = candidate
                    break
            if node is None:
                stack.pop()
                continue
            del regs[reg_len:]
            regs.extend(find(c) for c in node.children)
            pc = fpc + 1
            break
        else:
            return


def match_sort_key(match) -> tuple:
    """Deterministic ordering for match lists (root class, then bindings)."""
    return (match.eclass, tuple(sorted(match.subst.items())))


def _collect_matches(egraph: EGraph, program: Program, eclass_id: int, out: list) -> None:
    from repro.egraph.ematch import Match  # local import: ematch imports us

    eclass_id = egraph.find(eclass_id)
    seen: Set[tuple] = set()
    for subst in _execute(egraph, program, eclass_id):
        key = tuple(sorted(subst.items()))
        if key in seen:
            continue
        seen.add(key)
        out.append(Match(eclass=eclass_id, subst=subst))


def vm_search_eclass(egraph: EGraph, pattern: Pattern, eclass_id: int):
    """All matches of ``pattern`` rooted at ``eclass_id`` (compiled path)."""
    matches: list = []
    _collect_matches(egraph, compile_pattern(pattern), eclass_id, matches)
    matches.sort(key=match_sort_key)
    return matches


def vm_search_classes(egraph: EGraph, program: Program, classes: Sequence[int]):
    matches: list = []
    for eclass_id in classes:
        _collect_matches(egraph, program, eclass_id, matches)
    matches.sort(key=match_sort_key)
    return matches


def vm_search_pattern(egraph: EGraph, pattern: Pattern):
    """All matches of ``pattern`` anywhere in the e-graph (compiled path)."""
    from repro.egraph.ematch import Match

    program = compile_pattern(pattern)
    if program.root_op is None:
        name = pattern.root.name  # type: ignore[union-attr]
        matches = [Match(eclass=c.id, subst={name: c.id}) for c in egraph.classes()]
        matches.sort(key=match_sort_key)
        return matches
    candidates = sorted(egraph.classes_with_op(program.root_op))
    return vm_search_classes(egraph, program, candidates)


# --------------------------------------------------------------------- #
# Incremental (delta) search
# --------------------------------------------------------------------- #


def delta_closure(egraph: EGraph, classes: Iterable[int], depth: int) -> Set[int]:
    """Dirty classes plus ancestors within ``depth`` parent hops.

    A pattern of operator depth ``d`` rooted at class ``X`` observes the
    *node sets* of classes up to ``d - 1`` edges below ``X`` and the
    *identities* of classes up to ``d`` edges below (the children bound by
    variables or ground leaves at the deepest level -- a union there can
    satisfy a ``Compare`` that previously failed).  A change ``d`` edges
    below ``X`` therefore creates new matches at ``X``, so the closure must
    climb ``d`` parent hops from every dirty class.
    """
    find = egraph.find
    frontier = {find(c) for c in classes}
    closure = set(frontier)
    for _ in range(max(0, depth)):
        nxt: Set[int] = set()
        for cls in frontier:
            for _node, parent_class in egraph[cls].parents:
                parent = find(parent_class)
                if parent not in closure:
                    closure.add(parent)
                    nxt.add(parent)
        if not nxt:
            break
        frontier = nxt
    return closure


class IncrementalMatcher:
    """Cached match set for one pattern, updated from iteration deltas.

    ``search(egraph)`` performs a full compiled search.  ``search(egraph,
    delta=classes)`` re-searches only the delta closure and merges with the
    (re-canonicalised) cached matches, which is equivalent because e-graph
    growth is monotone.  The cache is tied to one e-graph; searching a
    different e-graph resets it.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.program = compile_pattern(pattern)
        self._egraph_ref: Optional[weakref.ref] = None
        self._matches: Optional[list] = None

    def reset(self) -> None:
        self._egraph_ref = None
        self._matches = None

    def search(self, egraph: EGraph, delta: Optional[Set[int]] = None) -> list:
        if self._egraph_ref is None or self._egraph_ref() is not egraph:
            self._matches = None
            self._egraph_ref = weakref.ref(egraph)

        program = self.program
        if delta is None or self._matches is None or program.root_op is None:
            result = vm_search_pattern(egraph, self.pattern)
            self._matches = result
            return list(result)

        closure = delta_closure(egraph, delta, program.depth)
        candidates = sorted(c for c in egraph.classes_with_op(program.root_op) if c in closure)
        fresh = vm_search_classes(egraph, program, candidates)

        merged: Dict[tuple, object] = {}
        for match in self._matches:
            canon = match.canonical(egraph)
            merged[match_sort_key(canon)] = canon
        for match in fresh:
            merged[match_sort_key(match)] = match
        result = [merged[key] for key in sorted(merged)]
        self._matches = result
        return list(result)
