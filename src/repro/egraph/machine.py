"""Compiled e-matching virtual machine.

The classical matcher in :mod:`repro.egraph.ematch` interprets the pattern
tree on every search, recursing through Python generators.  This module
follows egg's design instead: each :class:`~repro.egraph.pattern.Pattern` is
*compiled once* into a flat program of four instructions executed over an
explicit register list (e-class ids), with backtracking driven by an explicit
choice-point stack rather than recursion.

Instruction set
---------------

``Bind(op, arity, in_reg, out_reg)``
    Branch over every e-node with operator ``op`` / arity ``arity`` in the
    e-class held in ``regs[in_reg]``; for each, write its (canonicalised)
    child e-classes into ``regs[out_reg:out_reg + arity]``.  This is the only
    branching instruction, so it is the only place a choice point is pushed.

``Compare(reg_a, reg_b)``
    Fail unless both registers hold the same canonical e-class (a repeated
    pattern variable).

``Lookup(steps, reg)``
    Fail unless the e-class in ``regs[reg]`` represents the ground sub-term
    described by ``steps`` (a bottom-up tuple of ``(op, child_slots)``).  On a
    clean e-graph this is a pure hash-cons lookup; on a dirty one (mid
    iteration, unions pending) it degrades to a membership descent, which is
    what the interpretive matcher effectively does.

``Yield(names, regs)``
    Emit the substitution ``{name: regs[r]}`` and backtrack to enumerate the
    next match.

Incremental (delta) search
--------------------------

:class:`IncrementalMatcher` caches a pattern's match set per e-graph and, for
e-classes reported dirty since the previous search, re-searches only the
*delta closure*: the dirty classes plus their ancestors within ``depth``
parent hops, where ``depth`` is the pattern's operator depth.  Because
e-graphs grow monotonically, old matches never disappear (they only
canonicalise), so ``cached ∪ re-search(closure)`` equals a full search; see
``docs/ematching.md`` for the argument.

Shared-prefix rule trie
-----------------------

:func:`build_rule_trie` merges the compiled programs of many patterns into
one trie per root operator: programs whose instruction prefixes coincide
(compilation is deterministic, so structurally identical pattern prefixes
compile identically) share the corresponding ``Bind``/``Compare``/
``Lookup`` work, and ``Yield`` leaves carry rule ids.  One traversal of each
op-index bucket then produces ``(rule_id, match)`` pairs for every pattern at
once, replacing R independent VM sweeps.  :class:`TrieMatcher` is the
bucket-level analogue of :class:`IncrementalMatcher`: per-rule caches merged
with a re-search of each bucket's delta closure.

The trie is agnostic to what a pattern *is for*: the saturation runner admits
every single-pattern rule's LHS and every unique canonical multi-pattern
source pattern (``docs/multipattern.md``) into the same trie, so the heavy
multi-pattern rules ride the same one-traversal-per-bucket sweep as the
single-pattern ones.
"""

from __future__ import annotations

import weakref
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode
from repro.egraph.pattern import Pattern, PatternNode, PatternTerm, PatternVar

__all__ = [
    "Program",
    "compile_pattern",
    "vm_search_pattern",
    "vm_search_eclass",
    "delta_closure",
    "IncrementalMatcher",
    "match_sort_key",
    "RuleTrie",
    "build_rule_trie",
    "sweep_trie_buckets",
    "TrieMatcher",
]

# Opcodes (tuples keep the program flat and cheap to execute).
BIND, COMPARE, LOOKUP, YIELD = range(4)

#: Ground sub-terms with at least this many operator nodes are compiled to a
#: single Lookup instead of a chain of Binds.
_LOOKUP_MIN_NODES = 2


@dataclass(frozen=True)
class Program:
    """A compiled pattern: a flat instruction tuple plus metadata."""

    insts: Tuple[tuple, ...]
    n_regs: int
    #: Operator depth of the pattern (variables contribute 0).  The matcher
    #: observes class identities up to ``depth`` edges below a match root, so
    #: a new match can appear up to ``depth`` parent hops above a dirty class.
    depth: int
    #: Root operator, or ``None`` for the degenerate variable-root pattern.
    root_op: Optional[str]

    def __len__(self) -> int:
        return len(self.insts)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        names = {BIND: "Bind", COMPARE: "Compare", LOOKUP: "Lookup", YIELD: "Yield"}
        return "\n".join(f"{i:3d}  {names[inst[0]]}{inst[1:]}" for i, inst in enumerate(self.insts))


# Weak keys: programs live as long as some rule (or caller) holds the
# pattern, so dynamically-built patterns don't pin compiled programs forever.
_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Pattern, Program]" = weakref.WeakKeyDictionary()


def _is_ground(term: PatternTerm) -> bool:
    if isinstance(term, PatternVar):
        return False
    return all(_is_ground(c) for c in term.children)


def _ground_size(term: PatternNode) -> int:
    return 1 + sum(_ground_size(c) for c in term.children)


def _ground_steps(term: PatternNode) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """Flatten a ground term into bottom-up ``(op, child_slots)`` steps."""
    steps: List[Tuple[str, Tuple[int, ...]]] = []

    def go(t: PatternNode) -> int:
        slots = tuple(go(c) for c in t.children)
        steps.append((t.op, slots))
        return len(steps) - 1

    go(term)
    return tuple(steps)


def compile_pattern(pattern: Pattern) -> Program:
    """Compile ``pattern`` into a :class:`Program` (cached per pattern)."""
    cached = _PROGRAM_CACHE.get(pattern)
    if cached is not None:
        return cached

    insts: List[tuple] = []
    var_regs: Dict[str, int] = {}
    next_reg = 1
    todo: deque = deque([(0, pattern.root)])
    while todo:
        reg, term = todo.popleft()
        if isinstance(term, PatternVar):
            first = var_regs.get(term.name)
            if first is None:
                var_regs[term.name] = reg
            else:
                insts.append((COMPARE, reg, first))
        elif _is_ground(term) and _ground_size(term) >= _LOOKUP_MIN_NODES:
            insts.append((LOOKUP, _ground_steps(term), reg))
        else:
            out = next_reg
            next_reg += len(term.children)
            insts.append((BIND, term.op, len(term.children), reg, out))
            for i, child in enumerate(term.children):
                todo.append((out + i, child))

    order = pattern.variables()
    insts.append((YIELD, tuple(order), tuple(var_regs[name] for name in order)))

    root = pattern.root
    program = Program(
        insts=tuple(insts),
        n_regs=next_reg,
        depth=pattern.depth(),
        root_op=None if isinstance(root, PatternVar) else root.op,
    )
    _PROGRAM_CACHE[pattern] = program
    return program


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


def _ground_lookup_ok(egraph: EGraph, steps, eclass_id: int) -> bool:
    """Does ``eclass_id`` represent the ground term encoded by ``steps``?"""
    if egraph.is_clean():
        # Hash-cons path: evaluate the term bottom-up through the memo.
        values: List[int] = []
        for op, slots in steps:
            found = egraph.lookup(ENode(op, tuple(values[s] for s in slots)))
            if found is None:
                return False
            values.append(found)
        return values[-1] == egraph.find(eclass_id)

    # Dirty graph: the memo may miss congruent-but-unmerged nodes, so fall
    # back to the same membership descent the interpretive matcher performs.
    memo: Dict[Tuple[int, int], bool] = {}

    def represented(step: int, cls: int) -> bool:
        cls = egraph.find(cls)
        key = (step, cls)
        hit = memo.get(key)
        if hit is not None:
            return hit
        memo[key] = False  # cycle guard; e-graphs can be cyclic
        op, slots = steps[step]
        ok = False
        for node in egraph[cls].nodes:
            if node.op == op and len(node.children) == len(slots):
                if all(represented(s, c) for s, c in zip(slots, node.children)):
                    ok = True
                    break
        memo[key] = ok
        return ok

    return represented(len(steps) - 1, eclass_id)


def _execute(egraph: EGraph, program: Program, root_class: int) -> Iterable[Dict[str, int]]:
    """Run ``program`` rooted at ``root_class``, yielding raw substitutions."""
    insts = program.insts
    n = len(insts)
    find = egraph.find
    regs: List[int] = [find(root_class)]
    # Choice points: [pc, saved_reg_len, node_iterator, op, arity]
    stack: List[list] = []
    pc = 0

    while True:
        advanced = True
        while pc < n:
            inst = insts[pc]
            code = inst[0]
            if code == BIND:
                stack.append([pc, len(regs), iter(egraph[regs[inst[3]]].nodes), inst[1], inst[2]])
                advanced = False
                break
            if code == COMPARE:
                if find(regs[inst[1]]) != find(regs[inst[2]]):
                    advanced = False
                    break
                pc += 1
            elif code == LOOKUP:
                if not _ground_lookup_ok(egraph, inst[1], regs[inst[2]]):
                    advanced = False
                    break
                pc += 1
            else:  # YIELD -- emit, then backtrack for the next match.
                yield {name: find(regs[r]) for name, r in zip(inst[1], inst[2])}
                advanced = False
                break

        if advanced:  # defensive: a program always ends in YIELD
            return  # pragma: no cover

        # Backtrack: advance the most recent choice point with work left.
        while stack:
            frame = stack[-1]
            fpc, reg_len, node_iter, op, arity = frame
            node = None
            for candidate in node_iter:
                if candidate.op == op and len(candidate.children) == arity:
                    node = candidate
                    break
            if node is None:
                stack.pop()
                continue
            del regs[reg_len:]
            regs.extend(find(c) for c in node.children)
            pc = fpc + 1
            break
        else:
            return


def match_sort_key(match) -> tuple:
    """Deterministic ordering for match lists (root class, then bindings)."""
    return (match.eclass, tuple(sorted(match.subst.items())))


def _collect_matches(egraph: EGraph, program: Program, eclass_id: int, out: list) -> None:
    from repro.egraph.ematch import Match  # local import: ematch imports us

    eclass_id = egraph.find(eclass_id)
    seen: Set[tuple] = set()
    for subst in _execute(egraph, program, eclass_id):
        key = tuple(sorted(subst.items()))
        if key in seen:
            continue
        seen.add(key)
        out.append(Match(eclass=eclass_id, subst=subst))


def vm_search_eclass(egraph: EGraph, pattern: Pattern, eclass_id: int):
    """All matches of ``pattern`` rooted at ``eclass_id`` (compiled path)."""
    matches: list = []
    _collect_matches(egraph, compile_pattern(pattern), eclass_id, matches)
    matches.sort(key=match_sort_key)
    return matches


def vm_search_classes(egraph: EGraph, program: Program, classes: Sequence[int]):
    matches: list = []
    for eclass_id in classes:
        _collect_matches(egraph, program, eclass_id, matches)
    matches.sort(key=match_sort_key)
    return matches


def vm_search_pattern(egraph: EGraph, pattern: Pattern):
    """All matches of ``pattern`` anywhere in the e-graph (compiled path)."""
    from repro.egraph.ematch import Match

    program = compile_pattern(pattern)
    if program.root_op is None:
        name = pattern.root.name  # type: ignore[union-attr]
        matches = [Match(eclass=c.id, subst={name: c.id}) for c in egraph.classes()]
        matches.sort(key=match_sort_key)
        return matches
    candidates = sorted(egraph.classes_with_op(program.root_op))
    return vm_search_classes(egraph, program, candidates)


# --------------------------------------------------------------------- #
# Incremental (delta) search
# --------------------------------------------------------------------- #


def delta_closure(egraph: EGraph, classes: Iterable[int], depth: int) -> Set[int]:
    """Dirty classes plus ancestors within ``depth`` parent hops.

    A pattern of operator depth ``d`` rooted at class ``X`` observes the
    *node sets* of classes up to ``d - 1`` edges below ``X`` and the
    *identities* of classes up to ``d`` edges below (the children bound by
    variables or ground leaves at the deepest level -- a union there can
    satisfy a ``Compare`` that previously failed).  A change ``d`` edges
    below ``X`` therefore creates new matches at ``X``, so the closure must
    climb ``d`` parent hops from every dirty class.
    """
    find = egraph.find
    frontier = {find(c) for c in classes}
    closure = set(frontier)
    for _ in range(max(0, depth)):
        nxt: Set[int] = set()
        for cls in frontier:
            for _node, parent_class in egraph[cls].parents:
                parent = find(parent_class)
                if parent not in closure:
                    closure.add(parent)
                    nxt.add(parent)
        if not nxt:
            break
        frontier = nxt
    return closure


class IncrementalMatcher:
    """Cached match set for one pattern, updated from iteration deltas.

    ``search(egraph)`` performs a full compiled search.  ``search(egraph,
    delta=classes)`` re-searches only the delta closure and merges with the
    (re-canonicalised) cached matches, which is equivalent because e-graph
    growth is monotone.  The cache is tied to one e-graph; searching a
    different e-graph resets it.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.program = compile_pattern(pattern)
        self._egraph_ref: Optional[weakref.ref] = None
        self._matches: Optional[list] = None

    def reset(self) -> None:
        self._egraph_ref = None
        self._matches = None

    def search(self, egraph: EGraph, delta: Optional[Set[int]] = None) -> list:
        if self._egraph_ref is None or self._egraph_ref() is not egraph:
            self._matches = None
            self._egraph_ref = weakref.ref(egraph)

        program = self.program
        if delta is None or self._matches is None or program.root_op is None:
            result = vm_search_pattern(egraph, self.pattern)
            self._matches = result
            return list(result)

        closure = delta_closure(egraph, delta, program.depth)
        candidates = sorted(c for c in egraph.classes_with_op(program.root_op) if c in closure)
        fresh = vm_search_classes(egraph, program, candidates)

        merged: Dict[tuple, object] = {}
        for match in self._matches:
            canon = match.canonical(egraph)
            merged[match_sort_key(canon)] = canon
        for match in fresh:
            merged[match_sort_key(match)] = match
        result = [merged[key] for key in sorted(merged)]
        self._matches = result
        return list(result)


# --------------------------------------------------------------------- #
# Shared-prefix rule trie
# --------------------------------------------------------------------- #


class _TrieNode:
    """One instruction in a combined rule program, plus its continuations."""

    __slots__ = ("inst", "children", "yields")

    def __init__(self, inst: tuple) -> None:
        self.inst = inst
        self.children: List["_TrieNode"] = []
        # Populated on Yield nodes only: (rule_id, names, registers).
        self.yields: List[Tuple[int, Tuple[str, ...], Tuple[int, ...]]] = []


@dataclass
class _TrieBucket:
    """All rule programs sharing one root operator, merged into a trie."""

    root_op: str
    children: List[_TrieNode] = field(default_factory=list)
    n_regs: int = 1
    #: Max operator depth across the bucket's patterns; the delta closure must
    #: climb this many parent hops (a superset per rule is sound: see docs).
    depth: int = 0
    rule_ids: List[int] = field(default_factory=list)
    n_insts: int = 0  # trie nodes after prefix sharing
    n_insts_unshared: int = 0  # sum of the per-rule program lengths


@dataclass
class RuleTrie:
    """Every rule's compiled program, bucketed by root op with shared prefixes."""

    n_rules: int
    buckets: Dict[str, _TrieBucket]
    #: Degenerate variable-root rules: (rule_id, variable name).  They match
    #: every e-class, so they are answered by a single scan, not the trie.
    var_rules: List[Tuple[int, str]]

    def sharing_stats(self) -> Dict[str, int]:
        """How many instructions prefix sharing eliminated."""
        shared = sum(b.n_insts for b in self.buckets.values())
        unshared = sum(b.n_insts_unshared for b in self.buckets.values())
        return {
            "buckets": len(self.buckets),
            "insts_unshared": unshared,
            "insts_shared": shared,
            "insts_saved": unshared - shared,
        }


def build_rule_trie(patterns: Sequence[Pattern]) -> RuleTrie:
    """Merge the compiled programs of ``patterns`` (indexed by rule id).

    Compilation is deterministic (breadth-first, registers allocated in
    instruction order), so two patterns with a common structural prefix
    compile to programs with an identical instruction prefix; the trie merges
    exactly those.  Register indices stay valid because every root-to-leaf
    path reproduces one rule's full program: allocation along the shared
    prefix is the same for all rules below it.
    """
    buckets: Dict[str, _TrieBucket] = {}
    var_rules: List[Tuple[int, str]] = []
    for rule_id, pattern in enumerate(patterns):
        program = compile_pattern(pattern)
        if program.root_op is None:
            var_rules.append((rule_id, pattern.root.name))  # type: ignore[union-attr]
            continue
        bucket = buckets.get(program.root_op)
        if bucket is None:
            bucket = buckets[program.root_op] = _TrieBucket(root_op=program.root_op)
        bucket.rule_ids.append(rule_id)
        bucket.n_regs = max(bucket.n_regs, program.n_regs)
        bucket.depth = max(bucket.depth, program.depth)
        bucket.n_insts_unshared += len(program.insts)

        children = bucket.children
        for inst in program.insts[:-1]:
            for child in children:
                if child.inst == inst:
                    node = child
                    break
            else:
                node = _TrieNode(inst)
                children.append(node)
                bucket.n_insts += 1
            children = node.children

        yield_inst = program.insts[-1]  # every program ends in Yield
        for child in children:
            if child.inst[0] == YIELD:
                ynode = child
                break
        else:
            ynode = _TrieNode((YIELD,))
            children.append(ynode)
            bucket.n_insts += 1
        ynode.yields.append((rule_id, yield_inst[1], yield_inst[2]))
    return RuleTrie(n_rules=len(patterns), buckets=buckets, var_rules=var_rules)


def _run_trie_class(egraph: EGraph, bucket: _TrieBucket, eclass_id: int, emit) -> None:
    """Run every program of ``bucket`` rooted at ``eclass_id`` in one traversal."""
    find = egraph.find
    regs: List[int] = [0] * bucket.n_regs
    regs[0] = find(eclass_id)

    def run(node: _TrieNode) -> None:
        inst = node.inst
        code = inst[0]
        if code == BIND:
            op, arity, in_reg, out = inst[1], inst[2], inst[3], inst[4]
            for enode in egraph[regs[in_reg]].nodes:
                if enode.op == op and len(enode.children) == arity:
                    for i, child_class in enumerate(enode.children):
                        regs[out + i] = find(child_class)
                    for child in node.children:
                        run(child)
        elif code == COMPARE:
            if find(regs[inst[1]]) == find(regs[inst[2]]):
                for child in node.children:
                    run(child)
        elif code == LOOKUP:
            if _ground_lookup_ok(egraph, inst[1], regs[inst[2]]):
                for child in node.children:
                    run(child)
        else:  # YIELD leaf: emit one substitution per rule ending here.
            for rule_id, names, rregs in node.yields:
                emit(rule_id, {name: find(regs[r]) for name, r in zip(names, rregs)})

    for child in bucket.children:
        run(child)


def trie_search_classes(
    egraph: EGraph, bucket: _TrieBucket, classes: Sequence[int], out: Dict[int, list]
) -> None:
    """Search ``classes`` with ``bucket``, appending matches into ``out[rule_id]``.

    Deduplication is per ``(rule, root class)``, mirroring the per-program
    collection in :func:`vm_search_classes`; callers sort each rule's list
    with :func:`match_sort_key` afterwards.
    """
    from repro.egraph.ematch import Match  # local import: ematch imports us

    for eclass_id in classes:
        root = egraph.find(eclass_id)
        seen: Set[tuple] = set()

        def emit(rule_id: int, subst: Dict[str, int], _root=root, _seen=seen) -> None:
            key = (rule_id, tuple(sorted(subst.items())))
            if key in _seen:
                return
            _seen.add(key)
            out[rule_id].append(Match(eclass=_root, subst=subst))

        _run_trie_class(egraph, bucket, root, emit)


def sweep_trie_buckets(
    egraph, trie: RuleTrie, work: Sequence[Tuple[str, Sequence[int]]]
) -> Dict[int, list]:
    """Sweep the given ``(op, candidates)`` bucket assignments of ``trie``.

    This is the shard unit of parallel search (:mod:`repro.egraph.parallel`):
    each rule lives in exactly one bucket and deduplication in
    :func:`trie_search_classes` is local to one (bucket, root class) sweep, so
    any partition of the buckets across workers yields the same per-rule match
    multiset as one serial sweep.  ``egraph`` may be a live :class:`EGraph` or
    a read-only :class:`repro.egraph.parallel.EGraphSnapshot` -- only ``find``,
    class node lists, and hash-cons ``lookup`` are touched, and nothing is
    mutated.  Returns ``rule_id -> unsorted match list`` with only the rule
    ids that produced matches.
    """
    out: Dict[int, list] = defaultdict(list)
    for op, candidates in work:
        trie_search_classes(egraph, trie.buckets[op], candidates, out)
    return dict(out)


class TrieMatcher:
    """Incremental matcher for many patterns at once (one trie per root op).

    The ``patterns`` sequence may mix single-pattern rule LHSs with canonical
    multi-pattern source patterns; results are returned per input index, so
    the caller decides which slices feed which consumer (the runner maps
    indices ``>= n_single`` back to canonical-pattern keys).

    ``search_all(egraph)`` walks each op bucket's trie over that op's
    candidate classes and returns one deterministically ordered match list
    per rule -- identical, rule for rule, to running each pattern's own
    program (and to the naive matcher).  ``search_all(egraph, delta=...)``
    re-searches only each bucket's delta closure and merges with the
    per-rule caches, exactly like :class:`IncrementalMatcher` but with the
    closure walk and candidate scan paid once per bucket instead of once per
    rule.
    """

    def __init__(self, patterns: Sequence[Pattern]) -> None:
        self.patterns = list(patterns)
        self.trie = build_rule_trie(self.patterns)
        self._egraph_ref: Optional[weakref.ref] = None
        # None entries mark patterns whose maintenance was skipped (see
        # ``search_all``); a wholly-None cache means "never searched".
        self._cache: Optional[List[Optional[list]]] = None

    def reset(self) -> None:
        self._egraph_ref = None
        self._cache = None

    def fork(self) -> "TrieMatcher":
        """A matcher sharing this one's compiled trie but with fresh cache state.

        The patterns and trie are immutable after construction, so they are
        shared by reference; the per-e-graph incremental cache is private to
        each fork.  This is how ``optimize_many`` runs concurrent sessions
        under one compiled trie without their delta caches corrupting each
        other.
        """
        clone = TrieMatcher.__new__(TrieMatcher)
        clone.patterns = self.patterns
        clone.trie = self.trie
        clone._egraph_ref = None
        clone._cache = None
        return clone

    def _sweep(
        self,
        egraph: EGraph,
        op_candidates: Dict[str, List[int]],
        executor,
    ) -> Dict[int, list]:
        """Sweep the op buckets over their candidate lists, sharded or not.

        With ``executor=None`` this is the original serial bucket loop.  With
        an executor, shards come back as per-shard ``rule_id -> matches``
        dicts and are concatenated; every consumer below either sorts the
        final per-rule list (full path) or merges through a key-sorted dict
        (delta path), so concatenation order cannot affect results.
        """
        if executor is None:
            return sweep_trie_buckets(egraph, self.trie, list(op_candidates.items()))
        merged: Dict[int, list] = {}
        for partial in executor.run(self, egraph, op_candidates):
            for rule_id, matches in partial.items():
                merged.setdefault(rule_id, []).extend(matches)
        return merged

    def _var_rule_matches(self, egraph: EGraph, name: str) -> list:
        from repro.egraph.ematch import Match

        matches = [Match(eclass=c.id, subst={name: c.id}) for c in egraph.classes()]
        matches.sort(key=match_sort_key)
        return matches

    def search_all(
        self,
        egraph: EGraph,
        delta: Optional[Set[int]] = None,
        skip: Iterable[int] = (),
        executor=None,
    ) -> List[list]:
        """One match list per pattern index; ``skip`` suppresses maintenance.

        Indices in ``skip`` return ``[]`` and their caches are dropped rather
        than merged -- the runner passes the multi-pattern trie slots here
        once the ``k_multi`` window has closed, so their (potentially large)
        cached match lists are not re-canonicalised and re-sorted every
        remaining iteration for results nobody reads.  Skipping is cheap to
        undo but not free: a previously skipped index that is searched again
        has no trustworthy cache, so the next call falls back to a full
        search for every pattern.

        ``executor`` (a :mod:`repro.egraph.parallel` search executor, or
        ``None`` for the in-line sweep) only changes *where* bucket sweeps
        run; candidate selection, cache merging, and the deterministic
        per-rule sort all stay here on the driver.
        """
        if self._egraph_ref is None or self._egraph_ref() is not egraph:
            self._cache = None
            self._egraph_ref = weakref.ref(egraph)

        n = len(self.patterns)
        skipped = set(skip)
        if self._cache is not None and any(
            self._cache[i] is None for i in range(n) if i not in skipped
        ):
            # A formerly skipped pattern is active again; its cache is stale
            # beyond repair, so re-search everything.
            self._cache = None

        if delta is None or self._cache is None:
            op_candidates = {
                op: sorted(egraph.classes_with_op(op)) for op in self.trie.buckets
            }
            swept = self._sweep(egraph, op_candidates, executor)
            per_rule: Dict[int, list] = {i: swept.get(i, []) for i in range(n)}
            for i in range(n):
                if i not in skipped:
                    per_rule[i].sort(key=match_sort_key)
            for rule_id, name in self.trie.var_rules:
                if rule_id not in skipped:
                    per_rule[rule_id] = self._var_rule_matches(egraph, name)
            self._cache = [
                None if i in skipped else per_rule[i] for i in range(n)
            ]
            return [[] if m is None else list(m) for m in self._cache]

        # Delta path: one closure walk per distinct bucket depth.  Closures
        # need the live e-graph's parent lists, so they are always computed
        # here on the driver; workers only ever see explicit candidate lists,
        # which is why delta search shards exactly like full search.
        closures: Dict[int, Set[int]] = {}
        op_candidates = {}
        for op, bucket in self.trie.buckets.items():
            closure = closures.get(bucket.depth)
            if closure is None:
                closure = closures[bucket.depth] = delta_closure(egraph, delta, bucket.depth)
            candidates = sorted(c for c in egraph.classes_with_op(op) if c in closure)
            if candidates:
                op_candidates[op] = candidates
        swept = self._sweep(egraph, op_candidates, executor)
        fresh: Dict[int, list] = {i: swept.get(i, []) for i in range(n)}

        results: List[Optional[list]] = []
        for i in range(n):
            if i in skipped:
                results.append(None)
                continue
            merged: Dict[tuple, object] = {}
            for match in self._cache[i]:
                canon = match.canonical(egraph)
                merged[match_sort_key(canon)] = canon
            for match in fresh[i]:
                merged[match_sort_key(match)] = match
            results.append([merged[key] for key in sorted(merged)])
        for rule_id, name in self.trie.var_rules:
            if rule_id not in skipped:
                results[rule_id] = self._var_rule_matches(egraph, name)
        self._cache = results
        return [[] if m is None else list(m) for m in results]
