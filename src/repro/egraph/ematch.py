"""E-matching: searching for pattern matches in an e-graph.

Given a pattern ``l`` (a term with variables) and an e-graph, e-matching finds
all substitutions ``sigma`` (variable -> e-class) and root e-classes such that
``l[sigma]`` is represented by the root e-class (paper Section 2.2).

Three search paths live behind the same contract:

* the **compiled virtual machine** (:mod:`repro.egraph.machine`), which runs a
  flat per-pattern instruction program over explicit registers -- this is what
  :func:`search_pattern` / :func:`search_eclass` use;
* the **shared-prefix rule trie** (:class:`~repro.egraph.machine.TrieMatcher`),
  which merges every rule's program into one trie per root operator and
  matches all rules in a single traversal per op bucket -- the saturation
  runner's default search mode;
* the **naive backtracking matcher** (:func:`naive_search_pattern` /
  :func:`naive_search_eclass`), the original interpretive implementation that
  re-walks the pattern tree through recursive generators.  It is kept as the
  executable specification: the equivalence tests and ``benchmarks/
  bench_ematch.py`` check the compiled paths against it.

All three return the same canonical match sets in the same deterministic
order (sorted by root e-class, then bindings), so they are interchangeable
trajectory-for-trajectory in the saturation runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import Pattern, PatternTerm, PatternVar, Substitution

__all__ = [
    "Match",
    "search_pattern",
    "search_eclass",
    "count_matches",
    "naive_search_pattern",
    "naive_search_eclass",
]


@dataclass(frozen=True)
class Match:
    """A single pattern match: the root e-class and the variable bindings."""

    eclass: int
    subst: Dict[str, int]

    def canonical(self, egraph: EGraph) -> "Match":
        return Match(
            eclass=egraph.find(self.eclass),
            subst={k: egraph.find(v) for k, v in self.subst.items()},
        )


# --------------------------------------------------------------------- #
# Default interface: thin wrappers over the compiled VM
# --------------------------------------------------------------------- #


def search_pattern(egraph: EGraph, pattern: Pattern) -> List[Match]:
    """All matches of ``pattern`` anywhere in the e-graph (compiled VM)."""
    from repro.egraph.machine import vm_search_pattern

    return vm_search_pattern(egraph, pattern)


def search_eclass(egraph: EGraph, pattern: Pattern, eclass_id: int) -> List[Match]:
    """All matches of ``pattern`` rooted at ``eclass_id`` (compiled VM)."""
    from repro.egraph.machine import vm_search_eclass

    return vm_search_eclass(egraph, pattern, eclass_id)


def count_matches(egraph: EGraph, pattern: Pattern) -> int:
    return len(search_pattern(egraph, pattern))


# --------------------------------------------------------------------- #
# Naive backtracking matcher (reference implementation)
# --------------------------------------------------------------------- #


def _match_term(
    egraph: EGraph,
    term: PatternTerm,
    eclass_id: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    """Yield all extensions of ``subst`` matching ``term`` against ``eclass_id``."""
    eclass_id = egraph.find(eclass_id)

    if isinstance(term, PatternVar):
        bound = subst.get(term.name)
        if bound is None:
            new_subst = dict(subst)
            new_subst[term.name] = eclass_id
            yield new_subst
        elif egraph.find(bound) == eclass_id:
            yield subst
        return

    arity = len(term.children)
    for enode in egraph[eclass_id].nodes:
        if enode.op != term.op or len(enode.children) != arity:
            continue
        if arity == 0:
            yield subst
            continue
        # Match children left-to-right, threading the substitution.
        stack: List[Substitution] = [subst]
        for child_term, child_class in zip(term.children, enode.children):
            next_stack: List[Substitution] = []
            for s in stack:
                next_stack.extend(_match_term(egraph, child_term, child_class, s))
            stack = next_stack
            if not stack:
                break
        for s in stack:
            yield s


def naive_search_eclass(egraph: EGraph, pattern: Pattern, eclass_id: int) -> List[Match]:
    """All matches of ``pattern`` rooted at ``eclass_id`` (interpretive matcher)."""
    from repro.egraph.machine import match_sort_key

    eclass_id = egraph.find(eclass_id)
    results: List[Match] = []
    seen = set()
    for subst in _match_term(egraph, pattern.root, eclass_id, {}):
        canon = {k: egraph.find(v) for k, v in subst.items()}
        key = tuple(sorted(canon.items()))
        if key in seen:
            continue
        seen.add(key)
        results.append(Match(eclass=eclass_id, subst=canon))
    results.sort(key=match_sort_key)
    return results


def naive_search_pattern(egraph: EGraph, pattern: Pattern) -> List[Match]:
    """All matches of ``pattern`` anywhere in the e-graph (interpretive matcher).

    The search is seeded from e-classes that contain at least one e-node whose
    operator equals the pattern root's operator, which avoids a full scan per
    e-class for selective patterns.
    """
    from repro.egraph.machine import match_sort_key

    root = pattern.root
    matches: List[Match] = []

    if isinstance(root, PatternVar):
        # Degenerate: matches every e-class with an empty binding to itself.
        for eclass in egraph.classes():
            matches.append(Match(eclass=eclass.id, subst={root.name: eclass.id}))
        matches.sort(key=match_sort_key)
        return matches

    by_op = egraph.nodes_by_op().get(root.op, [])
    candidate_classes = sorted({egraph.find(eclass_id) for eclass_id, _ in by_op})
    for eclass_id in candidate_classes:
        matches.extend(naive_search_eclass(egraph, pattern, eclass_id))
    return matches
