"""E-class analyses.

An e-class analysis (egg, Willsey et al. 2020) attaches a small piece of data
to every e-class and keeps it up to date as the e-graph grows and e-classes
merge.  TENSAT uses an analysis to store tensor metadata (shape, layout,
split locations) which the shape-checking preconditions of rewrite rules and
the cost model both consult (paper Section 6).

The protocol mirrors egg's:

* :meth:`Analysis.make` computes data for a *new* e-node from its children's data.
* :meth:`Analysis.merge` combines the data of two e-classes being unioned and
  reports whether the merged value differs from either input (so the e-graph
  knows to re-propagate).
* :meth:`Analysis.modify` may inspect/extend an e-class after its data changed.

Reentrancy contract: ``modify`` may call ``egraph.add`` / ``egraph.union``
(constant folding does exactly that) *including* while a rebuild wave is in
flight.  The e-graph guarantees that classes created or merged by a
reentrant hook are themselves repaired before
:meth:`~repro.egraph.egraph.EGraph.rebuild` returns -- reentrant work lands
on the live worklists and is drained by a later wave.  ``make`` and
``merge`` must stay pure (no e-graph mutation): only ``modify`` may
re-enter.

The tensor analysis used by TENSAT proper lives in
:mod:`repro.egraph.shapeanalysis` (interned per-e-class tensor facts);
:class:`ConstantFoldAnalysis` below is the small didactic analysis the unit
tests drive the reentrancy contract with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.egraph.egraph import EGraph
    from repro.egraph.language import ENode

__all__ = ["Analysis", "NoAnalysis", "DepthAnalysis", "ConstantFoldAnalysis"]


class Analysis:
    """Base class for e-class analyses.  Subclass and override the hooks."""

    def make(self, egraph: "EGraph", enode: "ENode") -> Any:
        """Compute the analysis data for a freshly added e-node."""
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Tuple[Any, bool]:
        """Merge data from two e-classes being unioned.

        Returns ``(merged, changed)`` where ``changed`` indicates the merged
        value differs from ``a`` (the surviving class's previous data).
        """
        raise NotImplementedError

    def modify(self, egraph: "EGraph", eclass_id: int) -> None:
        """Optional hook run after an e-class's data is created or updated."""


class NoAnalysis(Analysis):
    """The trivial analysis: every e-class carries ``None``."""

    def make(self, egraph: "EGraph", enode: "ENode") -> None:
        return None

    def merge(self, a: None, b: None) -> Tuple[None, bool]:
        return None, False


class DepthAnalysis(Analysis):
    """Tracks the minimum term depth represented by each e-class.

    Used in tests and as a simple example of a lattice-style analysis: the
    merge takes the minimum, and adding smaller terms can only decrease it.
    """

    def make(self, egraph: "EGraph", enode: "ENode") -> int:
        if not enode.children:
            return 1
        return 1 + max(egraph.analysis_data(c) for c in enode.children)

    def merge(self, a: int, b: int) -> Tuple[int, bool]:
        merged = min(a, b)
        return merged, merged != a


class ConstantFoldAnalysis(Analysis):
    """Example analysis: fold integer arithmetic (``+``, ``*``, ``<<``).

    Only used by unit tests and documentation examples; the tensor analysis
    used by TENSAT proper lives in :mod:`repro.egraph.shapeanalysis`.  Its
    ``modify`` hook re-enters the e-graph (``add`` + ``union`` of the folded
    constant), which makes it the canonical exercise of the rebuild
    reentrancy contract documented in the module docstring.
    """

    _OPS = {
        "+": lambda a, b: a + b,
        "*": lambda a, b: a * b,
        "<<": lambda a, b: a << b,
        "-": lambda a, b: a - b,
    }

    def make(self, egraph: "EGraph", enode: "ENode") -> Optional[int]:
        if not enode.children:
            try:
                return int(enode.op)
            except ValueError:
                return None
        fn = self._OPS.get(enode.op)
        if fn is None or len(enode.children) != 2:
            return None
        a = egraph.analysis_data(enode.children[0])
        b = egraph.analysis_data(enode.children[1])
        if a is None or b is None:
            return None
        return fn(a, b)

    def merge(self, a: Optional[int], b: Optional[int]) -> Tuple[Optional[int], bool]:
        if a is None and b is not None:
            return b, True
        return a, False

    def modify(self, egraph: "EGraph", eclass_id: int) -> None:
        value = egraph.analysis_data(eclass_id)
        if value is None:
            return
        from repro.egraph.language import ENode

        const_id = egraph.add(ENode(str(value)))
        egraph.union(eclass_id, const_id)
