"""The exploration-phase driver (saturation runner).

The runner repeatedly searches and applies rewrite rules until one of:

* **saturation** -- an iteration adds no new information to the e-graph,
* the e-graph exceeds a node limit (paper: ``N_max = 50000``),
* an iteration limit is reached (paper: ``k_max = 15``),
* a wall-clock time limit is reached.

Multi-pattern rules grow the e-graph double-exponentially (paper Section 4),
so they are only applied for the first ``k_multi`` iterations; afterwards only
single-pattern rules run.

Cycle filtering (paper Section 5.2) plugs in as a :class:`~repro.egraph.cycles.CycleFilter`
strategy: a per-iteration setup hook, a per-match ``allows`` check, and a
post-processing hook.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.egraph.cycles import CycleFilter, EfficientCycleFilter, FilterList, NoCycleFilter, VanillaCycleFilter
from repro.egraph.egraph import EGraph
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.egraph.rewrite import Rewrite

__all__ = ["StopReason", "IterationReport", "RunnerReport", "RunnerLimits", "Runner", "make_cycle_filter"]


class StopReason(enum.Enum):
    """Why the exploration phase terminated."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class IterationReport:
    """Statistics for one exploration iteration."""

    index: int
    n_matches: int = 0
    n_applied: int = 0
    n_skipped_cycle: int = 0
    n_cycles_resolved: int = 0
    n_enodes: int = 0
    n_eclasses: int = 0
    seconds: float = 0.0
    applied_multi: bool = False
    n_rules_banned: int = 0


@dataclass
class RunnerReport:
    """Aggregate exploration report."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    total_seconds: float = 0.0
    n_enodes: int = 0
    n_eclasses: int = 0
    n_filtered: int = 0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def summary(self) -> Dict[str, object]:
        return {
            "stop_reason": self.stop_reason.value,
            "iterations": self.num_iterations,
            "seconds": round(self.total_seconds, 4),
            "enodes": self.n_enodes,
            "eclasses": self.n_eclasses,
            "filtered_nodes": self.n_filtered,
        }


@dataclass
class RunnerLimits:
    """Exploration limits (paper Section 6.1 defaults)."""

    node_limit: int = 50_000
    iter_limit: int = 15
    time_limit: float = 3600.0
    k_multi: int = 1
    #: Safety valve on the Cartesian product size per multi-pattern rule per
    #: iteration; ``None`` reproduces the paper exactly (no cap).
    max_multi_combinations: Optional[int] = None
    #: Rule scheduling: "simple" applies every rule every iteration (the
    #: paper's behaviour); "backoff" temporarily bans single-pattern rules
    #: whose match count explodes, like egg's default BackoffScheduler.
    scheduler: str = "simple"
    #: Backoff scheduler: per-rule match budget per iteration before banning.
    match_limit: int = 1_000
    #: Backoff scheduler: base ban length in iterations (doubles per offence).
    ban_length: int = 5


def make_cycle_filter(kind: str) -> CycleFilter:
    """Factory for the cycle-filtering strategies: ``"none"``, ``"vanilla"``, ``"efficient"``."""
    kind = kind.lower()
    if kind == "none":
        return NoCycleFilter()
    if kind == "vanilla":
        return VanillaCycleFilter()
    if kind == "efficient":
        return EfficientCycleFilter()
    raise ValueError(f"unknown cycle filter {kind!r}; expected 'none', 'vanilla', or 'efficient'")


class Runner:
    """Equality-saturation exploration driver.

    Parameters
    ----------
    egraph:
        The e-graph to grow (already seeded with the input term).
    rewrites:
        Single-pattern rewrite rules.
    multi_rewrites:
        Multi-pattern rewrite rules (paper Algorithm 1); applied only for the
        first ``limits.k_multi`` iterations.
    limits:
        Node / iteration / time limits.
    cycle_filter:
        Cycle-filtering strategy; default is no filtering.
    """

    def __init__(
        self,
        egraph: EGraph,
        rewrites: Sequence[Rewrite] = (),
        multi_rewrites: Sequence[MultiPatternRewrite] = (),
        limits: Optional[RunnerLimits] = None,
        cycle_filter: Optional[CycleFilter] = None,
    ) -> None:
        self.egraph = egraph
        self.rewrites = list(rewrites)
        self.multi_rewrites = list(multi_rewrites)
        self.limits = limits if limits is not None else RunnerLimits()
        if self.limits.scheduler not in ("simple", "backoff"):
            raise ValueError(f"unknown scheduler {self.limits.scheduler!r}; expected 'simple' or 'backoff'")
        self.cycle_filter = cycle_filter if cycle_filter is not None else NoCycleFilter()
        self._multi_searcher = MultiPatternSearcher(self.multi_rewrites) if self.multi_rewrites else None
        # Backoff scheduler state, per single-pattern rule.
        self._banned_until: Dict[int, int] = {}
        self._times_banned: Dict[int, int] = {}

    @property
    def filter_list(self) -> FilterList:
        return self.cycle_filter.filter_list

    # ------------------------------------------------------------------ #

    def run(self) -> RunnerReport:
        """Run the exploration loop until saturation or a limit is hit."""
        start = time.perf_counter()
        reports: List[IterationReport] = []
        stop = StopReason.ITERATION_LIMIT

        for iteration in range(self.limits.iter_limit):
            elapsed = time.perf_counter() - start
            if elapsed > self.limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
            if self.egraph.num_enodes > self.limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break

            report = self._run_iteration(iteration)
            reports.append(report)

            if report.n_applied == 0 and report.n_rules_banned == 0:
                stop = StopReason.SATURATED
                break
            if self.egraph.num_enodes > self.limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break
            if time.perf_counter() - start > self.limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
        else:
            stop = StopReason.ITERATION_LIMIT

        total = time.perf_counter() - start
        return RunnerReport(
            stop_reason=stop,
            iterations=reports,
            total_seconds=total,
            n_enodes=self.egraph.num_enodes,
            n_eclasses=self.egraph.num_eclasses,
            n_filtered=len(self.filter_list),
        )

    # ------------------------------------------------------------------ #

    def _run_iteration(self, iteration: int) -> IterationReport:
        t0 = time.perf_counter()
        report = IterationReport(index=iteration)
        unions_before = self.egraph.num_unions
        enodes_before = self.egraph.num_enodes

        self.cycle_filter.begin_iteration(self.egraph)

        # --- multi-pattern rules (first k_multi iterations only) -------- #
        # They run before the single-pattern rules so that, when the node
        # limit truncates an iteration, the k_multi budget of multi-pattern
        # applications has already been spent on the still-compact e-graph.
        if self._multi_searcher is not None and iteration < self.limits.k_multi:
            report.applied_multi = True
            rule_matches = self._multi_searcher.search(
                self.egraph, self.limits.max_multi_combinations
            )
            for rule, combos in rule_matches:
                report.n_matches += len(combos)
                needed_vars = set()
                for target in rule.targets:
                    needed_vars.update(target.variables())
                for combo in combos:
                    leaves = [combo.subst[v] for v in needed_vars if v in combo.subst]
                    if not self.cycle_filter.allows(self.egraph, list(combo.eclasses), leaves):
                        report.n_skipped_cycle += 1
                        continue
                    rule.apply_match(self.egraph, combo)
                    report.n_applied += 1
                    if self.egraph.num_enodes > self.limits.node_limit:
                        break
                if self.egraph.num_enodes > self.limits.node_limit:
                    break

        # --- single-pattern rules -------------------------------------- #
        if self.egraph.num_enodes <= self.limits.node_limit:
            for rule_index, rewrite in enumerate(self.rewrites):
                if self.limits.scheduler == "backoff":
                    if self._banned_until.get(rule_index, -1) > iteration:
                        report.n_rules_banned += 1
                        continue
                matches = rewrite.search(self.egraph)
                report.n_matches += len(matches)
                if self.limits.scheduler == "backoff":
                    times = self._times_banned.get(rule_index, 0)
                    threshold = self.limits.match_limit * (2 ** times)
                    if len(matches) > threshold:
                        self._banned_until[rule_index] = iteration + self.limits.ban_length * (2 ** times)
                        self._times_banned[rule_index] = times + 1
                        report.n_rules_banned += 1
                        continue
                for match in matches:
                    leaves = [match.subst[v] for v in rewrite.rhs.variables()]
                    if not self.cycle_filter.allows(self.egraph, [match.eclass], leaves):
                        report.n_skipped_cycle += 1
                        continue
                    rewrite.apply_match(self.egraph, match)
                    report.n_applied += 1
                    if self.egraph.num_enodes > self.limits.node_limit:
                        break
                if self.egraph.num_enodes > self.limits.node_limit:
                    break

        self.egraph.rebuild()
        report.n_cycles_resolved = self.cycle_filter.end_iteration(self.egraph)
        self.egraph.rebuild()

        # Saturation detection: nothing applied, or nothing actually changed.
        # A banned rule might still have work to do, so an iteration with bans
        # does not count as saturated.
        if (
            self.egraph.num_unions == unions_before
            and self.egraph.num_enodes == enodes_before
            and report.n_rules_banned == 0
        ):
            report.n_applied = 0

        report.n_enodes = self.egraph.num_enodes
        report.n_eclasses = self.egraph.num_eclasses
        report.seconds = time.perf_counter() - t0
        return report
