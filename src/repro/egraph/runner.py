"""The exploration-phase driver (saturation runner).

The runner is steppable: :meth:`Runner.step` executes one iteration and the
e-graph is inspectable between steps (:meth:`Runner.run` is the loop to
completion).  Observers receive the iteration event stream (see
:mod:`repro.core.events`).  The runner repeatedly searches and applies
rewrite rules until one of:

* **saturation** -- an iteration adds no new information to the e-graph,
* the e-graph exceeds a node limit (paper: ``N_max = 50000``),
* an iteration limit is reached (paper: ``k_max = 15``),
* a wall-clock time limit is reached.

Each iteration is a deterministic **search -> schedule -> plan -> apply ->
rebuild** pipeline:

1. **search** -- every rule's source pattern is matched against the *frozen*
   e-graph (no mutation interleaves with matching).  Three search paths exist
   behind one contract -- the naive interpretive matcher, the per-rule
   compiled VM, and the shared-prefix rule trie -- and all three return
   identical ordered match lists, so the trajectory is search-path-blind.
2. **schedule** -- a :class:`~repro.egraph.scheduler.Scheduler` strategy
   (simple or egg-style backoff) decides which rules' matches proceed.
3. **plan** -- surviving matches are collected into an
   :class:`~repro.egraph.applier.ApplyPlan`, which dedups identical RHS
   instantiations.
4. **apply** -- the plan executes in one pass: cycle-filter checks, bulk RHS
   adds against a frozen union-find, unions queued.
5. **rebuild** -- the queued unions are flushed and a single coordinated
   :meth:`EGraph.rebuild` restores congruence; cycle post-processing runs on
   the rebuilt graph.

Multi-pattern rules grow the e-graph double-exponentially (paper Section 4),
so they are only applied for the first ``k_multi`` iterations; afterwards only
single-pattern rules run.  Their plan entries precede the single-pattern
entries so a node-limit truncation spends the ``k_multi`` budget first.
In trie search mode their canonical source patterns are admitted into the
shared-prefix rule trie, so the one traversal per op bucket that matches the
single-pattern rules yields the multi-pattern source matches too; per-rule
combination is an indexed hash join on the shared variables by default
(``multipattern_join="hash"``), with the Cartesian-product join kept as the
executable spec (see ``docs/multipattern.md``).

Cycle filtering (paper Section 5.2) plugs in as a :class:`~repro.egraph.cycles.CycleFilter`
strategy: a per-iteration setup hook, a per-match ``allows`` check, and a
post-processing hook.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.egraph.applier import ApplyPlan
from repro.egraph.checkcache import resolve_condition_cache
from repro.egraph.cycles import CycleFilter, FilterList, NoCycleFilter
from repro.egraph.egraph import EGraph
from repro.egraph.ematch import naive_search_pattern
from repro.egraph.machine import IncrementalMatcher, TrieMatcher
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.egraph.parallel import ConfigError, ensure_picklable
from repro.egraph.rewrite import Rewrite
from repro.egraph.scheduler import Scheduler, make_scheduler

__all__ = [
    "StopReason",
    "IterationReport",
    "RunnerReport",
    "RunnerLimits",
    "Runner",
    "collect_trie_patterns",
    "make_cycle_filter",
]


class StopReason(enum.Enum):
    """Why the exploration phase terminated."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class IterationReport:
    """Statistics for one exploration iteration."""

    index: int
    n_matches: int = 0
    n_applied: int = 0
    n_skipped_cycle: int = 0
    n_cycles_resolved: int = 0
    n_enodes: int = 0
    n_eclasses: int = 0
    seconds: float = 0.0
    applied_multi: bool = False
    n_rules_banned: int = 0
    #: Matches dropped by the apply planner as identical RHS instantiations.
    n_deduped: int = 0
    #: Pipeline phase timings: searching for matches, planning + applying
    #: them, and flushing unions / restoring congruence.
    search_seconds: float = 0.0
    apply_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    #: Time spent joining multi-pattern per-source matches into combinations
    #: (a sub-span of ``search_seconds``; 0.0 when no multi rules ran).
    multi_join_seconds: float = 0.0
    #: Time spent in shape/condition checks (a sub-span of ``search_seconds``,
    #: partially inside ``multi_join_seconds``), including cache lookups.
    condition_seconds: float = 0.0
    #: Condition-check cache traffic (misses count direct evaluations too,
    #: so hits + misses is the number of condition checks this iteration).
    condition_cache_hits: int = 0
    condition_cache_misses: int = 0
    #: True when this iteration searched the whole e-graph; False when the
    #: search was seeded from the previous iteration's delta.
    full_search: bool = True
    #: Size of the previous iteration's delta (-1 for a full search).
    n_delta_classes: int = -1
    #: Per-shard search accounting when ``search_jobs > 1`` (one dict per
    #: shard: index, bucket count, candidate count, in-worker wall seconds);
    #: empty for the unsharded in-line sweep.
    search_shards: List[Dict[str, object]] = field(default_factory=list)


@dataclass
class RunnerReport:
    """Aggregate exploration report."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    total_seconds: float = 0.0
    n_enodes: int = 0
    n_eclasses: int = 0
    n_filtered: int = 0
    search_seconds: float = 0.0
    apply_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    multi_join_seconds: float = 0.0
    condition_seconds: float = 0.0
    condition_cache_hits: int = 0
    condition_cache_misses: int = 0
    #: Per-shard totals across all iterations (empty when search ran
    #: unsharded): shard index, buckets swept, candidates swept, busy seconds.
    search_shards: List[Dict[str, object]] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def summary(self) -> Dict[str, object]:
        return {
            "stop_reason": self.stop_reason.value,
            "iterations": self.num_iterations,
            "seconds": round(self.total_seconds, 4),
            "search_seconds": round(self.search_seconds, 4),
            "apply_seconds": round(self.apply_seconds, 4),
            "rebuild_seconds": round(self.rebuild_seconds, 4),
            "multi_join_seconds": round(self.multi_join_seconds, 4),
            "condition_seconds": round(self.condition_seconds, 4),
            "condition_cache_hits": self.condition_cache_hits,
            "condition_cache_misses": self.condition_cache_misses,
            "enodes": self.n_enodes,
            "eclasses": self.n_eclasses,
            "filtered_nodes": self.n_filtered,
            "search_shards": self.search_shards,
        }


@dataclass
class RunnerLimits:
    """Exploration limits (paper Section 6.1 defaults)."""

    node_limit: int = 50_000
    iter_limit: int = 15
    time_limit: float = 3600.0
    k_multi: int = 1
    #: Safety valve on the Cartesian product size per multi-pattern rule per
    #: iteration; ``None`` reproduces the paper exactly (no cap).
    max_multi_combinations: Optional[int] = None
    #: How a multi-pattern rule's per-source match lists are combined:
    #: "hash" (default) equi-joins on the shared-variable tuple, indexing the
    #: smaller side; "product" enumerates the Cartesian product and filters
    #: (the executable spec).  Both produce identical combination lists.
    multipattern_join: str = "hash"
    #: Rule scheduling: "simple" applies every rule every iteration (the
    #: paper's behaviour); "backoff" temporarily bans single-pattern rules
    #: whose match count explodes, like egg's default BackoffScheduler.
    scheduler: str = "simple"
    #: Backoff scheduler: per-rule match budget per iteration before banning.
    match_limit: int = 1_000
    #: Backoff scheduler: base ban length in iterations (doubles per offence).
    ban_length: int = 5
    #: E-matcher implementation: "vm" (compiled virtual machine, the default)
    #: or "naive" (the interpretive reference matcher).  Both produce the same
    #: match lists, so the exploration trajectory is identical.
    matcher: str = "vm"
    #: Shape/condition-check caching: "auto" (default) resolves against the
    #: e-graph's analysis -- "off" when it serves compiled per-class shape
    #: facts (checks are O(1)-ish lookups the memo cannot beat), "memo"
    #: otherwise; "memo" memoizes verdicts per canonical binding,
    #: invalidated when a bound e-class changes at a rebuild; "off"
    #: re-evaluates every check.  Identical match lists in every setting, so
    #: the trajectory is cache-blind.
    condition_cache: str = "auto"
    #: How the VM organises the search: "trie" (default) merges all rule
    #: programs into one shared-prefix trie per root operator and matches
    #: every rule in a single traversal of each op bucket; "per-rule" runs
    #: each rule's own program independently.  Ignored by the naive matcher.
    search_mode: str = "trie"
    #: Seed each iteration's search from the e-classes dirtied by the previous
    #: one (VM only).  Iteration 0 always searches the full e-graph.
    use_delta: bool = True
    #: Fall back to a full search when the delta covers more than this
    #: fraction of all e-classes (a large union cascade touched everything, so
    #: the closure walk would cost more than it saves).
    delta_full_fraction: float = 0.5
    #: Number of parallel search shards.  1 (the default) sweeps the trie
    #: buckets in-line with no executor in the way; > 1 requires
    #: ``matcher="vm"`` + ``search_mode="trie"`` (the only path whose search
    #: unit -- the op bucket -- shards) and produces bit-identical match
    #: lists for every jobs count and executor (``docs/parallel.md``).
    search_jobs: int = 1
    #: Which :data:`~repro.core.registry.SEARCH_EXECUTORS` entry sweeps the
    #: shards when ``search_jobs > 1``: "thread" (shared frozen e-graph),
    #: "process" (pickled snapshot per iteration, escapes the GIL), or
    #: "serial" (in-line, the determinism fixture).
    search_executor: str = "thread"


def make_cycle_filter(kind: str) -> CycleFilter:
    """Factory for the cycle-filtering strategies, backed by the
    :data:`~repro.core.registry.CYCLE_FILTERS` registry (``"efficient"``,
    ``"vanilla"``, ``"none"``, plus anything third parties register)."""
    from repro.core.registry import CYCLE_FILTERS

    return CYCLE_FILTERS.create(kind.lower())


def collect_trie_patterns(
    rewrites: Sequence[Rewrite], multi_searcher: Optional[MultiPatternSearcher]
) -> "tuple[list, List[str]]":
    """The pattern list a trie-mode runner compiles, plus the multi keys.

    Single-pattern LHS patterns come first (index == rule index); the unique
    canonical multi-pattern source patterns follow, keyed so the runner can
    split one ``search_all`` result back per rule.  A shared batch front door
    (:func:`repro.core.batch.optimize_many`) uses the same helper to compile
    one :class:`~repro.egraph.machine.TrieMatcher` reused across runs.
    """
    patterns = [rw.lhs for rw in rewrites]
    keys: List[str] = []
    if multi_searcher is not None:
        for key, pattern in multi_searcher.canonical_patterns():
            keys.append(key)
            patterns.append(pattern)
    return patterns, keys


class Runner:
    """Equality-saturation exploration driver.

    Parameters
    ----------
    egraph:
        The e-graph to grow (already seeded with the input term).
    rewrites:
        Single-pattern rewrite rules.
    multi_rewrites:
        Multi-pattern rewrite rules (paper Algorithm 1); applied only for the
        first ``limits.k_multi`` iterations.
    limits:
        Node / iteration / time limits.
    cycle_filter:
        Cycle-filtering strategy; default is no filtering.
    observers:
        Objects receiving the exploration event stream
        (:class:`~repro.core.events.OptimizationObserver` hooks:
        ``on_iteration_start`` / ``on_match_batch`` / ``on_iteration_end``).
        Observers are notified synchronously and must not mutate the e-graph.
    trie_matcher:
        A pre-compiled :class:`~repro.egraph.machine.TrieMatcher` to use
        instead of compiling one (trie search mode only).  It must have been
        built over :func:`collect_trie_patterns` of the *same* rules; the
        batch front door uses this to share one compiled trie across runs.
        The matcher's per-e-graph cache resets itself on a new e-graph, so
        sharing never changes results.
    """

    def __init__(
        self,
        egraph: EGraph,
        rewrites: Sequence[Rewrite] = (),
        multi_rewrites: Sequence[MultiPatternRewrite] = (),
        limits: Optional[RunnerLimits] = None,
        cycle_filter: Optional[CycleFilter] = None,
        observers: Sequence[object] = (),
        trie_matcher: Optional[TrieMatcher] = None,
    ) -> None:
        # Validation is registry-backed so third-party modes registered in
        # repro.core.registry are accepted here without edits (lazy import:
        # repro.egraph must stay importable without repro.core).
        from repro.core.events import dispatch_event
        from repro.core.registry import (
            CONDITION_CACHES,
            MATCHERS,
            MULTIPATTERN_JOINS,
            SEARCH_EXECUTORS,
            SEARCH_MODES,
        )

        self._dispatch = dispatch_event
        self.egraph = egraph
        self.rewrites = list(rewrites)
        self.multi_rewrites = list(multi_rewrites)
        self.limits = limits if limits is not None else RunnerLimits()
        MATCHERS.check(self.limits.matcher)
        SEARCH_MODES.check(self.limits.search_mode)
        MULTIPATTERN_JOINS.check(self.limits.multipattern_join)
        # Shape/condition-check path: a memoizing cache or the direct
        # evaluator, both accounting time and call counts identically.
        # "auto" resolves against the e-graph's analysis (off when it serves
        # compiled shape facts, memo otherwise); the registry check runs on
        # the un-resolved name so unknown kinds still fail loudly.
        CONDITION_CACHES.check(self.limits.condition_cache)
        self.condition_checker = CONDITION_CACHES.create(
            resolve_condition_cache(self.limits.condition_cache, egraph.analysis)
        )
        # Raises on an unknown scheduler kind, same as the matcher checks.
        self.scheduler: Scheduler = make_scheduler(
            self.limits.scheduler, self.limits.match_limit, self.limits.ban_length
        )
        self.cycle_filter = cycle_filter if cycle_filter is not None else NoCycleFilter()
        self.observers = tuple(observers)
        self._multi_searcher = MultiPatternSearcher(self.multi_rewrites) if self.multi_rewrites else None
        # Compiled search state (VM only).  "trie": one shared-prefix trie
        # matcher over all single-pattern rules *plus* the unique canonical
        # multi-pattern source patterns (admitted at indices >= n_single, so
        # one traversal per op bucket yields their matches too); "per-rule":
        # one incremental matcher per single rule, with the multi searcher
        # running its own per-canonical-pattern matchers.
        self._trie_matcher: Optional[TrieMatcher] = None
        self._matchers: List[IncrementalMatcher] = []
        self._n_single = len(self.rewrites)
        self._multi_keys: List[str] = []
        if self.limits.matcher == "vm":
            if self.limits.search_mode == "trie":
                patterns, self._multi_keys = collect_trie_patterns(self.rewrites, self._multi_searcher)
                if patterns:
                    self._trie_matcher = trie_matcher if trie_matcher is not None else TrieMatcher(patterns)
            else:
                self._matchers = [IncrementalMatcher(rw.lhs) for rw in self.rewrites]
        # Parallel search: build the shard executor eagerly so configuration
        # problems (unknown executor, unshardable search path, unpicklable
        # user-registered components under process mode) surface here as
        # ConfigError, not mid-run from inside a worker pool.
        self._search_executor = None
        if self.limits.search_jobs != 1:
            SEARCH_EXECUTORS.check(self.limits.search_executor)
            if self.limits.search_jobs < 1:
                raise ConfigError(f"search_jobs must be >= 1, got {self.limits.search_jobs}")
            if self._trie_matcher is None:
                raise ConfigError(
                    "search_jobs > 1 requires matcher='vm' with search_mode='trie' "
                    f"(got matcher={self.limits.matcher!r}, "
                    f"search_mode={self.limits.search_mode!r}): only the trie's "
                    "op buckets shard across workers"
                )
            self._search_executor = SEARCH_EXECUTORS.create(
                self.limits.search_executor, jobs=self.limits.search_jobs
            )
            if self._search_executor.kind == "process":
                # The patterns cross the process boundary; the other pluggable
                # components stay on the driver but are preflighted too so a
                # custom scheduler/condition/filter that cannot pickle fails
                # with a named ConfigError instead of surprising a later
                # snapshot or fan-out path.
                ensure_picklable(
                    {
                        "the rule scheduler": self.scheduler,
                        "the condition checker": self.condition_checker,
                        "the cycle filter": self.cycle_filter,
                    },
                    "search_executor='process'",
                )
            self._search_executor.prepare(self._trie_matcher.patterns)
        # E-classes dirtied by the previous iteration; None forces a full
        # search (iteration 0, naive matcher, or delta matching disabled).
        self._delta: Optional[Set[int]] = None
        # Stepping state: iteration reports so far, accumulated in-step time
        # (the budget the time limit is charged against -- wall-clock pauses
        # between step() calls are free), and the stop reason once decided.
        self._reports: List[IterationReport] = []
        self._elapsed = 0.0
        self._started = False
        self._stop: Optional[StopReason] = None

    @property
    def filter_list(self) -> FilterList:
        return self.cycle_filter.filter_list

    @property
    def iterations(self) -> List[IterationReport]:
        """Per-iteration reports so far (inspectable between steps)."""
        return list(self._reports)

    @property
    def stop_reason(self) -> Optional[StopReason]:
        """Why exploration stopped, or None while it can still step."""
        return self._stop

    @property
    def done(self) -> bool:
        return self._stop is not None

    def _emit(self, event: str, *args) -> None:
        # Bound in __init__ (lazy import: repro.egraph must stay importable
        # without repro.core at module-import time).
        self._dispatch(self.observers, event, *args)

    # ------------------------------------------------------------------ #

    def step(self) -> Optional[IterationReport]:
        """Run one exploration iteration; None when exploration has stopped.

        The first call drains the e-graph's seeding dirty marks (iteration 0
        always searches the full e-graph).  After the iteration, the stop
        conditions are evaluated in the same order as :meth:`run` always
        used -- saturation, node limit, time limit, iteration limit -- so a
        step-at-a-time loop walks the exact trajectory of a one-shot run.
        """
        if self._stop is not None:
            self._close_executor()
            return None
        t0 = time.perf_counter()
        if not self._started:
            # Iteration 0 always searches the whole e-graph, so the dirty
            # marks accumulated while the caller seeded it carry no
            # information; drain them so iteration 1's delta covers only
            # iteration 0's changes.  The condition-dirty marks are drained
            # for the same reason: verdicts computed during iteration 0 see
            # the seeded state, so the seeds must not invalidate them.
            self.egraph.take_dirty()
            self.egraph.take_condition_dirty()
            self._delta = None
            self._started = True

        iteration = len(self._reports)
        if iteration >= self.limits.iter_limit:
            self._stop = StopReason.ITERATION_LIMIT
            self._close_executor()
            return None
        if self._elapsed > self.limits.time_limit:
            self._stop = StopReason.TIME_LIMIT
            self._close_executor()
            return None
        if self.egraph.num_enodes > self.limits.node_limit:
            self._stop = StopReason.NODE_LIMIT
            self._close_executor()
            return None

        report = self._run_iteration(iteration)
        self._reports.append(report)
        self._elapsed += time.perf_counter() - t0

        if report.n_applied == 0 and report.n_rules_banned == 0:
            self._stop = StopReason.SATURATED
        elif self.egraph.num_enodes > self.limits.node_limit:
            self._stop = StopReason.NODE_LIMIT
        elif self._elapsed > self.limits.time_limit:
            self._stop = StopReason.TIME_LIMIT
        elif len(self._reports) >= self.limits.iter_limit:
            self._stop = StopReason.ITERATION_LIMIT
        if self._stop is not None:
            self._close_executor()
        return report

    def _close_executor(self) -> None:
        """Shut the shard worker pool down as soon as exploration stops.

        Idempotent; also runs from ``__del__`` so an abandoned runner does
        not leak pool threads/processes.  Extraction and everything after
        the exploration phase is single-threaded and never needs the pool.
        """
        if self._search_executor is not None:
            self._search_executor.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self._close_executor()
        except Exception:
            pass

    def run(self) -> RunnerReport:
        """Run the exploration loop until saturation or a limit is hit."""
        while self.step() is not None:
            pass
        return self.report()

    def report(self) -> RunnerReport:
        """Aggregate report; exploration must have stopped (see :meth:`step`)."""
        if self._stop is None:
            raise RuntimeError(
                "exploration has not stopped; keep calling step() (or use run()), "
                "or inspect the in-progress state via Runner.iterations"
            )
        reports = self._reports
        # Aggregate the per-iteration shard timings per shard index so the
        # stats spine (--json, PhaseTimingObserver) sees one row per worker.
        shard_totals: Dict[int, Dict[str, object]] = {}
        for r in reports:
            for shard in r.search_shards:
                row = shard_totals.setdefault(
                    shard["shard"], {"shard": shard["shard"], "buckets": 0, "candidates": 0, "seconds": 0.0}
                )
                row["buckets"] += shard["buckets"]
                row["candidates"] += shard["candidates"]
                row["seconds"] = round(row["seconds"] + shard["seconds"], 6)
        return RunnerReport(
            stop_reason=self._stop,
            iterations=list(reports),
            total_seconds=self._elapsed,
            n_enodes=self.egraph.num_enodes,
            n_eclasses=self.egraph.num_eclasses,
            n_filtered=len(self.filter_list),
            search_seconds=sum(r.search_seconds for r in reports),
            apply_seconds=sum(r.apply_seconds for r in reports),
            rebuild_seconds=sum(r.rebuild_seconds for r in reports),
            multi_join_seconds=sum(r.multi_join_seconds for r in reports),
            condition_seconds=sum(r.condition_seconds for r in reports),
            condition_cache_hits=sum(r.condition_cache_hits for r in reports),
            condition_cache_misses=sum(r.condition_cache_misses for r in reports),
            search_shards=[shard_totals[i] for i in sorted(shard_totals)],
        )

    # ------------------------------------------------------------------ #

    def _run_iteration(self, iteration: int) -> IterationReport:
        t0 = time.perf_counter()
        self._emit("on_iteration_start", iteration, self.egraph)
        report = IterationReport(index=iteration)
        unions_before = self.egraph.num_unions
        enodes_before = self.egraph.num_enodes
        checker = self.condition_checker
        cond_seconds0 = checker.seconds
        cond_hits0, cond_misses0 = checker.hits, checker.misses

        use_vm = self.limits.matcher == "vm"
        delta = self._delta if (use_vm and self.limits.use_delta) else None
        if delta is not None and len(delta) > self.limits.delta_full_fraction * max(1, self.egraph.num_eclasses):
            # A union cascade touched most of the e-graph; the closure walk
            # would cost more than the full search it is meant to avoid.
            delta = None
        report.full_search = delta is None
        report.n_delta_classes = -1 if delta is None else len(delta)

        self.cycle_filter.begin_iteration(self.egraph)

        # --- search phase: every rule matched against the frozen e-graph --- #
        t_search = time.perf_counter()
        multi_active = self._multi_searcher is not None and iteration < self.limits.k_multi
        trie_results = None
        if self._trie_matcher is not None:
            # Once the k_multi window closes the multi-pattern trie slots are
            # never read again; skipping them drops their cache maintenance.
            skip = () if multi_active else range(self._n_single, self._n_single + len(self._multi_keys))
            trie_results = self._trie_matcher.search_all(
                self.egraph, delta=delta, skip=skip, executor=self._search_executor
            )
            if self._search_executor is not None:
                report.search_shards = [
                    s.as_dict() for s in self._search_executor.last_shards
                ]

        multi_matches = []
        if multi_active:
            report.applied_multi = True
            if trie_results is not None:
                # Trie admission: the canonical source patterns were searched
                # as a byproduct of the single traversal per op bucket above.
                canonical_matches = {
                    key: trie_results[self._n_single + offset]
                    for offset, key in enumerate(self._multi_keys)
                }
            else:
                canonical_matches = self._multi_searcher.search_canonical(
                    self.egraph, delta=delta, matcher=self.limits.matcher
                )
            t_join = time.perf_counter()
            multi_matches = self._multi_searcher.combine_matches(
                self.egraph,
                canonical_matches,
                self.limits.max_multi_combinations,
                join=self.limits.multipattern_join,
                checker=checker,
            )
            report.multi_join_seconds = time.perf_counter() - t_join

        # One ordered match list per rule; None marks a banned (unsearched) rule.
        single_matches: List[Optional[list]] = []
        for rule_index, rewrite in enumerate(self.rewrites):
            if self.scheduler.is_banned(rule_index, iteration):
                # A per-rule cache goes more than one delta stale while the
                # rule is banned; force a full re-search when the ban lifts.
                # The trie refreshes every rule's cache each iteration and the
                # naive matcher keeps no cache, so neither needs the reset.
                if self._matchers:
                    self._matchers[rule_index].reset()
                report.n_rules_banned += 1
                single_matches.append(None)
                continue
            if trie_results is not None:
                raw = trie_results[rule_index]
            elif use_vm:
                raw = self._matchers[rule_index].search(self.egraph, delta=delta)
            else:
                raw = naive_search_pattern(self.egraph, rewrite.lhs)
            single_matches.append(rewrite.filter_matches(self.egraph, raw, checker=checker))
        report.search_seconds = time.perf_counter() - t_search
        report.condition_seconds = checker.seconds - cond_seconds0
        report.condition_cache_hits = checker.hits - cond_hits0
        report.condition_cache_misses = checker.misses - cond_misses0

        # --- plan + apply phases: schedule, dedup, execute in one pass ---- #
        t_apply = time.perf_counter()
        plan = ApplyPlan()
        for rule, combos in multi_matches:
            report.n_matches += len(combos)
            self._emit("on_match_batch", iteration, rule.name, len(combos), True)
            for combo in combos:
                plan.add_multi(rule, combo)
        for rule_index, matches in enumerate(single_matches):
            if matches is None:
                continue
            report.n_matches += len(matches)
            admitted = self.scheduler.admit_matches(rule_index, iteration, len(matches))
            self._emit("on_match_batch", iteration, self.rewrites[rule_index].name, len(matches), admitted)
            if not admitted:
                report.n_rules_banned += 1
                continue
            rewrite = self.rewrites[rule_index]
            for match in matches:
                plan.add_rewrite(rewrite, match)

        apply_stats = plan.execute(self.egraph, self.cycle_filter, node_limit=self.limits.node_limit)
        report.n_applied = apply_stats.n_applied
        report.n_skipped_cycle = apply_stats.n_skipped_cycle
        report.n_deduped = apply_stats.n_deduped
        report.apply_seconds = time.perf_counter() - t_apply

        # --- rebuild phase: flush queued unions, one coordinated rebuild --- #
        t_rebuild = time.perf_counter()
        self.egraph.flush_deferred_unions()
        self.egraph.rebuild()
        report.n_cycles_resolved = self.cycle_filter.end_iteration(self.egraph)
        self.egraph.rebuild()
        # Open a new cache generation: verdicts over the classes this
        # iteration created, merged, or analysis-repaired are now stale.
        checker.advance(self.egraph.take_condition_dirty())
        report.rebuild_seconds = time.perf_counter() - t_rebuild

        # Everything dirtied during this iteration (rule applications, repairs,
        # cycle resolution) seeds the next iteration's search.
        dirty = self.egraph.take_dirty()
        self._delta = dirty if (use_vm and self.limits.use_delta) else None

        # Saturation detection: nothing applied, or nothing actually changed.
        # A banned rule might still have work to do, so an iteration with bans
        # does not count as saturated.
        if (
            self.egraph.num_unions == unions_before
            and self.egraph.num_enodes == enodes_before
            and report.n_rules_banned == 0
        ):
            report.n_applied = 0

        report.n_enodes = self.egraph.num_enodes
        report.n_eclasses = self.egraph.num_eclasses
        report.seconds = time.perf_counter() - t0
        self._emit("on_iteration_end", iteration, report)
        return report
