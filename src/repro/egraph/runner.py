"""The exploration-phase driver (saturation runner).

The runner repeatedly searches and applies rewrite rules until one of:

* **saturation** -- an iteration adds no new information to the e-graph,
* the e-graph exceeds a node limit (paper: ``N_max = 50000``),
* an iteration limit is reached (paper: ``k_max = 15``),
* a wall-clock time limit is reached.

Multi-pattern rules grow the e-graph double-exponentially (paper Section 4),
so they are only applied for the first ``k_multi`` iterations; afterwards only
single-pattern rules run.

Cycle filtering (paper Section 5.2) plugs in as a :class:`~repro.egraph.cycles.CycleFilter`
strategy: a per-iteration setup hook, a per-match ``allows`` check, and a
post-processing hook.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.egraph.cycles import CycleFilter, EfficientCycleFilter, FilterList, NoCycleFilter, VanillaCycleFilter
from repro.egraph.egraph import EGraph
from repro.egraph.ematch import naive_search_pattern
from repro.egraph.machine import IncrementalMatcher
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.egraph.rewrite import Rewrite

__all__ = ["StopReason", "IterationReport", "RunnerReport", "RunnerLimits", "Runner", "make_cycle_filter"]


class StopReason(enum.Enum):
    """Why the exploration phase terminated."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class IterationReport:
    """Statistics for one exploration iteration."""

    index: int
    n_matches: int = 0
    n_applied: int = 0
    n_skipped_cycle: int = 0
    n_cycles_resolved: int = 0
    n_enodes: int = 0
    n_eclasses: int = 0
    seconds: float = 0.0
    applied_multi: bool = False
    n_rules_banned: int = 0
    #: Time spent searching for matches (as opposed to applying them).
    search_seconds: float = 0.0
    #: True when this iteration searched the whole e-graph; False when the
    #: search was seeded from the previous iteration's delta.
    full_search: bool = True
    #: Size of the previous iteration's delta (-1 for a full search).
    n_delta_classes: int = -1


@dataclass
class RunnerReport:
    """Aggregate exploration report."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    total_seconds: float = 0.0
    n_enodes: int = 0
    n_eclasses: int = 0
    n_filtered: int = 0
    search_seconds: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def summary(self) -> Dict[str, object]:
        return {
            "stop_reason": self.stop_reason.value,
            "iterations": self.num_iterations,
            "seconds": round(self.total_seconds, 4),
            "search_seconds": round(self.search_seconds, 4),
            "enodes": self.n_enodes,
            "eclasses": self.n_eclasses,
            "filtered_nodes": self.n_filtered,
        }


@dataclass
class RunnerLimits:
    """Exploration limits (paper Section 6.1 defaults)."""

    node_limit: int = 50_000
    iter_limit: int = 15
    time_limit: float = 3600.0
    k_multi: int = 1
    #: Safety valve on the Cartesian product size per multi-pattern rule per
    #: iteration; ``None`` reproduces the paper exactly (no cap).
    max_multi_combinations: Optional[int] = None
    #: Rule scheduling: "simple" applies every rule every iteration (the
    #: paper's behaviour); "backoff" temporarily bans single-pattern rules
    #: whose match count explodes, like egg's default BackoffScheduler.
    scheduler: str = "simple"
    #: Backoff scheduler: per-rule match budget per iteration before banning.
    match_limit: int = 1_000
    #: Backoff scheduler: base ban length in iterations (doubles per offence).
    ban_length: int = 5
    #: E-matcher implementation: "vm" (compiled virtual machine, the default)
    #: or "naive" (the interpretive reference matcher).  Both produce the same
    #: match lists, so the exploration trajectory is identical.
    matcher: str = "vm"
    #: Seed each iteration's search from the e-classes dirtied by the previous
    #: one (VM only).  Iteration 0 always searches the full e-graph.
    use_delta: bool = True
    #: Fall back to a full search when the delta covers more than this
    #: fraction of all e-classes (a large union cascade touched everything, so
    #: the closure walk would cost more than it saves).
    delta_full_fraction: float = 0.5


def make_cycle_filter(kind: str) -> CycleFilter:
    """Factory for the cycle-filtering strategies: ``"none"``, ``"vanilla"``, ``"efficient"``."""
    kind = kind.lower()
    if kind == "none":
        return NoCycleFilter()
    if kind == "vanilla":
        return VanillaCycleFilter()
    if kind == "efficient":
        return EfficientCycleFilter()
    raise ValueError(f"unknown cycle filter {kind!r}; expected 'none', 'vanilla', or 'efficient'")


class Runner:
    """Equality-saturation exploration driver.

    Parameters
    ----------
    egraph:
        The e-graph to grow (already seeded with the input term).
    rewrites:
        Single-pattern rewrite rules.
    multi_rewrites:
        Multi-pattern rewrite rules (paper Algorithm 1); applied only for the
        first ``limits.k_multi`` iterations.
    limits:
        Node / iteration / time limits.
    cycle_filter:
        Cycle-filtering strategy; default is no filtering.
    """

    def __init__(
        self,
        egraph: EGraph,
        rewrites: Sequence[Rewrite] = (),
        multi_rewrites: Sequence[MultiPatternRewrite] = (),
        limits: Optional[RunnerLimits] = None,
        cycle_filter: Optional[CycleFilter] = None,
    ) -> None:
        self.egraph = egraph
        self.rewrites = list(rewrites)
        self.multi_rewrites = list(multi_rewrites)
        self.limits = limits if limits is not None else RunnerLimits()
        if self.limits.scheduler not in ("simple", "backoff"):
            raise ValueError(f"unknown scheduler {self.limits.scheduler!r}; expected 'simple' or 'backoff'")
        if self.limits.matcher not in ("vm", "naive"):
            raise ValueError(f"unknown matcher {self.limits.matcher!r}; expected 'vm' or 'naive'")
        self.cycle_filter = cycle_filter if cycle_filter is not None else NoCycleFilter()
        self._multi_searcher = MultiPatternSearcher(self.multi_rewrites) if self.multi_rewrites else None
        # Backoff scheduler state, per single-pattern rule.
        self._banned_until: Dict[int, int] = {}
        self._times_banned: Dict[int, int] = {}
        # One incremental matcher per single-pattern rule (compiled programs
        # are shared through the per-pattern cache).
        self._matchers: List[IncrementalMatcher] = [IncrementalMatcher(rw.lhs) for rw in self.rewrites]
        # E-classes dirtied by the previous iteration; None forces a full
        # search (iteration 0, naive matcher, or delta matching disabled).
        self._delta: Optional[Set[int]] = None

    @property
    def filter_list(self) -> FilterList:
        return self.cycle_filter.filter_list

    # ------------------------------------------------------------------ #

    def run(self) -> RunnerReport:
        """Run the exploration loop until saturation or a limit is hit."""
        start = time.perf_counter()
        reports: List[IterationReport] = []
        stop = StopReason.ITERATION_LIMIT

        # Iteration 0 always searches the whole e-graph, so the dirty marks
        # accumulated while the caller seeded it carry no information; drain
        # them so iteration 1's delta covers only iteration 0's changes.
        self.egraph.take_dirty()
        self._delta = None

        for iteration in range(self.limits.iter_limit):
            elapsed = time.perf_counter() - start
            if elapsed > self.limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
            if self.egraph.num_enodes > self.limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break

            report = self._run_iteration(iteration)
            reports.append(report)

            if report.n_applied == 0 and report.n_rules_banned == 0:
                stop = StopReason.SATURATED
                break
            if self.egraph.num_enodes > self.limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break
            if time.perf_counter() - start > self.limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
        else:
            stop = StopReason.ITERATION_LIMIT

        total = time.perf_counter() - start
        return RunnerReport(
            stop_reason=stop,
            iterations=reports,
            total_seconds=total,
            n_enodes=self.egraph.num_enodes,
            n_eclasses=self.egraph.num_eclasses,
            n_filtered=len(self.filter_list),
            search_seconds=sum(r.search_seconds for r in reports),
        )

    # ------------------------------------------------------------------ #

    def _run_iteration(self, iteration: int) -> IterationReport:
        t0 = time.perf_counter()
        report = IterationReport(index=iteration)
        unions_before = self.egraph.num_unions
        enodes_before = self.egraph.num_enodes

        use_vm = self.limits.matcher == "vm"
        delta_base = self._delta if (use_vm and self.limits.use_delta) else None
        if (
            delta_base is not None
            and len(delta_base) > self.limits.delta_full_fraction * max(1, self.egraph.num_eclasses)
        ):
            # A union cascade touched most of the e-graph; the closure walk
            # would cost more than the full search it is meant to avoid.
            delta_base = None
        report.full_search = delta_base is None
        report.n_delta_classes = -1 if delta_base is None else len(delta_base)

        delta_cache: Dict[str, object] = {"stamp": -1, "value": None}

        def effective_delta() -> Optional[Set[int]]:
            # Rules applied earlier in this same iteration have already
            # dirtied classes; including the live dirty set keeps each search
            # equal to a full search at that point, so the delta path follows
            # the exact same trajectory as the naive matcher.  The dirty set
            # only grows within an iteration, so its size is a valid change
            # stamp and quiescent rule tails reuse the previous union.
            if delta_base is None:
                return None
            stamp = self.egraph.dirty_size
            if delta_cache["stamp"] != stamp:
                delta_cache["stamp"] = stamp
                delta_cache["value"] = delta_base | self.egraph.dirty_classes()
            return delta_cache["value"]

        self.cycle_filter.begin_iteration(self.egraph)

        # --- multi-pattern rules (first k_multi iterations only) -------- #
        # They run before the single-pattern rules so that, when the node
        # limit truncates an iteration, the k_multi budget of multi-pattern
        # applications has already been spent on the still-compact e-graph.
        if self._multi_searcher is not None and iteration < self.limits.k_multi:
            report.applied_multi = True
            t_search = time.perf_counter()
            rule_matches = self._multi_searcher.search(
                self.egraph,
                self.limits.max_multi_combinations,
                delta=effective_delta(),
                matcher=self.limits.matcher,
            )
            report.search_seconds += time.perf_counter() - t_search
            for rule, combos in rule_matches:
                report.n_matches += len(combos)
                needed_vars = set()
                for target in rule.targets:
                    needed_vars.update(target.variables())
                for combo in combos:
                    leaves = [combo.subst[v] for v in needed_vars if v in combo.subst]
                    if not self.cycle_filter.allows(self.egraph, list(combo.eclasses), leaves):
                        report.n_skipped_cycle += 1
                        continue
                    rule.apply_match(self.egraph, combo)
                    report.n_applied += 1
                    if self.egraph.num_enodes > self.limits.node_limit:
                        break
                if self.egraph.num_enodes > self.limits.node_limit:
                    break

        # --- single-pattern rules -------------------------------------- #
        if self.egraph.num_enodes <= self.limits.node_limit:
            for rule_index, rewrite in enumerate(self.rewrites):
                if self.limits.scheduler == "backoff":
                    if self._banned_until.get(rule_index, -1) > iteration:
                        # The cached match set will be more than one delta
                        # stale when the ban lifts; force a full re-search.
                        self._matchers[rule_index].reset()
                        report.n_rules_banned += 1
                        continue
                t_search = time.perf_counter()
                if use_vm:
                    raw = self._matchers[rule_index].search(self.egraph, delta=effective_delta())
                else:
                    raw = naive_search_pattern(self.egraph, rewrite.lhs)
                matches = rewrite.filter_matches(self.egraph, raw)
                report.search_seconds += time.perf_counter() - t_search
                report.n_matches += len(matches)
                if self.limits.scheduler == "backoff":
                    times = self._times_banned.get(rule_index, 0)
                    threshold = self.limits.match_limit * (2 ** times)
                    if len(matches) > threshold:
                        self._banned_until[rule_index] = iteration + self.limits.ban_length * (2 ** times)
                        self._times_banned[rule_index] = times + 1
                        report.n_rules_banned += 1
                        continue
                for match in matches:
                    leaves = [match.subst[v] for v in rewrite.rhs.variables()]
                    if not self.cycle_filter.allows(self.egraph, [match.eclass], leaves):
                        report.n_skipped_cycle += 1
                        continue
                    rewrite.apply_match(self.egraph, match)
                    report.n_applied += 1
                    if self.egraph.num_enodes > self.limits.node_limit:
                        break
                if self.egraph.num_enodes > self.limits.node_limit:
                    break

        self.egraph.rebuild()
        report.n_cycles_resolved = self.cycle_filter.end_iteration(self.egraph)
        self.egraph.rebuild()

        # Everything dirtied during this iteration (rule applications, repairs,
        # cycle resolution) seeds the next iteration's search.
        dirty = self.egraph.take_dirty()
        self._delta = dirty if (use_vm and self.limits.use_delta) else None

        # Saturation detection: nothing applied, or nothing actually changed.
        # A banned rule might still have work to do, so an iteration with bans
        # does not count as saturated.
        if (
            self.egraph.num_unions == unions_before
            and self.egraph.num_enodes == enodes_before
            and report.n_rules_banned == 0
        ):
            report.n_applied = 0

        report.n_enodes = self.egraph.num_enodes
        report.n_eclasses = self.egraph.num_eclasses
        report.seconds = time.perf_counter() - t0
        return report
