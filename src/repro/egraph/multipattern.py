"""Multi-pattern rewrite rules (paper Section 4, Algorithm 1).

A multi-pattern rewrite has a *source* consisting of several S-expressions
(each rooted at one output) and a *target* with the same number of roots.
The rule states the equivalence of each pair of matched outputs.  The
canonical example (paper Figure 2) merges two ``matmul`` operators sharing an
input into one ``matmul`` over concatenated weights followed by a ``split``.

The application algorithm follows the paper:

1. Canonicalize the source patterns by variable renaming and collect the
   unique canonical patterns (so syntactically identical sources across rules
   and across the outputs of one rule are only e-matched once).
2. Each iteration, run the single-pattern e-matcher on every canonical
   pattern.  In the runner's default trie search mode the canonical patterns
   are admitted into the shared-prefix rule trie, so their matches fall out
   of the same one-traversal-per-op-bucket sweep that serves the
   single-pattern rules (see ``docs/multipattern.md``).
3. For every rule, combine the (decanonicalized) matches of its source
   patterns: keep exactly the combinations whose shared variables map to the
   same e-class, and apply those.

Step 3 has two interchangeable implementations behind
:meth:`MultiPatternRewrite.combine`:

* ``join="product"`` -- the executable specification: enumerate the full
  Cartesian product of the per-source match lists and filter incompatible
  combinations (paper Algorithm 1, lines 10--15 verbatim);
* ``join="hash"`` (the runner's default) -- an indexed equi-join on the
  shared-variable tuple: hash the smaller side, probe with the larger, and
  chain joins in ascending match-count order for rules with three or more
  sources.  The output list is bit-for-bit identical to the product path
  (same combinations, same order, same ``max_combinations`` truncation), it
  just never materialises the quadratic product.  ``docs/multipattern.md``
  works through the algorithm and the order-parity argument.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match, naive_search_pattern, search_pattern
from repro.egraph.pattern import Pattern, Substitution

__all__ = ["MultiMatch", "MultiPatternRewrite", "MultiPatternSearcher"]

#: A multi-pattern rule's precondition.  Under the runner's default
#: ``condition_cache="memo"`` a condition must be a pure function of the
#: e-graph state of the e-classes the combination *binds* (its substitution
#: values) -- not of the matched root classes or global e-graph state; see
#: :mod:`repro.egraph.checkcache`.  Conditions that need the old
#: re-evaluate-every-search behaviour require ``condition_cache="off"``.
MultiCondition = Callable[[EGraph, "MultiMatch"], bool]


def _join_accepts_checker(join_fn) -> bool:
    """Whether a registered join accepts the ``checker`` keyword.

    Pre-checker joins (the four-argument registry signature) remain valid;
    they just evaluate their conditions uncached.  Called once per rule per
    combine, so the signature inspection is not worth caching (a cache keyed
    on function objects would pin unregistered joins alive).
    """
    try:
        parameters = inspect.signature(join_fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return "checker" in parameters or any(
        p.kind == inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


@dataclass(frozen=True)
class MultiMatch:
    """A compatible combination of matches, one per source pattern."""

    eclasses: Tuple[int, ...]  # matched root e-class of each source output
    subst: Dict[str, int]  # merged substitution over all source variables

    def canonical(self, egraph: EGraph) -> "MultiMatch":
        return MultiMatch(
            eclasses=tuple(egraph.find(c) for c in self.eclasses),
            subst={k: egraph.find(v) for k, v in self.subst.items()},
        )


@dataclass
class MultiPatternRewrite:
    """A rewrite whose source and target each have several matched outputs."""

    name: str
    sources: List[Pattern]
    targets: List[Pattern]
    condition: Optional[MultiCondition] = None
    #: Skip combinations where all matched output e-classes coincide (the
    #: degenerate case of a symmetric rule matching one node against itself,
    #: e.g. merging a matmul with itself -- valid but useless, and a major
    #: source of e-graph blow-up).
    skip_identical: bool = True

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.targets):
            raise ValueError(
                f"multi-pattern rewrite {self.name!r}: {len(self.sources)} source outputs "
                f"but {len(self.targets)} target outputs"
            )
        if not self.sources:
            raise ValueError(f"multi-pattern rewrite {self.name!r} has no outputs")
        source_vars = set()
        for p in self.sources:
            source_vars.update(p.variables())
        for p in self.targets:
            unbound = set(p.variables()) - source_vars
            if unbound:
                raise ValueError(
                    f"multi-pattern rewrite {self.name!r}: target uses unbound variables {sorted(unbound)}"
                )
        # Precompile every source pattern's e-matching program (cached on the
        # pattern, so this is paid once per distinct pattern).
        for p in self.sources:
            p.compile()
        # Per-source variable lists (first-appearance order): the hash join
        # derives each join step's shared-variable key from these.
        self.source_variables: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(p.variables()) for p in self.sources
        )
        # All source variables in first-appearance order: a combination binds
        # exactly these, so condition-cache binding keys are built
        # positionally in this order.
        all_vars: List[str] = []
        for per_source in self.source_variables:
            for name in per_source:
                if name not in all_vars:
                    all_vars.append(name)
        self.all_source_variables: Tuple[str, ...] = tuple(all_vars)
        # Cached for the apply planner: the variables the targets consume, in
        # a deterministic order (cycle-filter leaves and the dedup key).
        target_vars: List[str] = []
        for target in self.targets:
            for name in target.variables():
                if name not in target_vars:
                    target_vars.append(name)
        self.target_variables: Tuple[str, ...] = tuple(target_vars)
        self.targets_key: Tuple[str, ...] = tuple(str(t) for t in self.targets)

    @classmethod
    def parse(
        cls,
        name: str,
        sources: Sequence[str],
        targets: Sequence[str],
        condition: Optional[MultiCondition] = None,
        skip_identical: bool = True,
    ) -> "MultiPatternRewrite":
        return cls(
            name=name,
            sources=[Pattern.parse(s) for s in sources],
            targets=[Pattern.parse(t) for t in targets],
            condition=condition,
            skip_identical=skip_identical,
        )

    @property
    def num_outputs(self) -> int:
        return len(self.sources)

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #

    @staticmethod
    def _decanonicalize(match: Match, rename_map: Dict[str, str]) -> Match:
        return Match(
            eclass=match.eclass,
            subst={rename_map[var]: cls for var, cls in match.subst.items()},
        )

    @staticmethod
    def _compatible(substs: Sequence[Substitution]) -> Optional[Substitution]:
        """Merge substitutions; return None when shared variables disagree."""
        merged: Dict[str, int] = {}
        for subst in substs:
            for var, cls in subst.items():
                existing = merged.get(var)
                if existing is None:
                    merged[var] = cls
                elif existing != cls:
                    return None
        return merged

    def _condition_ok(self, egraph: EGraph, multi: MultiMatch, checker=None) -> bool:
        """Evaluate (or recall) this rule's condition for one combination."""
        if self.condition is None:
            return True
        if checker is None:
            return self.condition(egraph, multi)
        return checker.check(id(self), self.condition, egraph, multi, self.all_source_variables)

    def combine(
        self,
        egraph: EGraph,
        per_source_matches: Sequence[Sequence[Match]],
        max_combinations: Optional[int] = None,
        join: str = "product",
        checker=None,
    ) -> List[MultiMatch]:
        """Combine the per-source match lists into compatible :class:`MultiMatch` es.

        ``join`` names an entry of the
        :data:`repro.core.registry.MULTIPATTERN_JOINS` registry (built-ins:
        ``"product"``, the executable spec enumerating the Cartesian product
        and filtering, and ``"hash"``, an indexed equi-join on the shared
        variables).  Every join must return the *same list* -- same
        combinations, same order, same ``max_combinations`` truncation -- so
        the saturation trajectory is join-blind; the equivalence is
        property-tested in ``tests/test_multipattern.py``.

        ``checker`` optionally memoizes the per-combination condition checks
        (:mod:`repro.egraph.checkcache`); verdicts are binding-canonical, so
        the combination lists are identical with or without it.  Registered
        joins written against the pre-checker four-argument signature are
        still supported: the checker is only passed to joins that accept it
        (their conditions then evaluate uncached).
        """
        from repro.core.registry import MULTIPATTERN_JOINS

        join_fn = MULTIPATTERN_JOINS.get(join)
        if checker is not None and _join_accepts_checker(join_fn):
            return join_fn(self, egraph, per_source_matches, max_combinations, checker=checker)
        return join_fn(self, egraph, per_source_matches, max_combinations)

    def _combine_product(
        self,
        egraph: EGraph,
        per_source_matches: Sequence[Sequence[Match]],
        max_combinations: Optional[int] = None,
        checker=None,
    ) -> List[MultiMatch]:
        """Cartesian-product the per-source matches and keep compatible ones."""
        combos: List[MultiMatch] = []
        count = 0
        for combination in itertools.product(*per_source_matches):
            count += 1
            if max_combinations is not None and count > max_combinations:
                break
            if self.skip_identical and len(combination) > 1:
                if len({m.eclass for m in combination}) == 1:
                    continue
            merged = self._compatible([m.subst for m in combination])
            if merged is None:
                continue
            multi = MultiMatch(eclasses=tuple(m.eclass for m in combination), subst=merged)
            if not self._condition_ok(egraph, multi, checker):
                continue
            combos.append(multi)
        return combos

    def _combine_hash(
        self,
        egraph: EGraph,
        per_source_matches: Sequence[Sequence[Match]],
        max_combinations: Optional[int] = None,
        checker=None,
    ) -> List[MultiMatch]:
        """Indexed join over the per-source matches; equals the product path.

        Sources join in ascending match-count order.  Each step equi-joins
        the accumulated partial combinations with the next source's matches
        on their *shared-variable tuple* -- the variables the new source has
        in common with every source already joined -- hashing whichever side
        is smaller and probing with the other.  Compatibility over shared
        variables is exactly what the key equality enforces, so no post-hoc
        filter is needed.

        Order parity: every surviving combination is tagged with its index
        tuple into the per-source lists; sorting by that tuple reproduces the
        product's lexicographic enumeration order, and a combination survives
        a ``max_combinations`` cap iff its product *rank* (its position in
        that enumeration, counting incompatible combinations too) is within
        the cap -- the same prefix the product loop would have enumerated
        before breaking.

        The cap also *bounds the join's work*, as it bounds the product
        loop's: a combination's rank is at least ``index * weight`` for every
        source, so each source list is truncated to the indices that can
        still make the cap before joining, and partial combinations whose
        accumulated minimum rank already reaches the cap are pruned at every
        join step.  Neither prune changes the surviving set (the final exact
        rank filter still runs); they keep a tight cap cheap even when the
        sources share no variables and the join degenerates to a product.
        """
        k = len(per_source_matches)
        sizes = [len(matches) for matches in per_source_matches]
        if 0 in sizes:
            return []

        # Lexicographic rank weights of an index tuple in the full product.
        weights = [1] * k
        for j in range(k - 2, -1, -1):
            weights[j] = weights[j + 1] * sizes[j + 1]

        if max_combinations is not None:
            if max_combinations <= 0:
                return []
            # rank >= index_j * weights[j]: indices past the cap can never
            # survive, so drop them before they enter the join.
            per_source_matches = [
                matches[: (max_combinations - 1) // weights[j] + 1]
                for j, matches in enumerate(per_source_matches)
            ]
            sizes = [len(matches) for matches in per_source_matches]

        # Ascending selectivity: start from the smallest match list so the
        # intermediate partial-combination sets stay as small as possible.
        order = sorted(range(k), key=lambda j: (sizes[j], j))

        first = order[0]
        # partial = (merged substitution, index tuple aligned with joined_order)
        partials: List[Tuple[Dict[str, int], Tuple[int, ...]]] = [
            (dict(m.subst), (i,)) for i, m in enumerate(per_source_matches[first])
        ]
        joined_order = [first]
        bound_vars = set(self.source_variables[first])

        for j in order[1:]:
            matches = per_source_matches[j]
            shared = tuple(v for v in self.source_variables[j] if v in bound_vars)
            merged_partials: List[Tuple[Dict[str, int], Tuple[int, ...]]] = []
            if len(matches) <= len(partials):
                # Index the new source's matches, probe with the partials.
                index: Dict[tuple, list] = {}
                for i, m in enumerate(matches):
                    index.setdefault(tuple(m.subst[v] for v in shared), []).append((i, m))
                for subst, idxs in partials:
                    for i, m in index.get(tuple(subst[v] for v in shared), ()):
                        merged = dict(subst)
                        merged.update(m.subst)
                        merged_partials.append((merged, idxs + (i,)))
            else:
                # Index the partials, probe with the new source's matches.
                index = {}
                for subst, idxs in partials:
                    index.setdefault(tuple(subst[v] for v in shared), []).append((subst, idxs))
                for i, m in enumerate(matches):
                    for subst, idxs in index.get(tuple(m.subst[v] for v in shared), ()):
                        merged = dict(subst)
                        merged.update(m.subst)
                        merged_partials.append((merged, idxs + (i,)))
            joined_order.append(j)
            if max_combinations is not None and merged_partials:
                # A partial's rank can only grow as later sources join, so
                # one already at the cap can be pruned without a final check.
                joined_weights = [weights[pos] for pos in joined_order]
                merged_partials = [
                    (subst, idxs)
                    for subst, idxs in merged_partials
                    if sum(i * w for i, w in zip(idxs, joined_weights)) < max_combinations
                ]
            partials = merged_partials
            if not partials:
                return []
            bound_vars.update(self.source_variables[j])

        # Restore product order (and the product's truncation semantics).
        keyed: List[Tuple[Tuple[int, ...], Dict[str, int]]] = []
        for subst, idxs in partials:
            positions = [0] * k
            for i, j in zip(idxs, joined_order):
                positions[j] = i
            if max_combinations is not None:
                rank = sum(positions[j] * weights[j] for j in range(k))
                if rank >= max_combinations:
                    continue
            keyed.append((tuple(positions), subst))
        keyed.sort(key=lambda entry: entry[0])

        combos: List[MultiMatch] = []
        for positions, subst in keyed:
            eclasses = tuple(per_source_matches[j][positions[j]].eclass for j in range(k))
            if self.skip_identical and k > 1 and len(set(eclasses)) == 1:
                continue
            multi = MultiMatch(eclasses=eclasses, subst=subst)
            if not self._condition_ok(egraph, multi, checker):
                continue
            combos.append(multi)
        return combos

    def search(
        self,
        egraph: EGraph,
        max_combinations: Optional[int] = None,
        join: str = "product",
    ) -> List[MultiMatch]:
        """Stand-alone search (used by tests); the runner goes through :class:`MultiPatternSearcher`."""
        per_source = [search_pattern(egraph, p) for p in self.sources]
        return self.combine(egraph, per_source, max_combinations, join=join)

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    def apply_match(self, egraph: EGraph, multi: MultiMatch) -> bool:
        """Instantiate every target output and union it with its matched output."""
        before = egraph.num_unions
        for target, matched_class in zip(self.targets, multi.eclasses):
            added = target.instantiate(egraph, multi.subst)
            egraph.union(matched_class, added)
        return egraph.num_unions != before

    def apply_deferred(self, egraph: EGraph, multi: MultiMatch, ground_memo: Optional[dict] = None) -> None:
        """Batched-apply entry point: add every target now, queue the unions.

        See :meth:`Rewrite.apply_deferred`; the unions land in one
        :meth:`EGraph.flush_deferred_unions` batch before the apply phase's
        single rebuild.
        """
        for target, matched_class in zip(self.targets, multi.eclasses):
            added = target.instantiate(egraph, multi.subst, ground_memo=ground_memo)
            egraph.union_deferred(matched_class, added)

    def __str__(self) -> str:
        srcs = ", ".join(str(p) for p in self.sources)
        tgts = ", ".join(str(p) for p in self.targets)
        return f"{self.name}: [{srcs}] => [{tgts}]"


class MultiPatternSearcher:
    """Shares e-matching work across the source patterns of many rules.

    This implements lines 1--8 and 10--15 of Algorithm 1: canonicalize every
    source pattern once up front, search each *unique* canonical pattern once
    per iteration, then hand decanonicalized per-source match lists back to
    each rule for combination.

    The two halves are exposed separately so the runner can fuse the first
    into its trie sweep:

    * :meth:`search_canonical` -- e-match every unique canonical pattern
      (compiled VM with optional delta seeding, or the naive matcher);
      alternatively the runner admits :meth:`canonical_patterns` into its
      :class:`~repro.egraph.machine.TrieMatcher` and obtains the same match
      lists from the single shared-prefix trie traversal that serves the
      single-pattern rules;
    * :meth:`combine_matches` -- decanonicalize and join each rule's
      per-source lists into :class:`MultiMatch` es (hash join by default in
      the runner; Cartesian product as the executable spec).

    :meth:`search` chains the two for stand-alone use.
    """

    def __init__(self, rules: Sequence[MultiPatternRewrite]) -> None:
        self.rules = list(rules)
        # canonical pattern string -> canonical Pattern
        self._canonical_patterns: Dict[str, Pattern] = {}
        # per rule, per source index: (canonical key, rename map canonical->original)
        self._rule_sources: List[List[Tuple[str, Dict[str, str]]]] = []
        for rule in self.rules:
            entries: List[Tuple[str, Dict[str, str]]] = []
            for source in rule.sources:
                canonical, rename_map = source.canonicalize()
                key = str(canonical)
                self._canonical_patterns.setdefault(key, canonical)
                entries.append((key, rename_map))
            self._rule_sources.append(entries)
        # One incremental matcher per unique canonical pattern, built on first
        # use: the runner's default trie path obtains canonical matches from
        # its own TrieMatcher and never needs these.
        self._matchers: Dict[str, object] = {}

    @property
    def num_unique_patterns(self) -> int:
        return len(self._canonical_patterns)

    def canonical_patterns(self) -> List[Tuple[str, Pattern]]:
        """The unique canonical source patterns as ``(key, pattern)`` pairs.

        Deterministic order (first appearance across the rule list), so the
        runner can admit them into the rule trie at stable indices.
        """
        return list(self._canonical_patterns.items())

    def search_canonical(
        self,
        egraph: EGraph,
        delta=None,
        matcher: str = "vm",
    ) -> Dict[str, List[Match]]:
        """E-match every unique canonical source pattern once.

        ``matcher`` selects the compiled VM (default) or the naive reference
        matcher; with the VM, ``delta`` optionally restricts the search to the
        e-classes dirtied since the previous call (plus cached matches).
        """
        if matcher == "naive":
            return {
                key: naive_search_pattern(egraph, pattern)
                for key, pattern in self._canonical_patterns.items()
            }
        from repro.egraph.machine import IncrementalMatcher

        for key, pattern in self._canonical_patterns.items():
            if key not in self._matchers:
                self._matchers[key] = IncrementalMatcher(pattern)
        return {
            key: self._matchers[key].search(egraph, delta=delta)
            for key in self._canonical_patterns
        }

    def combine_matches(
        self,
        egraph: EGraph,
        canonical_matches: Dict[str, List[Match]],
        max_combinations: Optional[int] = None,
        join: str = "product",
        checker=None,
    ) -> List[Tuple[MultiPatternRewrite, List[MultiMatch]]]:
        """Decanonicalize and combine per-rule; ``join`` / ``checker`` as in
        :meth:`MultiPatternRewrite.combine`.

        ``canonical_matches`` maps each canonical pattern key (see
        :meth:`canonical_patterns`) to its match list, from whichever search
        path produced it -- :meth:`search_canonical` or the runner's trie.
        """
        results: List[Tuple[MultiPatternRewrite, List[MultiMatch]]] = []
        for rule, entries in zip(self.rules, self._rule_sources):
            per_source: List[List[Match]] = []
            for key, rename_map in entries:
                decanonicalized = [
                    MultiPatternRewrite._decanonicalize(m, rename_map)
                    for m in canonical_matches[key]
                ]
                per_source.append(decanonicalized)
            combos = rule.combine(egraph, per_source, max_combinations, join=join, checker=checker)
            results.append((rule, combos))
        return results

    def search(
        self,
        egraph: EGraph,
        max_combinations: Optional[int] = None,
        delta=None,
        matcher: str = "vm",
        join: str = "product",
    ) -> List[Tuple[MultiPatternRewrite, List[MultiMatch]]]:
        """One iteration's worth of matches for every rule (search + combine)."""
        canonical_matches = self.search_canonical(egraph, delta=delta, matcher=matcher)
        return self.combine_matches(egraph, canonical_matches, max_combinations, join=join)
