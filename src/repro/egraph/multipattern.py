"""Multi-pattern rewrite rules (paper Section 4, Algorithm 1).

A multi-pattern rewrite has a *source* consisting of several S-expressions
(each rooted at one output) and a *target* with the same number of roots.
The rule states the equivalence of each pair of matched outputs.  The
canonical example (paper Figure 2) merges two ``matmul`` operators sharing an
input into one ``matmul`` over concatenated weights followed by a ``split``.

The application algorithm follows the paper:

1. Canonicalize the source patterns by variable renaming and collect the
   unique canonical patterns (so syntactically identical sources across rules
   and across the outputs of one rule are only e-matched once).
2. Each iteration, run the single-pattern e-matcher on every canonical
   pattern.
3. For every rule, take the Cartesian product of the (decanonicalized)
   matches of its source patterns, keep only combinations whose shared
   variables map to the same e-class, and apply those.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match, naive_search_pattern, search_pattern
from repro.egraph.pattern import Pattern, Substitution

__all__ = ["MultiMatch", "MultiPatternRewrite", "MultiPatternSearcher"]

MultiCondition = Callable[[EGraph, "MultiMatch"], bool]


@dataclass(frozen=True)
class MultiMatch:
    """A compatible combination of matches, one per source pattern."""

    eclasses: Tuple[int, ...]  # matched root e-class of each source output
    subst: Dict[str, int]  # merged substitution over all source variables

    def canonical(self, egraph: EGraph) -> "MultiMatch":
        return MultiMatch(
            eclasses=tuple(egraph.find(c) for c in self.eclasses),
            subst={k: egraph.find(v) for k, v in self.subst.items()},
        )


@dataclass
class MultiPatternRewrite:
    """A rewrite whose source and target each have several matched outputs."""

    name: str
    sources: List[Pattern]
    targets: List[Pattern]
    condition: Optional[MultiCondition] = None
    #: Skip combinations where all matched output e-classes coincide (the
    #: degenerate case of a symmetric rule matching one node against itself,
    #: e.g. merging a matmul with itself -- valid but useless, and a major
    #: source of e-graph blow-up).
    skip_identical: bool = True

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.targets):
            raise ValueError(
                f"multi-pattern rewrite {self.name!r}: {len(self.sources)} source outputs "
                f"but {len(self.targets)} target outputs"
            )
        if not self.sources:
            raise ValueError(f"multi-pattern rewrite {self.name!r} has no outputs")
        source_vars = set()
        for p in self.sources:
            source_vars.update(p.variables())
        for p in self.targets:
            unbound = set(p.variables()) - source_vars
            if unbound:
                raise ValueError(
                    f"multi-pattern rewrite {self.name!r}: target uses unbound variables {sorted(unbound)}"
                )
        # Precompile every source pattern's e-matching program (cached on the
        # pattern, so this is paid once per distinct pattern).
        for p in self.sources:
            p.compile()
        # Cached for the apply planner: the variables the targets consume, in
        # a deterministic order (cycle-filter leaves and the dedup key).
        target_vars: List[str] = []
        for target in self.targets:
            for name in target.variables():
                if name not in target_vars:
                    target_vars.append(name)
        self.target_variables: Tuple[str, ...] = tuple(target_vars)
        self.targets_key: Tuple[str, ...] = tuple(str(t) for t in self.targets)

    @classmethod
    def parse(
        cls,
        name: str,
        sources: Sequence[str],
        targets: Sequence[str],
        condition: Optional[MultiCondition] = None,
        skip_identical: bool = True,
    ) -> "MultiPatternRewrite":
        return cls(
            name=name,
            sources=[Pattern.parse(s) for s in sources],
            targets=[Pattern.parse(t) for t in targets],
            condition=condition,
            skip_identical=skip_identical,
        )

    @property
    def num_outputs(self) -> int:
        return len(self.sources)

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #

    @staticmethod
    def _decanonicalize(match: Match, rename_map: Dict[str, str]) -> Match:
        return Match(
            eclass=match.eclass,
            subst={rename_map[var]: cls for var, cls in match.subst.items()},
        )

    @staticmethod
    def _compatible(substs: Sequence[Substitution]) -> Optional[Substitution]:
        """Merge substitutions; return None when shared variables disagree."""
        merged: Dict[str, int] = {}
        for subst in substs:
            for var, cls in subst.items():
                existing = merged.get(var)
                if existing is None:
                    merged[var] = cls
                elif existing != cls:
                    return None
        return merged

    def combine(
        self,
        egraph: EGraph,
        per_source_matches: Sequence[Sequence[Match]],
        max_combinations: Optional[int] = None,
    ) -> List[MultiMatch]:
        """Cartesian-product the per-source matches and keep compatible ones."""
        combos: List[MultiMatch] = []
        count = 0
        for combination in itertools.product(*per_source_matches):
            count += 1
            if max_combinations is not None and count > max_combinations:
                break
            if self.skip_identical and len(combination) > 1:
                if len({m.eclass for m in combination}) == 1:
                    continue
            merged = self._compatible([m.subst for m in combination])
            if merged is None:
                continue
            multi = MultiMatch(eclasses=tuple(m.eclass for m in combination), subst=merged)
            if self.condition is not None and not self.condition(egraph, multi):
                continue
            combos.append(multi)
        return combos

    def search(
        self, egraph: EGraph, max_combinations: Optional[int] = None
    ) -> List[MultiMatch]:
        """Stand-alone search (used by tests); the runner goes through :class:`MultiPatternSearcher`."""
        per_source = [search_pattern(egraph, p) for p in self.sources]
        return self.combine(egraph, per_source, max_combinations)

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    def apply_match(self, egraph: EGraph, multi: MultiMatch) -> bool:
        """Instantiate every target output and union it with its matched output."""
        before = egraph.num_unions
        for target, matched_class in zip(self.targets, multi.eclasses):
            added = target.instantiate(egraph, multi.subst)
            egraph.union(matched_class, added)
        return egraph.num_unions != before

    def apply_deferred(self, egraph: EGraph, multi: MultiMatch, ground_memo: Optional[dict] = None) -> None:
        """Batched-apply entry point: add every target now, queue the unions.

        See :meth:`Rewrite.apply_deferred`; the unions land in one
        :meth:`EGraph.flush_deferred_unions` batch before the apply phase's
        single rebuild.
        """
        for target, matched_class in zip(self.targets, multi.eclasses):
            added = target.instantiate(egraph, multi.subst, ground_memo=ground_memo)
            egraph.union_deferred(matched_class, added)

    def __str__(self) -> str:
        srcs = ", ".join(str(p) for p in self.sources)
        tgts = ", ".join(str(p) for p in self.targets)
        return f"{self.name}: [{srcs}] => [{tgts}]"


class MultiPatternSearcher:
    """Shares e-matching work across the source patterns of many rules.

    This implements lines 1--8 and 10--15 of Algorithm 1: canonicalize every
    source pattern once up front, search each *unique* canonical pattern once
    per iteration, then hand decanonicalized per-source match lists back to
    each rule for combination.
    """

    def __init__(self, rules: Sequence[MultiPatternRewrite]) -> None:
        from repro.egraph.machine import IncrementalMatcher

        self.rules = list(rules)
        # canonical pattern string -> canonical Pattern
        self._canonical_patterns: Dict[str, Pattern] = {}
        # per rule, per source index: (canonical key, rename map canonical->original)
        self._rule_sources: List[List[Tuple[str, Dict[str, str]]]] = []
        for rule in self.rules:
            entries: List[Tuple[str, Dict[str, str]]] = []
            for source in rule.sources:
                canonical, rename_map = source.canonicalize()
                key = str(canonical)
                self._canonical_patterns.setdefault(key, canonical)
                entries.append((key, rename_map))
            self._rule_sources.append(entries)
        # One incremental matcher per unique canonical pattern (compiled once).
        self._matchers: Dict[str, IncrementalMatcher] = {
            key: IncrementalMatcher(pattern)
            for key, pattern in self._canonical_patterns.items()
        }

    @property
    def num_unique_patterns(self) -> int:
        return len(self._canonical_patterns)

    def search(
        self,
        egraph: EGraph,
        max_combinations: Optional[int] = None,
        delta=None,
        matcher: str = "vm",
    ) -> List[Tuple[MultiPatternRewrite, List[MultiMatch]]]:
        """One iteration's worth of matches for every rule.

        ``matcher`` selects the compiled VM (default) or the naive reference
        matcher; with the VM, ``delta`` optionally restricts the search to the
        e-classes dirtied since the previous call (plus cached matches).
        """
        if matcher == "naive":
            canonical_matches: Dict[str, List[Match]] = {
                key: naive_search_pattern(egraph, pattern)
                for key, pattern in self._canonical_patterns.items()
            }
        else:
            canonical_matches = {
                key: self._matchers[key].search(egraph, delta=delta)
                for key in self._canonical_patterns
            }
        results: List[Tuple[MultiPatternRewrite, List[MultiMatch]]] = []
        for rule, entries in zip(self.rules, self._rule_sources):
            per_source: List[List[Match]] = []
            for key, rename_map in entries:
                decanonicalized = [
                    MultiPatternRewrite._decanonicalize(m, rename_map)
                    for m in canonical_matches[key]
                ]
                per_source.append(decanonicalized)
            combos = rule.combine(egraph, per_source, max_combinations)
            results.append((rule, combos))
        return results
