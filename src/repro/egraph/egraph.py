"""The e-graph data structure.

An e-graph is a union-find over e-class ids, a hash-cons mapping canonical
e-nodes to the e-class containing them, and per-e-class node lists / parent
lists / analysis data.  The implementation follows ``egg``'s deferred
*rebuilding* design: unions only record work in a dirty list and
:meth:`EGraph.rebuild` restores the congruence invariant in a batch, which is
what makes equality saturation iterations cheap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.egraph.analysis import Analysis, NoAnalysis
from repro.egraph.language import ENode, RecExpr
from repro.egraph.unionfind import UnionFind

__all__ = ["EClass", "EGraph"]


@dataclass
class EClass:
    """A single equivalence class of e-nodes."""

    id: int
    nodes: List[ENode] = field(default_factory=list)
    # (parent enode as stored at insertion time, e-class the parent lives in)
    parents: List[Tuple[ENode, int]] = field(default_factory=list)
    data: Any = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


class EGraph:
    """E-graph with hash-consing, deferred rebuilding, and e-class analyses.

    Parameters
    ----------
    analysis:
        The e-class analysis to maintain.  Defaults to :class:`NoAnalysis`.
    """

    def __init__(self, analysis: Optional[Analysis] = None) -> None:
        self.analysis: Analysis = analysis if analysis is not None else NoAnalysis()
        self._uf = UnionFind()
        self._classes: Dict[int, EClass] = {}
        self._memo: Dict[ENode, int] = {}
        self._pending: List[int] = []  # e-classes whose parents need re-canonicalising
        self._analysis_pending: List[int] = []
        # Monotonically increasing insertion stamp for each distinct e-node.
        self._node_birth: Dict[ENode, int] = {}
        self._birth_counter = itertools.count()
        self._n_unions = 0
        # Exact e-node count, maintained through add / union / repair dedup so
        # num_enodes is O(1) instead of summing every class (it is consulted
        # several times per iteration plus once per applied plan entry).
        self._n_enodes = 0
        # op -> e-class ids (possibly stale; canonicalised lazily on access).
        # Nodes are never removed from a class, so entries only need find().
        self._op_classes: Dict[str, Set[int]] = {}
        # E-classes touched (created or merged into) since the last take_dirty();
        # the compiled matcher seeds incremental searches from this set.
        self._dirty: Set[int] = set()
        # Unions queued by union_deferred(); applied by flush_deferred_unions().
        self._deferred_unions: List[Tuple[int, int]] = []
        # E-classes whose condition-relevant state (existence, membership, or
        # analysis data) changed since the last take_condition_dirty(); feeds
        # condition-cache invalidation.  Unlike _dirty this also tracks
        # analysis repairs, which change data without touching structure.
        self._cond_dirty: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Total number of e-nodes across all e-classes (O(1), maintained counter)."""
        return self._n_enodes

    @property
    def num_eclasses(self) -> int:
        return len(self._classes)

    @property
    def num_enodes(self) -> int:
        return len(self)

    @property
    def num_unions(self) -> int:
        return self._n_unions

    def classes(self) -> Iterable[EClass]:
        """Iterate over the canonical e-classes."""
        return self._classes.values()

    def eclass_ids(self) -> List[int]:
        return list(self._classes.keys())

    def __getitem__(self, eclass_id: int) -> EClass:
        return self._classes[self.find(eclass_id)]

    def find(self, eclass_id: int) -> int:
        """Canonical id of the e-class containing ``eclass_id``."""
        return self._uf.find(eclass_id)

    def analysis_data(self, eclass_id: int) -> Any:
        return self._classes[self.find(eclass_id)].data

    def node_birth(self, enode: ENode) -> int:
        """Insertion stamp of ``enode`` (used by cycle filtering to find the newest node)."""
        return self._node_birth.get(self.canonicalize(enode), -1)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def canonicalize(self, enode: ENode) -> ENode:
        """Return ``enode`` with all children replaced by canonical e-class ids.

        Returns ``enode`` itself when it is already canonical (the common
        case on a rebuilt e-graph), so hot callers -- repair, cycle DFS,
        filter-list membership -- skip the allocation.
        """
        children = enode.children
        if not children:
            return enode
        find = self._uf.find
        new_children = tuple(find(c) for c in children)
        if new_children == children:
            return enode
        return ENode(enode.op, new_children)

    def lookup(self, enode: ENode) -> Optional[int]:
        """Return the e-class of ``enode`` if it is already present."""
        canonical = self.canonicalize(enode)
        found = self._memo.get(canonical)
        return None if found is None else self.find(found)

    def add(self, enode: ENode) -> int:
        """Add ``enode``; return the id of its e-class (existing or new)."""
        canonical = self.canonicalize(enode)
        existing = self._memo.get(canonical)
        if existing is not None:
            return self.find(existing)

        eclass_id = self._uf.make_set()
        eclass = EClass(id=eclass_id, nodes=[canonical])
        self._classes[eclass_id] = eclass
        self._memo[canonical] = eclass_id
        self._node_birth[canonical] = next(self._birth_counter)
        self._n_enodes += 1
        self._op_classes.setdefault(canonical.op, set()).add(eclass_id)
        self._dirty.add(eclass_id)
        self._cond_dirty.add(eclass_id)
        for child in set(canonical.children):
            self._classes[self.find(child)].parents.append((canonical, eclass_id))

        eclass.data = self.analysis.make(self, canonical)
        self.analysis.modify(self, eclass_id)
        return self.find(eclass_id)

    def add_expr(self, expr: RecExpr, index: Optional[int] = None) -> int:
        """Add every node of ``expr`` and return the e-class of its root (or ``index``)."""
        if index is None:
            index = expr.root
        ids: List[int] = []
        for node in expr.nodes:
            ids.append(self.add(node.map_children(lambda c: ids[c])))
        return self.find(ids[index])

    def add_term(self, text_or_sexpr) -> int:
        """Convenience: parse an S-expression (or accept a RecExpr) and add it."""
        if isinstance(text_or_sexpr, RecExpr):
            return self.add_expr(text_or_sexpr)
        if isinstance(text_or_sexpr, str):
            return self.add_expr(RecExpr.parse(text_or_sexpr))
        return self.add_expr(RecExpr.from_sexpr(text_or_sexpr))

    def union(self, a: int, b: int) -> int:
        """Assert that e-classes ``a`` and ``b`` are equivalent."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra

        self._n_unions += 1
        new_root = self._uf.union(ra, rb)
        other = rb if new_root == ra else ra

        winner = self._classes[new_root]
        loser = self._classes.pop(other)

        winner.nodes.extend(loser.nodes)
        winner.parents.extend(loser.parents)

        loser_data = loser.data
        merged, changed = self.analysis.merge(winner.data, loser_data)
        winner.data = merged
        self._dirty.add(new_root)
        self._cond_dirty.add(new_root)
        self._pending.append(new_root)
        # Queue analysis repair when the merged data differs from *either*
        # side's previous data: ``changed`` reports only the winner's side,
        # but the loser's parents computed their data from the loser's old
        # value, so a merge that leaves the winner untouched while replacing
        # the loser's data (e.g. valid absorbing invalid, or a side with
        # extra split records) must re-make the parents too -- otherwise
        # they keep stale facts forever.
        if changed or merged != loser_data:
            self._analysis_pending.append(new_root)
        self.analysis.modify(self, new_root)
        return new_root

    # ------------------------------------------------------------------ #
    # Deferred unions (batched apply support)
    # ------------------------------------------------------------------ #

    def union_deferred(self, a: int, b: int) -> None:
        """Queue ``union(a, b)`` without performing it.

        The apply phase of the saturation pipeline adds every planned RHS
        against a *frozen* union-find and queues the equivalences here;
        :meth:`flush_deferred_unions` applies them in one batch ahead of the
        phase's single :meth:`rebuild`.
        """
        self._deferred_unions.append((a, b))

    @property
    def num_deferred_unions(self) -> int:
        return len(self._deferred_unions)

    def flush_deferred_unions(self) -> int:
        """Apply all queued unions; returns the number that merged distinct classes."""
        pending, self._deferred_unions = self._deferred_unions, []
        before = self._n_unions
        for a, b in pending:
            self.union(a, b)
        return self._n_unions - before

    # ------------------------------------------------------------------ #
    # Rebuilding (congruence closure restoration)
    # ------------------------------------------------------------------ #

    def rebuild(self) -> int:
        """Restore the congruence and hash-cons invariants after unions.

        Each wave dedupes the pending worklist under :meth:`find` up front
        and repairs the whole batch at once: structural congruence first
        (:meth:`_repair_classes`), then one batched analysis wave
        (:meth:`_repair_analysis_classes`) that re-makes the parents of every
        class whose data changed.  Waves repeat until no repair queues
        further work, so the analysis data reaches its make/merge fixpoint
        before rebuild returns.

        Analysis hooks may re-enter the e-graph mid-wave:
        :meth:`~repro.egraph.analysis.Analysis.modify` is allowed to call
        :meth:`add` / :meth:`union` during repair (constant folding does).
        Work queued by such reentrant calls lands on the live worklists and
        is drained by a later wave of the same ``while`` loop -- classes
        created mid-wave are therefore repaired before rebuild returns (a
        contract pinned by the analysis regression tests).

        Returns the number of additional unions performed.
        """
        n_before = self._n_unions
        while self._pending or self._analysis_pending:
            todo = sorted({self.find(e) for e in self._pending})
            self._pending.clear()
            if todo:
                self._repair_classes(todo)

            analysis_todo = sorted({self.find(e) for e in self._analysis_pending})
            self._analysis_pending.clear()
            if analysis_todo:
                self._repair_analysis_classes(analysis_todo)
        return self._n_unions - n_before

    def _repair(self, eclass_id: int) -> None:
        self._repair_classes([eclass_id])

    def _repair_classes(self, todo: Sequence[int]) -> None:
        """Batched parent re-canonicalisation for one rebuild wave.

        Every pending class's parent list is taken (cleared in place), the
        entries are bucketed by parent operator, and each bucket is repaired
        with one bucket-local table: congruent duplicates -- which always
        share an op -- are found across *all* classes of the wave with a
        single associative probe, where the per-class loop paid a per-class
        dict probe plus a hash-cons probe per entry.  Unions discovered here
        re-queue the merged class, so entries appended to a live parent list
        mid-wave (by ``union`` moving the loser's parents across) are
        repaired by the next wave.
        """
        # (origin class, parent node, parent class) per parent op, in
        # (todo order, parent-list order); bucket order is op first-appearance.
        buckets: Dict[str, List[Tuple[int, ENode, int]]] = {}
        new_parents: Dict[int, Dict[ENode, int]] = {}
        for eclass_id in todo:
            eclass = self._classes.get(self.find(eclass_id))
            new_parents[eclass_id] = {}
            if eclass is None:
                continue
            taken, eclass.parents = eclass.parents, []
            for parent_node, parent_class in taken:
                buckets.setdefault(parent_node.op, []).append((eclass_id, parent_node, parent_class))

        for entries in buckets.values():
            # canonical parent -> e-class, shared across the wave: the first
            # occurrence wins, later congruent occurrences union into it.
            canon: Dict[ENode, int] = {}
            for origin, parent_node, parent_class in entries:
                self._memo.pop(parent_node, None)
                canonical = self.canonicalize(parent_node)
                parent_class = self.find(parent_class)
                previous = canon.get(canonical)
                if previous is not None:
                    parent_class = self.union(previous, parent_class)
                existing = self._memo.get(canonical)
                if existing is not None and self.find(existing) != parent_class:
                    parent_class = self.union(existing, parent_class)
                self._memo[canonical] = parent_class
                if canonical not in self._node_birth:
                    # Inherit the original node's stamp; minting a fresh one
                    # here would make birth order depend on rebuild order.
                    stamp = self._node_birth.get(parent_node)
                    self._node_birth[canonical] = next(self._birth_counter) if stamp is None else stamp
                parent_class = self.find(parent_class)
                canon[canonical] = parent_class
                new_parents[origin][canonical] = parent_class

        # Rewrite each affected class's parent list.  Classes merged during
        # the wave combine their repaired entries; raw entries appended to the
        # live list by mid-wave unions are kept (their class is re-queued, so
        # the next wave canonicalises them).
        by_root: Dict[int, List[int]] = {}
        for eclass_id in todo:
            by_root.setdefault(self.find(eclass_id), []).append(eclass_id)
        for root, origin_ids in by_root.items():
            eclass = self._classes.get(root)
            if eclass is None:
                continue
            merged: Dict[ENode, int] = {}
            for origin in origin_ids:
                for node, cls in new_parents[origin].items():
                    merged[node] = self.find(cls)
            appended = eclass.parents
            eclass.parents = list(merged.items())
            if appended:
                eclass.parents.extend(appended)
            # Deduplicate the e-nodes within the class under canonicalisation.
            deduped: Dict[ENode, None] = {}
            for node in eclass.nodes:
                deduped.setdefault(self.canonicalize(node), None)
            if len(deduped) != len(eclass.nodes):
                self._n_enodes -= len(eclass.nodes) - len(deduped)
            eclass.nodes = list(deduped.keys())

    def _repair_analysis(self, eclass_id: int) -> None:
        self._repair_analysis_classes([eclass_id])

    def _repair_analysis_classes(self, todo: Sequence[int]) -> None:
        """Batched analysis repair for one rebuild wave.

        The parent entries of every class in ``todo`` are gathered up front
        and deduplicated on ``(canonical parent node, parent class)``: a
        parent whose several children all changed data this wave appears in
        several parent lists, but its ``make`` runs once.  Entries are then
        re-made in gather order -- re-canonicalised at use time, because a
        reentrant ``modify`` hook (e.g. constant folding calling
        ``add``/``union``) may merge classes mid-wave.  Changes queue the
        parent for the next wave, exactly like structural repair.
        """
        entries: List[Tuple[ENode, int]] = []
        seen: Set[Tuple[ENode, int]] = set()
        for eclass_id in todo:
            eclass = self._classes.get(self.find(eclass_id))
            if eclass is None:
                continue
            for parent_node, parent_class in list(eclass.parents):
                canonical = self.canonicalize(parent_node)
                entry = (canonical, self.find(parent_class))
                if entry in seen:
                    continue
                seen.add(entry)
                entries.append(entry)

        for parent_node, parent_class in entries:
            parent_class = self.find(parent_class)
            parent = self._classes.get(parent_class)
            if parent is None:
                continue
            new_data = self.analysis.make(self, self.canonicalize(parent_node))
            merged, changed = self.analysis.merge(parent.data, new_data)
            if changed:
                parent.data = merged
                self._analysis_pending.append(parent_class)
                self._cond_dirty.add(parent_class)
                self.analysis.modify(self, parent_class)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_clean(self) -> bool:
        """True when no rebuilding work is pending."""
        return not self._pending and not self._analysis_pending

    def equivalent(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def enodes(self) -> Iterable[Tuple[int, ENode]]:
        """Iterate ``(eclass_id, enode)`` over all canonical e-nodes."""
        for eclass in self._classes.values():
            for node in eclass.nodes:
                yield eclass.id, node

    def nodes_by_op(self) -> Dict[str, List[Tuple[int, ENode]]]:
        """Group canonical e-nodes by operator (used by e-matching)."""
        table: Dict[str, List[Tuple[int, ENode]]] = {}
        for op in self._op_classes:
            entries = [
                (eclass_id, node)
                for eclass_id in sorted(self.classes_with_op(op))
                for node in self._classes[eclass_id].nodes
                if node.op == op
            ]
            if entries:
                table[op] = entries
        return table

    def classes_with_op(self, op: str) -> Set[int]:
        """Canonical ids of the e-classes containing at least one ``op`` e-node.

        Served from an index maintained by :meth:`add`; merged-away ids are
        canonicalised (and compacted back into the index) on access, so this
        never scans the whole e-graph.
        """
        ids = self._op_classes.get(op)
        if not ids:
            return set()
        canonical = {self.find(c) for c in ids}
        if len(canonical) != len(ids):
            self._op_classes[op] = set(canonical)
        return canonical

    # ------------------------------------------------------------------ #
    # Dirty tracking (incremental e-matching support)
    # ------------------------------------------------------------------ #

    def dirty_classes(self) -> Set[int]:
        """Canonical e-classes touched since the last :meth:`take_dirty`."""
        return {self.find(c) for c in self._dirty}

    def take_dirty(self) -> Set[int]:
        """Return the dirty set and reset it (one exploration iteration's delta)."""
        dirty = self.dirty_classes()
        self._dirty.clear()
        return dirty

    def take_condition_dirty(self) -> Set[int]:
        """Canonical e-classes whose condition-relevant state changed; resets.

        A superset of the structural dirty set: classes created or merged
        into, *plus* classes whose analysis data changed during rebuild
        repairs.  Condition caches (:mod:`repro.egraph.checkcache`) invalidate
        memoized verdicts over these classes after each rebuild.
        """
        dirty = {self.find(c) for c in self._cond_dirty}
        self._cond_dirty.clear()
        return dirty

    def represents(self, eclass_id: int, expr: RecExpr, index: Optional[int] = None) -> bool:
        """Check whether ``expr`` is represented by e-class ``eclass_id``."""
        if index is None:
            index = expr.root

        def go(i: int, cls: int) -> bool:
            cls = self.find(cls)
            target = expr.nodes[i]
            for node in self._classes[cls].nodes:
                if node.op == target.op and len(node.children) == len(target.children):
                    if all(go(ci, cc) for ci, cc in zip(target.children, node.children)):
                        return True
            return False

        return go(index, eclass_id)

    def extract_any(self, eclass_id: int) -> RecExpr:
        """Extract *some* represented term (smallest by node count, greedy)."""
        from repro.egraph.extraction.greedy import GreedyExtractor

        extractor = GreedyExtractor(node_cost=lambda enode, egraph: 1.0)
        return extractor.extract(self, eclass_id).expr

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_dot(self) -> str:
        """Render the e-graph in Graphviz dot format (for debugging/docs)."""
        lines = ["digraph egraph {", "  compound=true;", "  node [shape=record];"]
        for eclass in self._classes.values():
            lines.append(f"  subgraph cluster_{eclass.id} {{")
            lines.append(f'    label="e-class {eclass.id}";')
            for i, node in enumerate(eclass.nodes):
                label = node.op.replace('"', '\\"')
                lines.append(f'    n{eclass.id}_{i} [label="{label}"];')
            lines.append("  }")
        for eclass in self._classes.values():
            for i, node in enumerate(eclass.nodes):
                for child in node.children:
                    child = self.find(child)
                    lines.append(f"  n{eclass.id}_{i} -> n{child}_0 [lhead=cluster_{child}];")
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, int]:
        return {
            "eclasses": self.num_eclasses,
            "enodes": self.num_enodes,
            "unions": self.num_unions,
        }
