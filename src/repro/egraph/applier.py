"""Batched apply plans: the *plan* and *apply* stages of the saturation pipeline.

The exploration loop used to interleave e-graph mutation with matching: each
rule searched, then immediately applied its matches.  The pipeline instead
collects every surviving match of an iteration into an :class:`ApplyPlan`
first, then executes the whole plan against the e-graph in one pass:

* **dedup** -- two matches that would instantiate the *same* right-hand side
  under the *same* relevant bindings and union it with the *same* matched
  class are one unit of work; the plan applies the first and drops the rest
  (hash-consing makes the duplicates no-ops anyway, so this only saves time,
  it never changes the resulting e-graph);
* **bulk add** -- RHS instantiations share one ground-sub-term memo
  (:meth:`Pattern.instantiate`'s ``ground_memo``), so ground fragments that
  recur across matches and rules are hash-consed once per phase;
* **queued unions** -- applications call :meth:`EGraph.union_deferred`, so
  every RHS is added against a frozen union-find; the runner flushes the
  queue and triggers a *single* coordinated :meth:`EGraph.rebuild` per phase.

Plan execution is deterministic (entries run in insertion order), which is
what lets the naive matcher, the per-rule VM, and the shared-prefix trie
produce bit-for-bit identical saturation trajectories: they hand the planner
identical ordered match lists, and everything after that is matcher-blind.
The same contract covers the two multi-pattern join implementations (hash
and product), which hand the planner identical ordered combination lists.

See ``docs/apply_plan.md`` for the full plan/apply/rebuild story and
``docs/architecture.md`` for where it sits in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.egraph.cycles import CycleFilter, NoCycleFilter
from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match
from repro.egraph.multipattern import MultiMatch, MultiPatternRewrite
from repro.egraph.pattern import PatternNode
from repro.egraph.rewrite import Rewrite

__all__ = ["ApplyStats", "ApplyPlan"]

_SINGLE, _MULTI = 0, 1


@dataclass
class ApplyStats:
    """What one plan execution did."""

    n_planned: int = 0  # matches offered to the planner
    n_deduped: int = 0  # dropped as identical RHS instantiations
    n_applied: int = 0  # entries actually executed
    n_skipped_cycle: int = 0  # rejected by the cycle filter
    n_unions_queued: int = 0  # deferred unions produced
    truncated: bool = False  # stopped early at the node limit


class ApplyPlan:
    """All surviving matches of one iteration, deduped and ready to execute.

    Usage (the runner's plan stage): call :meth:`add_multi` for every
    multi-pattern combination first, then :meth:`add_rewrite` for every
    admitted single-pattern match -- insertion order is application order,
    and multi entries lead so a node-limit truncation spends the ``k_multi``
    budget on the still-compact graph -- then :meth:`execute` once.  A plan
    is single-use: build, execute, discard.
    """

    def __init__(self) -> None:
        # (kind, rule, match) in application order.
        self._entries: List[tuple] = []
        self._seen: Set[tuple] = set()
        self.n_planned = 0
        self.n_deduped = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def add_rewrite(self, rewrite: Rewrite, match: Match) -> bool:
        """Plan one single-pattern application; False when deduped away.

        The dedup key is the *effect* of the application -- which RHS, under
        which bindings of the variables the RHS actually uses, unioned with
        which class -- so two rules sharing a right-hand side dedup against
        each other, as do two matches differing only in variables the RHS
        ignores.
        """
        self.n_planned += 1
        key = (
            _SINGLE,
            rewrite.rhs_key,
            match.eclass,
            tuple(sorted((v, match.subst[v]) for v in rewrite.rhs_variables)),
        )
        if key in self._seen:
            self.n_deduped += 1
            return False
        self._seen.add(key)
        self._entries.append((_SINGLE, rewrite, match))
        return True

    def add_multi(self, rule: MultiPatternRewrite, multi: MultiMatch) -> bool:
        """Plan one multi-pattern application; False when deduped away."""
        self.n_planned += 1
        key = (
            _MULTI,
            rule.targets_key,
            multi.eclasses,
            tuple(sorted((v, multi.subst[v]) for v in rule.target_variables if v in multi.subst)),
        )
        if key in self._seen:
            self.n_deduped += 1
            return False
        self._seen.add(key)
        self._entries.append((_MULTI, rule, multi))
        return True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        egraph: EGraph,
        cycle_filter: Optional[CycleFilter] = None,
        node_limit: Optional[int] = None,
    ) -> ApplyStats:
        """Run the plan: per-entry cycle check, bulk add, queue unions.

        The caller owns the phase boundary: it must flush the deferred
        unions and rebuild once afterwards (the runner's rebuild stage).
        Execution stops -- deterministically -- as soon as the e-graph
        exceeds ``node_limit``.
        """
        if cycle_filter is None:
            cycle_filter = NoCycleFilter()
        stats = ApplyStats(n_planned=self.n_planned, n_deduped=self.n_deduped)
        unions_before = egraph.num_deferred_unions
        ground_memo: Dict[PatternNode, int] = {}

        for kind, rule, match in self._entries:
            if kind == _SINGLE:
                leaves = [match.subst[v] for v in rule.rhs_variables]
                if not cycle_filter.allows(egraph, [match.eclass], leaves):
                    stats.n_skipped_cycle += 1
                    continue
                rule.apply_deferred(egraph, match, ground_memo=ground_memo)
            else:
                leaves = [match.subst[v] for v in rule.target_variables if v in match.subst]
                if not cycle_filter.allows(egraph, list(match.eclasses), leaves):
                    stats.n_skipped_cycle += 1
                    continue
                rule.apply_deferred(egraph, match, ground_memo=ground_memo)
            stats.n_applied += 1
            if node_limit is not None and egraph.num_enodes > node_limit:
                stats.truncated = True
                break

        stats.n_unions_queued = egraph.num_deferred_unions - unions_before
        return stats
