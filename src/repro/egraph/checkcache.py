"""Memoized shape/condition checking (the condition-check cache).

Every exploration iteration re-filters each rule's full match list through
its shape-inference condition (paper Section 4), and the multi-pattern join
evaluates the same ``targets_shape_valid`` check for thousands of congruent
combinations.  A condition's verdict depends only on the e-graph state of the
e-classes the match binds -- their existence, membership, and analysis data
-- so identical canonical bindings re-checked across iterations are wasted
work unless one of those classes changed in between.

:class:`MemoizedConditionChecker` caches verdicts keyed on
``(rule id, canonical binding tuple)`` and invalidates by *generation*: the
runner calls :meth:`~ConditionChecker.advance` after each rebuild with the
e-classes whose condition-relevant state changed
(:meth:`~repro.egraph.egraph.EGraph.take_condition_dirty` -- creations,
merges, and analysis-data repairs).  A cached verdict is served only when
none of its binding classes was touched after it was computed, so
analysis-data changes can never serve a stale verdict; the cache is
therefore *trajectory-invisible* (golden tests pin cache-on == cache-off
bit-for-bit).

:class:`DirectConditionChecker` is the cache-off path behind the same
interface: it evaluates every condition but still accounts time and call
counts, so the ``condition_seconds`` stat is comparable across the
``condition_cache`` knob's settings.

Scope, post shape analysis: with the e-class shape analysis on
(:mod:`repro.egraph.shapeanalysis`), ``targets_shape_valid`` evaluates as a
compiled program over precomputed per-class facts, so a direct check costs
about as much as building the memo's binding key -- measured on nasrnn the
memo was a small net *regression* in that regime (its hit rate is low
because multi-pattern binding tuples rarely repeat across rebuilds).  The
``condition_cache="auto"`` setting therefore resolves to ``"off"`` when the
e-graph's analysis advertises compiled facts and to ``"memo"`` otherwise
(:func:`resolve_condition_cache`); the memo remains the right tool for the
on-demand inference spec path (``shape_analysis="off"``) and for expensive
third-party conditions.

Contract for conditions: a condition must be a pure function of the e-graph
state of the e-classes its match *binds* -- the substitution's values, whose
analysis data shape inference reads -- and not of the matched root classes
or global e-graph state (all the built-in conditions in
:mod:`repro.rules.conditions` qualify: they only consult
``match.subst`` and ``egraph.analysis_data``).  The matched roots are
deliberately excluded from the cache key: the apply phase unions every
matched root with its instantiated right-hand side, so keying on them would
invalidate the whole cache every iteration.  A condition that does read the
roots or global state needs cache mode ``"off"``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Tuple

__all__ = [
    "ConditionChecker",
    "DirectConditionChecker",
    "MemoizedConditionChecker",
    "resolve_condition_cache",
]


def resolve_condition_cache(kind: str, analysis) -> str:
    """Resolve the ``condition_cache`` knob against the e-graph's analysis.

    ``"auto"`` (the default) picks ``"off"`` when ``analysis`` advertises
    compiled per-class shape facts (``analysis.compiled_conditions`` --
    condition evaluation is then an O(1)-ish fact lookup that the memo's
    key construction cannot beat) and ``"memo"`` otherwise (the on-demand
    inference spec path, where a served verdict saves a full re-inference).
    Concrete kinds pass through unchanged.
    """
    if kind != "auto":
        return kind
    return "off" if getattr(analysis, "compiled_conditions", False) else "memo"


def _binding_key(egraph, match, var_order=None) -> Tuple[int, ...]:
    """Canonical binding tuple of a match: its substitution under ``find``.

    This is everything a condition may legally read (see the module
    docstring): congruent matches -- and matches differing only in their
    matched root e-classes, which the apply phase unions every iteration --
    share one entry.  ``var_order`` is the rule's precomputed variable tuple
    (a match always binds exactly its rule's variables), which keys by
    position and skips sorting; without it the variables sort by name.
    """
    find = egraph.find
    subst = match.subst
    if var_order is not None:
        return tuple(find(subst[var]) for var in var_order)
    return tuple(find(cls) for _, cls in sorted(subst.items()))


class ConditionChecker:
    """Interface shared by the cache-on and cache-off condition paths.

    ``check`` evaluates (or recalls) one condition for one match; ``advance``
    opens a new generation after a rebuild.  ``hits`` / ``misses`` /
    ``seconds`` accumulate over the checker's lifetime -- the runner reports
    per-iteration deltas.
    """

    #: Registry name of this checker kind.
    kind = "base"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        #: Cached verdicts discarded because a binding class changed.
        self.invalidated = 0
        #: Total time spent in check() calls (lookups + evaluations).
        self.seconds = 0.0

    def check(self, rule_key: int, condition: Callable, egraph, match, var_order=None) -> bool:
        raise NotImplementedError

    def advance(self, dirty_classes: Iterable[int]) -> None:
        """A rebuild completed; ``dirty_classes`` may no longer serve cached verdicts."""

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DirectConditionChecker(ConditionChecker):
    """Cache off: every check evaluates the condition (counted as a miss)."""

    kind = "off"

    def check(self, rule_key: int, condition: Callable, egraph, match, var_order=None) -> bool:
        t0 = time.perf_counter()
        verdict = condition(egraph, match)
        self.seconds += time.perf_counter() - t0
        self.misses += 1
        return verdict


class MemoizedConditionChecker(ConditionChecker):
    """Generation-invalidated verdict cache keyed on canonical bindings.

    Entries record the generation they were computed in; a class touched in
    a later generation stamps out every entry that binds it.  Stamps are per
    e-class, so untouched bindings survive rebuilds and the cache keeps
    paying off across iterations (the common case: delta search re-offers
    the full cached match list every iteration, but most classes are quiet).
    """

    kind = "memo"

    #: Entry cap: entries keyed on merged-away class ids can never be looked
    #: up again (keys are recomputed under ``find``), so the store can only
    #: grow; past the cap it is dropped wholesale and rebuilt from traffic.
    #: The cap is far above what a node-limited saturation run accumulates
    #: (tens of thousands of bindings per multi-heavy iteration, <= 15
    #: iterations), so evictions are a memory backstop, not a hot path.
    max_entries = 1_000_000

    def __init__(self) -> None:
        super().__init__()
        self._generation = 0
        # canonical e-class -> generation in which it last changed.
        self._stamps: Dict[int, int] = {}
        # (rule id, binding key) -> (generation computed, verdict).
        self._verdicts: Dict[tuple, Tuple[int, bool]] = {}
        #: Times the store hit ``max_entries`` and was dropped.
        self.evictions = 0

    def check(self, rule_key: int, condition: Callable, egraph, match, var_order=None) -> bool:
        t0 = time.perf_counter()
        bindings = _binding_key(egraph, match, var_order)
        key = (rule_key, bindings)
        entry = self._verdicts.get(key)
        if entry is not None:
            generation, verdict = entry
            stamps = self._stamps
            if generation >= self._generation or all(
                stamps.get(cls, 0) <= generation for cls in bindings
            ):
                self.hits += 1
                self.seconds += time.perf_counter() - t0
                return verdict
            self.invalidated += 1
        verdict = condition(egraph, match)
        if len(self._verdicts) >= self.max_entries:
            self._verdicts.clear()
            self.evictions += 1
        self._verdicts[key] = (self._generation, verdict)
        self.misses += 1
        self.seconds += time.perf_counter() - t0
        return verdict

    def advance(self, dirty_classes: Iterable[int]) -> None:
        self._generation += 1
        generation = self._generation
        stamps = self._stamps
        for cls in dirty_classes:
            stamps[cls] = generation

    def clear(self) -> None:
        """Drop every cached verdict (stamps and counters are kept)."""
        self._verdicts.clear()

    def __len__(self) -> int:
        return len(self._verdicts)
