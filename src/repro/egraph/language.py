"""E-nodes and recursive expressions (terms).

Terms in this library are *untyped symbolic expressions*: an operator name
(a string) applied to zero or more children.  Constants (integers, shape
strings, tensor identifiers) are represented as childless e-nodes whose
operator string is the constant itself, exactly as ``egg`` represents symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import sexpr as sx

__all__ = ["ENode", "RecExpr"]


@dataclass(frozen=True)
class ENode:
    """An operator applied to children e-classes (or term indices).

    ``children`` are interpreted relative to a context: inside an
    :class:`~repro.egraph.egraph.EGraph` they are e-class ids, inside a
    :class:`RecExpr` they are indices of earlier entries in the expression.
    """

    op: str
    children: Tuple[int, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if not self.children:
            return self.op
        return f"({self.op} {' '.join(str(c) for c in self.children)})"

    @property
    def arity(self) -> int:
        return len(self.children)

    def is_leaf(self) -> bool:
        return not self.children

    def map_children(self, fn: Callable[[int], int]) -> "ENode":
        """Return a copy of this e-node with every child id mapped by ``fn``."""
        if not self.children:
            return self
        return ENode(self.op, tuple(fn(c) for c in self.children))

    def matches_signature(self, op: str, arity: int) -> bool:
        return self.op == op and len(self.children) == arity


@dataclass
class RecExpr:
    """A term stored as a post-order array of e-nodes.

    ``nodes[i].children`` index into ``nodes[:i]``; the last node is the root.
    This mirrors ``egg``'s ``RecExpr`` and makes structural sharing explicit:
    a DAG (e.g. a tensor graph where one tensor feeds several operators) is
    stored with each shared sub-term appearing once.
    """

    nodes: List[ENode] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[ENode]:
        return iter(self.nodes)

    @property
    def root(self) -> int:
        if not self.nodes:
            raise ValueError("empty RecExpr has no root")
        return len(self.nodes) - 1

    def add(self, node: ENode) -> int:
        """Append ``node`` (children must reference existing indices)."""
        for child in node.children:
            if not 0 <= child < len(self.nodes):
                raise ValueError(f"child index {child} out of range for RecExpr of size {len(self.nodes)}")
        self.nodes.append(node)
        return len(self.nodes) - 1

    def add_unique(self, node: ENode, memo: Dict[ENode, int]) -> int:
        """Append ``node`` unless an identical node exists in ``memo``."""
        existing = memo.get(node)
        if existing is not None:
            return existing
        idx = self.add(node)
        memo[node] = idx
        return idx

    # ------------------------------------------------------------------ #
    # Conversion to / from S-expressions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_sexpr(cls, expr: sx.SExpr) -> "RecExpr":
        """Build a :class:`RecExpr` from a parsed S-expression.

        Identical subtrees are hash-consed into a single entry so that
        textual sharing round-trips into structural sharing.
        """
        rec = cls()
        memo: Dict[ENode, int] = {}

        def go(e: sx.SExpr) -> int:
            if isinstance(e, str):
                return rec.add_unique(ENode(e), memo)
            if not e:
                raise ValueError("empty list in S-expression")
            head = e[0]
            if not isinstance(head, str):
                raise ValueError(f"operator must be an atom, got {head!r}")
            children = tuple(go(child) for child in e[1:])
            return rec.add_unique(ENode(head, children), memo)

        go(expr)
        return rec

    @classmethod
    def parse(cls, text: str) -> "RecExpr":
        """Parse an S-expression string directly into a :class:`RecExpr`."""
        return cls.from_sexpr(sx.parse(text))

    def to_sexpr(self, index: Optional[int] = None) -> sx.SExpr:
        """Convert the sub-term rooted at ``index`` (default: root) to an S-expression."""
        if index is None:
            index = self.root

        def go(i: int) -> sx.SExpr:
            node = self.nodes[i]
            if node.is_leaf():
                return node.op
            return [node.op] + [go(c) for c in node.children]

        return go(index)

    def __str__(self) -> str:
        return sx.to_string(self.to_sexpr())

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #

    def subterm_size(self, index: Optional[int] = None) -> int:
        """Number of distinct nodes reachable from ``index`` (default root)."""
        if index is None:
            index = self.root
        seen = set()

        def go(i: int) -> None:
            if i in seen:
                return
            seen.add(i)
            for c in self.nodes[i].children:
                go(c)

        go(index)
        return len(seen)

    def ops(self) -> List[str]:
        """Operator names in storage order."""
        return [n.op for n in self.nodes]

    def map_values(self, fn: Callable[[ENode, Sequence[object]], object]) -> object:
        """Bottom-up fold over the expression, returning the root value.

        ``fn`` receives each e-node and the already-computed values of its
        children; results are memoised per node index (so shared sub-terms
        are folded exactly once).
        """
        values: List[object] = []
        for node in self.nodes:
            child_values = [values[c] for c in node.children]
            values.append(fn(node, child_values))
        return values[self.root]
