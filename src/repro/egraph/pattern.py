"""Patterns: terms with placeholder variables.

A pattern is the left- or right-hand side of a rewrite rule (paper Section
2.1).  Variables are written ``?name`` in the S-expression syntax, e.g.::

    (matmul ?act ?input1 ?input2)

Patterns support:

* parsing from S-expressions,
* instantiation under a substitution (variable -> e-class id),
* canonicalization by variable renaming, used by the multi-pattern algorithm
  (paper Algorithm 1) to share e-matching work between rules whose source
  patterns differ only in variable names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import sexpr as sx
from repro.egraph.language import ENode, RecExpr

__all__ = ["Pattern", "PatternNode", "PatternVar", "Substitution"]

Substitution = Dict[str, int]


@dataclass(frozen=True)
class PatternVar:
    """A placeholder variable; matches any e-class."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class PatternNode:
    """An operator applied to child pattern terms."""

    op: str
    children: Tuple["PatternTerm", ...] = ()

    def __str__(self) -> str:
        if not self.children:
            return self.op
        return f"({self.op} {' '.join(str(c) for c in self.children)})"


PatternTerm = Union[PatternVar, PatternNode]


@dataclass(frozen=True)
class Pattern:
    """A complete pattern with a root term."""

    root: PatternTerm

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        return cls.from_sexpr(sx.parse(text))

    @classmethod
    def from_sexpr(cls, expr: sx.SExpr) -> "Pattern":
        return cls(cls._term_from_sexpr(expr))

    @staticmethod
    def _term_from_sexpr(expr: sx.SExpr) -> PatternTerm:
        if isinstance(expr, str):
            if sx.is_variable(expr):
                return PatternVar(expr[1:])
            return PatternNode(expr)
        if not expr:
            raise ValueError("empty list in pattern")
        head = expr[0]
        if not isinstance(head, str) or sx.is_variable(head):
            raise ValueError(f"pattern operator must be a concrete atom, got {head!r}")
        children = tuple(Pattern._term_from_sexpr(e) for e in expr[1:])
        return PatternNode(head, children)

    def __str__(self) -> str:
        return str(self.root)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def variables(self) -> List[str]:
        """Variable names in order of first appearance."""
        seen: List[str] = []

        def go(term: PatternTerm) -> None:
            if isinstance(term, PatternVar):
                if term.name not in seen:
                    seen.append(term.name)
            else:
                for child in term.children:
                    go(child)

        go(self.root)
        return seen

    def size(self) -> int:
        """Number of operator nodes (variables not counted)."""

        def go(term: PatternTerm) -> int:
            if isinstance(term, PatternVar):
                return 0
            return 1 + sum(go(c) for c in term.children)

        return go(self.root)

    def is_ground(self) -> bool:
        return not self.variables()

    def depth(self) -> int:
        """Operator depth (variables contribute 0); bounds e-matching descent."""

        def go(term: PatternTerm) -> int:
            if isinstance(term, PatternVar):
                return 0
            return 1 + max((go(c) for c in term.children), default=0)

        return go(self.root)

    # ------------------------------------------------------------------ #
    # Compilation (e-matching virtual machine)
    # ------------------------------------------------------------------ #

    def compile(self):
        """Compile to a flat e-matching :class:`~repro.egraph.machine.Program`.

        Programs are cached per pattern, so rules constructed once pay the
        compilation cost once, at :class:`~repro.egraph.rewrite.Rewrite` /
        ``RuleSet`` construction time.
        """
        from repro.egraph.machine import compile_pattern

        return compile_pattern(self)

    def ops(self) -> List[str]:
        result: List[str] = []

        def go(term: PatternTerm) -> None:
            if isinstance(term, PatternNode):
                result.append(term.op)
                for child in term.children:
                    go(child)

        go(self.root)
        return result

    # ------------------------------------------------------------------ #
    # Canonicalization (Algorithm 1, line 4)
    # ------------------------------------------------------------------ #

    def canonicalize(self) -> Tuple["Pattern", Dict[str, str]]:
        """Rename variables to ``?c0, ?c1, ...`` in order of first appearance.

        Returns ``(canonical_pattern, rename_map)`` where ``rename_map`` maps
        each canonical variable name back to the original variable name, so a
        match of the canonical pattern can be *decanonicalized*.
        """
        order = self.variables()
        to_canonical = {name: f"c{i}" for i, name in enumerate(order)}
        rename_map = {canonical: original for original, canonical in to_canonical.items()}

        def go(term: PatternTerm) -> PatternTerm:
            if isinstance(term, PatternVar):
                return PatternVar(to_canonical[term.name])
            return PatternNode(term.op, tuple(go(c) for c in term.children))

        return Pattern(go(self.root)), rename_map

    # ------------------------------------------------------------------ #
    # Instantiation
    # ------------------------------------------------------------------ #

    def instantiate(
        self,
        egraph,
        subst: Substitution,
        ground_memo: Optional[Dict[PatternNode, int]] = None,
    ) -> int:
        """Add this pattern to ``egraph`` under ``subst`` and return the root e-class.

        ``ground_memo`` optionally caches the e-class of every *ground*
        sub-term (no variables below it) across instantiations.  A batched
        apply plan shares one memo for a whole apply phase -- ground
        sub-terms recur across matches and rules, and while unions are
        deferred the cached ids stay canonical -- turning repeated hash-cons
        descents into single dict hits.  (Hash-consing makes repeated adds
        no-ops anyway, so the memo never changes the resulting e-graph.)
        """

        def go(term: PatternTerm) -> Tuple[int, bool]:
            if isinstance(term, PatternVar):
                try:
                    return subst[term.name], False
                except KeyError as exc:
                    raise KeyError(f"substitution missing variable ?{term.name}") from exc
            if ground_memo is not None:
                hit = ground_memo.get(term)
                if hit is not None:
                    return hit, True
            results = [go(c) for c in term.children]
            eclass = egraph.add(ENode(term.op, tuple(r[0] for r in results)))
            ground = all(r[1] for r in results)
            if ground and ground_memo is not None:
                ground_memo[term] = eclass
            return eclass, ground

        return go(self.root)[0]

    def preview_enodes(self, subst: Substitution) -> List[ENode]:
        """E-nodes that *would* be created by :meth:`instantiate` (bottom-up order).

        Child ids referring to pattern-internal nodes are marked with negative
        placeholders; only the e-classes drawn from ``subst`` appear as real
        (non-negative) ids.  Used by cycle pre-filtering, which only needs to
        know which existing e-classes the new subgraph hangs below.
        """
        nodes: List[ENode] = []

        def go(term: PatternTerm) -> int:
            if isinstance(term, PatternVar):
                return subst[term.name]
            child_ids = tuple(go(c) for c in term.children)
            nodes.append(ENode(term.op, child_ids))
            return -len(nodes)  # placeholder id for internal nodes

        go(self.root)
        return nodes

    def substituted_leaves(self, subst: Substitution) -> List[int]:
        """The e-class ids that this pattern's variables map to under ``subst``."""
        return [subst[name] for name in self.variables()]

    def to_recexpr(self, subst_terms: Optional[Dict[str, RecExpr]] = None) -> RecExpr:
        """Convert a ground pattern (or one with RecExpr bindings) to a RecExpr."""
        rec = RecExpr()
        memo: Dict[ENode, int] = {}

        def go(term: PatternTerm) -> int:
            if isinstance(term, PatternVar):
                if subst_terms is None or term.name not in subst_terms:
                    raise ValueError(f"unbound variable ?{term.name} in pattern")
                sub = subst_terms[term.name]
                ids: List[int] = []
                for node in sub.nodes:
                    ids.append(rec.add_unique(node.map_children(lambda c: ids[c]), memo))
                return ids[sub.root]
            children = tuple(go(c) for c in term.children)
            return rec.add_unique(ENode(term.op, children), memo)

        go(self.root)
        return rec
