"""Rule schedulers: which single-pattern rules run in which iteration.

The scheduling logic used to live inline in the runner's iteration loop.  It
is now a strategy object consulted at two points of the pipeline:

* **before search** -- :meth:`Scheduler.is_banned` decides whether a rule is
  searched at all this iteration (a banned rule's matches are never even
  computed on the per-rule paths; the trie path computes them as a byproduct
  and discards them);
* **after search, before planning** -- :meth:`Scheduler.admit_matches` sees
  the rule's match count and either admits the matches into the apply plan
  or bans the rule for upcoming iterations.

Scheduling decisions depend only on iteration numbers and match counts, and
every matcher produces identical match lists, so the schedule -- and with it
the saturation trajectory -- is matcher-independent.

Multi-pattern rules are *not* scheduled here: their budget is the runner's
``k_multi`` iteration window (see ``docs/multipattern.md``).  The pipeline
overview, including where both scheduling points sit, is
``docs/architecture.md``; the plan the admitted matches flow into is
``docs/apply_plan.md``.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["Scheduler", "SimpleScheduler", "BackoffScheduler", "make_scheduler", "SCHEDULERS"]


class Scheduler:
    """Interface: decide which rules search and which matches get applied.

    Implementations must be deterministic functions of the ``(rule_index,
    iteration, n_matches)`` stream they observe -- the runner relies on that
    to keep trajectories reproducible across search paths.  Subclasses
    override one or both hooks; the defaults admit everything (which is
    exactly :class:`SimpleScheduler`).
    """

    name = "base"

    def is_banned(self, rule_index: int, iteration: int) -> bool:
        """True when ``rule_index`` must not run in ``iteration``.

        Consulted *before* the search phase: per-rule search paths skip
        banned rules entirely; the trie computes their matches as a
        byproduct of the shared traversal and the runner discards them.
        """
        return False

    def admit_matches(self, rule_index: int, iteration: int, n_matches: int) -> bool:
        """Called once per searched rule per iteration with its match count.

        Returns True to admit the matches into the apply plan; False drops
        them (and typically records a ban for upcoming iterations).
        """
        return True


class SimpleScheduler(Scheduler):
    """The paper's behaviour: every rule fires every iteration."""

    name = "simple"


class BackoffScheduler(Scheduler):
    """egg-style exponential backoff for match-count explosions.

    A rule whose match count exceeds ``match_limit * 2**times_banned`` is
    banned for ``ban_length * 2**times_banned`` iterations; both the
    threshold and the ban double per offence.
    """

    name = "backoff"

    def __init__(self, match_limit: int = 1_000, ban_length: int = 5) -> None:
        self.match_limit = match_limit
        self.ban_length = ban_length
        self._banned_until: Dict[int, int] = {}
        self._times_banned: Dict[int, int] = {}

    def is_banned(self, rule_index: int, iteration: int) -> bool:
        return self._banned_until.get(rule_index, -1) > iteration

    def admit_matches(self, rule_index: int, iteration: int, n_matches: int) -> bool:
        times = self._times_banned.get(rule_index, 0)
        threshold = self.match_limit * (2 ** times)
        if n_matches > threshold:
            self._banned_until[rule_index] = iteration + self.ban_length * (2 ** times)
            self._times_banned[rule_index] = times + 1
            return False
        return True


#: Legacy snapshot of the built-in scheduler names; the live list (including
#: third-party registrations) is ``repro.core.registry.SCHEDULERS.names()``.
SCHEDULERS = ("simple", "backoff")


def make_scheduler(kind: str, match_limit: int = 1_000, ban_length: int = 5) -> Scheduler:
    """Factory mirroring :func:`~repro.egraph.runner.make_cycle_filter`.

    ``kind`` names an entry of the :data:`repro.core.registry.SCHEDULERS`
    registry (built-ins: ``"simple"`` and ``"backoff"``; the ``match_limit``
    / ``ban_length`` budgets only apply to backoff -- factories receive both
    and ignore what they do not use).  Raises :class:`ValueError` on an
    unregistered name, so configuration typos surface at runner
    construction, not mid-exploration.
    """
    from repro.core.registry import SCHEDULERS as registry

    return registry.create(kind, match_limit=match_limit, ban_length=ban_length)
