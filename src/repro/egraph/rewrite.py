"""Single-pattern rewrite rules.

A rewrite ``l -> r`` searches an e-graph for matches of the source pattern
``l`` and, for every match ``sigma``, adds ``r[sigma]`` to the e-graph and
unions it with the matched e-class (paper Section 2.2).  Rewrites may carry a
*condition*: a predicate over the e-graph and the match that must hold before
the rewrite is applied.  TENSAT uses conditions for shape checking (paper
Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match, search_pattern
from repro.egraph.pattern import Pattern

__all__ = ["Rewrite", "bidirectional"]

#: A rewrite's precondition.  Under the runner's default
#: ``condition_cache="memo"`` a condition must be a pure function of the
#: e-graph state of the e-classes its match *binds* (the substitution
#: values, e.g. their analysis data) -- not of ``match.eclass`` or global
#: e-graph state; see :mod:`repro.egraph.checkcache`.  Conditions that need
#: the old re-evaluate-every-search behaviour require
#: ``condition_cache="off"``.
Condition = Callable[[EGraph, Match], bool]


@dataclass
class Rewrite:
    """A named, optionally conditional, single-pattern rewrite rule."""

    name: str
    lhs: Pattern
    rhs: Pattern
    condition: Optional[Condition] = None

    def __post_init__(self) -> None:
        lhs_vars = set(self.lhs.variables())
        rhs_vars = set(self.rhs.variables())
        unbound = rhs_vars - lhs_vars
        if unbound:
            raise ValueError(
                f"rewrite {self.name!r}: right-hand side uses variables not bound "
                f"on the left-hand side: {sorted(unbound)}"
            )
        # Compile the source pattern once, at rule-construction time; the
        # program is cached on the pattern, so every search reuses it.
        self.program = self.lhs.compile()
        # Cached for the apply planner: leaves checked by cycle filtering and
        # the identity/variables that determine the RHS instantiation (dedup key).
        self.rhs_variables: Tuple[str, ...] = tuple(self.rhs.variables())
        self.rhs_key: str = str(self.rhs)
        # Cached for the condition-check cache: every match binds exactly the
        # LHS variables, so binding keys are built positionally in this order.
        self.lhs_variables: Tuple[str, ...] = tuple(self.lhs.variables())

    @classmethod
    def parse(
        cls,
        name: str,
        lhs: str,
        rhs: str,
        condition: Optional[Condition] = None,
    ) -> "Rewrite":
        """Build a rewrite from S-expression strings."""
        return cls(name=name, lhs=Pattern.parse(lhs), rhs=Pattern.parse(rhs), condition=condition)

    # ------------------------------------------------------------------ #
    # Search / apply
    # ------------------------------------------------------------------ #

    def search(self, egraph: EGraph) -> List[Match]:
        """Find all matches of the source pattern (compiled VM)."""
        return self.filter_matches(egraph, search_pattern(egraph, self.lhs))

    def filter_matches(self, egraph: EGraph, matches: List[Match], checker=None) -> List[Match]:
        """Apply this rule's condition to a raw match list.

        Without a ``checker``, conditions are re-evaluated on every search:
        e-class analysis data can change between iterations, so a condition
        that once failed may later pass for the same canonical match.  With a
        :class:`~repro.egraph.checkcache.ConditionChecker` the verdicts are
        memoized per canonical binding and invalidated when a bound class
        changes, which yields the same match lists without the re-evaluation.
        """
        if self.condition is None:
            return list(matches)
        if checker is None:
            return [m for m in matches if self.condition(egraph, m)]
        rule_key, condition, var_order = id(self), self.condition, self.lhs_variables
        return [m for m in matches if checker.check(rule_key, condition, egraph, m, var_order)]

    def apply_match(self, egraph: EGraph, match: Match) -> Tuple[int, bool]:
        """Apply this rewrite at ``match``.

        Returns ``(root_eclass, changed)`` where ``changed`` is True when the
        union actually merged two distinct e-classes (i.e. the rewrite added
        information to the e-graph).
        """
        before = egraph.num_unions
        added = self.rhs.instantiate(egraph, match.subst)
        root = egraph.union(match.eclass, added)
        grew = egraph.num_unions != before
        return root, grew

    def apply_deferred(self, egraph: EGraph, match: Match, ground_memo: Optional[dict] = None) -> int:
        """Batched-apply entry point: add the RHS now, queue the union.

        Used by :class:`~repro.egraph.applier.ApplyPlan`: all additions of an
        apply phase run against a frozen union-find and the equivalences are
        applied in one :meth:`EGraph.flush_deferred_unions` batch before the
        phase's single rebuild.  Returns the e-class of the added RHS.
        """
        added = self.rhs.instantiate(egraph, match.subst, ground_memo=ground_memo)
        egraph.union_deferred(match.eclass, added)
        return added

    def run(self, egraph: EGraph) -> int:
        """Search then apply everywhere; returns the number of applications that changed the e-graph."""
        changed = 0
        for match in self.search(egraph):
            _, grew = self.apply_match(egraph, match)
            if grew:
                changed += 1
        return changed

    def __str__(self) -> str:
        return f"{self.name}: {self.lhs} => {self.rhs}"


def bidirectional(
    name: str,
    lhs: str,
    rhs: str,
    condition: Optional[Condition] = None,
    reverse_condition: Optional[Condition] = None,
) -> List[Rewrite]:
    """Create both directions of an equivalence ``lhs <=> rhs``.

    The reverse direction is only created when every variable of ``lhs``
    appears in ``rhs`` (otherwise the reverse rule would be ill-formed).
    """
    rules = [Rewrite.parse(name, lhs, rhs, condition)]
    forward = rules[0]
    if set(forward.lhs.variables()) <= set(forward.rhs.variables()):
        rules.append(Rewrite.parse(name + "-rev", rhs, lhs, reverse_condition))
    return rules
