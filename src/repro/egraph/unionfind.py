"""Disjoint-set (union-find) forest used to track e-class equivalences."""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind"]


class UnionFind:
    """A union-find over dense integer ids with path compression.

    Ids are allocated with :meth:`make_set` and are contiguous starting at 0.
    Union-by-size keeps find operations near-constant amortised time, which
    matters because the e-graph canonicalises e-nodes very frequently during
    rebuilding.
    """

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a new singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        return new_id

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets containing ``a`` and ``b``; return the new root.

        The larger set's root wins so trees stay shallow.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def in_same_set(self, a: int, b: int) -> bool:
        """Return True if ``a`` and ``b`` are currently equivalent."""
        return self.find(a) == self.find(b)

    def roots(self) -> List[int]:
        """Return all canonical representatives."""
        return [i for i in range(len(self._parent)) if self.find(i) == i]
