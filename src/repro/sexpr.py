"""S-expression parsing and printing.

TENSAT represents rewrite-rule patterns and serialized tensor graphs as
S-expressions (see Section 3.2 of the paper).  This module provides a small,
dependency-free reader/printer shared by the pattern compiler
(:mod:`repro.egraph.pattern`) and the IR serializer (:mod:`repro.ir.convert`).

An S-expression is represented in Python as either:

* a ``str`` atom (operator name, variable like ``?x``, integer literal, or a
  quoted string), or
* a ``list`` whose first element is the operator atom and whose remaining
  elements are child S-expressions.
"""

from __future__ import annotations

from typing import List, Union

SExpr = Union[str, List["SExpr"]]

__all__ = ["SExpr", "parse", "parse_many", "to_string", "is_variable"]


class SExprError(ValueError):
    """Raised when an S-expression string cannot be parsed."""


def tokenize(text: str) -> List[str]:
    """Split ``text`` into parenthesis and atom tokens.

    Atoms may be double-quoted to allow embedded whitespace (used for shape
    strings such as ``"name@1 64 56 56"``).
    """
    tokens: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c in "()":
            tokens.append(c)
            i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise SExprError(f"unterminated string literal at offset {i}")
            tokens.append(text[i : j + 1])
            i = j + 1
        elif c == ";":
            # Comment until end of line.
            while i < n and text[i] != "\n":
                i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in '();"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse_tokens(tokens: List[str], pos: int) -> tuple:
    if pos >= len(tokens):
        raise SExprError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(":
        items: List[SExpr] = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _parse_tokens(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise SExprError("missing closing parenthesis")
        return items, pos + 1
    if tok == ")":
        raise SExprError("unexpected ')'")
    if tok.startswith('"') and tok.endswith('"') and len(tok) >= 2:
        return tok[1:-1], pos + 1
    return tok, pos + 1


def parse(text: str) -> SExpr:
    """Parse a single S-expression from ``text``.

    Raises :class:`SExprError` if the input is empty, malformed, or contains
    trailing tokens.
    """
    tokens = tokenize(text)
    if not tokens:
        raise SExprError("empty input")
    expr, pos = _parse_tokens(tokens, 0)
    if pos != len(tokens):
        raise SExprError(f"trailing tokens after expression: {tokens[pos:]}")
    return expr


def parse_many(text: str) -> List[SExpr]:
    """Parse zero or more whitespace-separated S-expressions."""
    tokens = tokenize(text)
    exprs: List[SExpr] = []
    pos = 0
    while pos < len(tokens):
        expr, pos = _parse_tokens(tokens, pos)
        exprs.append(expr)
    return exprs


def _atom_to_string(atom: str) -> str:
    if atom == "" or any(ch.isspace() for ch in atom) or any(ch in '()"' for ch in atom):
        return '"' + atom + '"'
    return atom


def to_string(expr: SExpr) -> str:
    """Render ``expr`` back into canonical S-expression text."""
    if isinstance(expr, str):
        return _atom_to_string(expr)
    return "(" + " ".join(to_string(e) for e in expr) + ")"


def is_variable(atom: SExpr) -> bool:
    """Return True if ``atom`` is a pattern variable (``?name``)."""
    return isinstance(atom, str) and atom.startswith("?") and len(atom) > 1
