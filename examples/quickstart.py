#!/usr/bin/env python
"""Quickstart: optimize a small tensor graph with TENSAT's session API.

Builds the motivating pattern of the paper's Figure 2 -- two matrix
multiplications that share an input -- and drives the optimizer phase by
phase through an :class:`~repro.core.session.OptimizationSession`: one
saturation iteration at a time (inspecting the growing e-graph between
steps), then extraction with the ILP, then materialization back to a
concrete graph that computes exactly the same values.

Run with::

    python examples/quickstart.py
"""

from repro import GraphBuilder, OptimizationSession, TensatConfig
from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel


def build_shared_matmul_graph():
    """Two matmuls reading the same activation (Figure 2 of the paper)."""
    b = GraphBuilder("quickstart")
    x = b.input("x", (64, 256))
    w_query = b.weight("w_query", (256, 256))
    w_key = b.weight("w_key", (256, 256))
    query = b.matmul(x, w_query)
    key = b.matmul(x, w_key)
    return b.finish(outputs=[query, key])


def main() -> None:
    graph = build_shared_matmul_graph()
    cost_model = AnalyticCostModel()

    print(f"original graph : {graph.describe()}")
    print(f"original cost  : {cost_model.graph_cost(graph):.5f} ms (cost model)")

    # TensatConfig.fast() keeps the e-graph small enough for an interactive demo;
    # TensatConfig() reproduces the paper's limits (50k e-nodes, 15 iterations).
    session = OptimizationSession(graph, cost_model=cost_model, config=TensatConfig.fast())

    # Exploration, one saturation iteration at a time.  session.explore()
    # runs the same loop in one call; either way the trajectory is identical.
    while (iteration := session.step()) is not None:
        print(f"  iteration {iteration.index}: {iteration.n_matches} matches, "
              f"{iteration.n_applied} applied -> {iteration.n_enodes} e-nodes")
    print(f"exploration    : {session.report.total_seconds:.2f}s "
          f"(stop: {session.report.stop_reason.value})")

    extraction = session.extract()
    print(f"extraction     : {extraction.status} (cost {extraction.cost:.5f} ms)")

    session.materialize()
    result = session.result()

    print(f"optimized graph: {result.optimized.describe()}")
    print(f"optimized cost : {result.optimized_cost:.5f} ms")
    print(f"speedup        : {result.speedup_percent:.1f}%")

    same = outputs_allclose(execute_graph(graph), execute_graph(result.optimized))
    print(f"numerically equivalent to the original: {same}")
    assert same


if __name__ == "__main__":
    main()
