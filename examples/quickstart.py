#!/usr/bin/env python
"""Quickstart: optimize a small tensor graph with TENSAT.

Builds the motivating pattern of the paper's Figure 2 -- two matrix
multiplications that share an input -- runs equality saturation over the
default rewrite-rule library, extracts the cheapest equivalent graph with the
ILP, and checks that the optimized graph computes exactly the same values.

Run with::

    python examples/quickstart.py
"""

from repro import GraphBuilder, TensatConfig, optimize
from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel


def build_shared_matmul_graph():
    """Two matmuls reading the same activation (Figure 2 of the paper)."""
    b = GraphBuilder("quickstart")
    x = b.input("x", (64, 256))
    w_query = b.weight("w_query", (256, 256))
    w_key = b.weight("w_key", (256, 256))
    query = b.matmul(x, w_query)
    key = b.matmul(x, w_key)
    return b.finish(outputs=[query, key])


def main() -> None:
    graph = build_shared_matmul_graph()
    cost_model = AnalyticCostModel()

    print(f"original graph : {graph.describe()}")
    print(f"original cost  : {cost_model.graph_cost(graph):.5f} ms (cost model)")

    # TensatConfig.fast() keeps the e-graph small enough for an interactive demo;
    # TensatConfig() reproduces the paper's limits (50k e-nodes, 15 iterations).
    result = optimize(graph, cost_model=cost_model, config=TensatConfig.fast())

    print(f"optimized graph: {result.optimized.describe()}")
    print(f"optimized cost : {result.optimized_cost:.5f} ms")
    print(f"speedup        : {result.speedup_percent:.1f}%")
    print(f"exploration    : {result.stats.exploration_seconds:.2f}s "
          f"({result.stats.num_enodes} e-nodes, stop: {result.stats.stop_reason})")
    print(f"extraction     : {result.stats.extraction_seconds:.2f}s ({result.stats.extraction_status})")

    same = outputs_allclose(execute_graph(graph), execute_graph(result.optimized))
    print(f"numerically equivalent to the original: {same}")
    assert same


if __name__ == "__main__":
    main()
