#!/usr/bin/env python
"""Optimize a NasRNN cell and compare TENSAT against the TASO-style baseline.

NasRNN is the model where the paper reports its largest gain (68.9% over the
unoptimized graph, versus 45.4% for TASO's backtracking search) because the
cell contains many small matmuls that share inputs.  This example runs both
optimizers on a scaled-down NasRNN and prints a small comparison table,
mirroring the structure of the paper's Table 1.

Run with::

    python examples/optimize_nasrnn.py [scale]

where ``scale`` is ``tiny`` (default), ``small``, or ``full``.
"""

import sys
import time

from repro import TensatConfig, TensatOptimizer
from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel
from repro.models import build_model
from repro.search import BacktrackingSearch


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    cost_model = AnalyticCostModel()
    graph = build_model("nasrnn", scale=scale)
    original_cost = cost_model.graph_cost(graph)
    print(f"NasRNN ({scale}): {graph.describe()}")
    print(f"original cost: {original_cost:.5f} ms\n")

    # --- TENSAT ---------------------------------------------------------- #
    config = TensatConfig(node_limit=5_000, iter_limit=8, k_multi=1, ilp_time_limit=60.0)
    t0 = time.perf_counter()
    tensat = TensatOptimizer(cost_model, config=config).optimize(graph)
    tensat_time = time.perf_counter() - t0

    # --- TASO-style backtracking ----------------------------------------- #
    t0 = time.perf_counter()
    taso = BacktrackingSearch(cost_model, budget=30, time_limit=120.0).optimize(graph)
    taso_time = time.perf_counter() - t0

    print(f"{'optimizer':<22}{'speedup %':>12}{'opt. time (s)':>16}")
    print(f"{'TASO backtracking':<22}{taso.speedup_percent:>12.1f}{taso_time:>16.2f}")
    print(f"{'TENSAT (this work)':<22}{tensat.speedup_percent:>12.1f}{tensat_time:>16.2f}")

    for name, optimized in (("TENSAT", tensat.optimized), ("TASO", taso.optimized)):
        ok = outputs_allclose(execute_graph(graph), execute_graph(optimized))
        print(f"{name} optimized graph numerically equivalent: {ok}")
        assert ok


if __name__ == "__main__":
    main()
