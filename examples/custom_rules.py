#!/usr/bin/env python
"""Extending TENSAT with a custom rewrite rule.

The rule library is not closed: users can define additional single- or
multi-pattern rules as S-expression patterns, verify them numerically against
the numpy backend, and hand them to the optimizer.  This example adds a
(deliberately simple) rule that commutes an element-wise multiplication into a
fused matmul activation chain, verifies it, and shows it firing.

Run with::

    python examples/custom_rules.py
"""

from repro import GraphBuilder, TensatConfig, TensatOptimizer
from repro.costs import AnalyticCostModel
from repro.egraph.pattern import Pattern
from repro.egraph.rewrite import Rewrite
from repro.rules import default_ruleset
from repro.rules.conditions import targets_shape_valid
from repro.rules.defs import RuleDef
from repro.rules.library import RuleSet
from repro.rules.verify import verify_rule


def make_custom_rule() -> RuleDef:
    """(tanh (ewadd ?a ?b)) is matched and rewritten to (ewadd ?b ?a) under tanh.

    A toy rule -- its only purpose is to demonstrate the workflow:
    pattern -> condition -> example bindings -> numerical verification.
    """
    lhs = "(tanh (ewadd ?a ?b))"
    rhs = "(tanh (ewadd ?b ?a))"
    rule = Rewrite.parse("custom-tanh-add-comm", lhs, rhs, targets_shape_valid([Pattern.parse(rhs)]))
    return RuleDef(
        rule,
        tags=("custom",),
        example={"a": ("input", (4, 8)), "b": ("input", (4, 8))},
    )


def main() -> None:
    custom = make_custom_rule()

    # 1. Verify the rule numerically before trusting it.
    verdict = verify_rule(custom)
    print(f"rule {custom.name!r} verified: {verdict.ok} (max error {verdict.max_error:.2e})")
    assert verdict.ok

    # 2. Add it to the default library.
    rules = RuleSet(list(default_ruleset().defs) + [custom])
    print(f"rule set: {rules.summary()}")

    # 3. Optimize a graph where the default rules plus the custom rule apply.
    b = GraphBuilder("custom-demo")
    x = b.input("x", (32, 64))
    h = b.input("h", (32, 64))
    w1 = b.weight("w1", (64, 64))
    w2 = b.weight("w2", (64, 64))
    gate = b.tanh(b.ewadd(b.matmul(x, w1), b.matmul(h, w2)))
    graph = b.finish(outputs=[gate])

    cost_model = AnalyticCostModel()
    result = TensatOptimizer(cost_model, rules=rules, config=TensatConfig.fast()).optimize(graph)
    print(f"cost {result.original_cost:.5f} -> {result.optimized_cost:.5f} ms "
          f"({result.speedup_percent:+.1f}%)")
    print(f"optimized operators: {result.optimized.op_histogram()}")


if __name__ == "__main__":
    main()
