#!/usr/bin/env python
"""Peek inside the e-graph: saturation, represented terms, and cycle filtering.

This example works at the substrate level rather than through the end-to-end
optimizer: it seeds an e-graph with the paper's Figure 3 term
``matmul(X, matmul(X, Y))``, applies the multi-pattern merge rule, shows that
a cycle appears at the e-class level, and demonstrates how the efficient
cycle-filtering pass (Algorithm 2) resolves it so that ILP extraction without
cycle constraints stays sound.

Run with::

    python examples/inspect_egraph.py
"""

from repro.costs import AnalyticCostModel
from repro.egraph.cycles import EfficientCycleFilter, find_cycles
from repro.egraph.runner import Runner, RunnerLimits
from repro.ir.convert import egraph_from_graph, recexpr_to_graph
from repro.ir.graph import GraphBuilder
from repro.egraph.extraction.ilp import ILPExtractor
from repro.rules import default_ruleset


def figure3_graph():
    b = GraphBuilder("figure3")
    x = b.input("x", (32, 32))
    y = b.weight("y", (32, 32))
    inner = b.matmul(x, y)
    outer = b.matmul(x, inner)
    return b.finish(outputs=[outer])


def main() -> None:
    graph = figure3_graph()
    egraph, root = egraph_from_graph(graph)
    print(f"initial e-graph: {egraph.summary()}")

    rules = default_ruleset()
    cycle_filter = EfficientCycleFilter()
    runner = Runner(
        egraph,
        rewrites=rules.rewrites,
        multi_rewrites=rules.multi_rewrites,
        limits=RunnerLimits(node_limit=2_000, iter_limit=4, k_multi=1),
        cycle_filter=cycle_filter,
    )
    report = runner.run()
    print(f"after exploration: {egraph.summary()} (stop: {report.stop_reason.value})")
    print(f"cycles resolved by filtering: {sum(it.n_cycles_resolved for it in report.iterations)}")
    print(f"filter list size: {len(cycle_filter.filter_list)}")
    print(f"remaining cycles (ignoring filtered nodes): {len(find_cycles(egraph, cycle_filter.filter_list))}")

    cost_model = AnalyticCostModel()
    result = ILPExtractor(
        cost_model.extraction_cost_function(),
        filter_list=cycle_filter.filter_list,
        with_cycle_constraints=False,
        time_limit=30,
    ).extract(egraph, root)
    optimized = recexpr_to_graph(result.expr)
    print(f"extracted graph cost: {cost_model.graph_cost(optimized):.5f} ms "
          f"(original {cost_model.graph_cost(graph):.5f} ms)")
    print("extracted term:")
    print(" ", result.expr)


if __name__ == "__main__":
    main()
