#!/usr/bin/env python
"""Greedy versus ILP extraction (the paper's Section 6.5 ablation).

The concat/split merge rewrites only pay off when *both* outputs of a merged
operator select their ``split`` projection; greedy extraction decides each
e-class independently and therefore never picks them.  This example runs both
extractors on the same explored e-graph for a BERT-like attention block and
prints the resulting graph costs, reproducing the shape of Table 4.

Run with::

    python examples/compare_extraction.py
"""

from repro import GraphBuilder, OptimizationSession, TensatConfig
from repro.costs import AnalyticCostModel
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.ir.convert import recexpr_to_graph


def attention_block():
    """Q/K/V projections sharing one input -- the classic merge opportunity."""
    b = GraphBuilder("attention")
    x = b.input("tokens", (64, 128))
    wq = b.weight("wq", (128, 128))
    wk = b.weight("wk", (128, 128))
    wv = b.weight("wv", (128, 128))
    q, k, v = b.matmul(x, wq), b.matmul(x, wk), b.matmul(x, wv)
    scores = b.matmul(q, b.transpose(k, (1, 0)))
    context = b.matmul(b.sigmoid(scores), v)
    return b.finish(outputs=[context])


def main() -> None:
    cost_model = AnalyticCostModel()
    graph = attention_block()
    original_cost = cost_model.graph_cost(graph)

    session = OptimizationSession(graph, cost_model=cost_model, config=TensatConfig.fast())
    report = session.explore()
    egraph, root, cycle_filter = session.egraph, session.root, session.cycle_filter
    print(f"explored e-graph: {egraph.num_enodes} e-nodes, {egraph.num_eclasses} e-classes "
          f"(stop: {report.stop_reason.value})")

    node_cost = cost_model.extraction_cost_function()
    greedy = GreedyExtractor(node_cost, filter_list=cycle_filter.filter_list).extract(egraph, root)
    ilp = ILPExtractor(node_cost, filter_list=cycle_filter.filter_list, time_limit=60).extract(egraph, root)

    greedy_cost = cost_model.graph_cost(recexpr_to_graph(greedy.expr))
    ilp_cost = cost_model.graph_cost(recexpr_to_graph(ilp.expr))

    print(f"{'graph':<22}{'cost (ms)':>12}")
    print(f"{'original':<22}{original_cost:>12.5f}")
    print(f"{'greedy extraction':<22}{greedy_cost:>12.5f}")
    print(f"{'ILP extraction':<22}{ilp_cost:>12.5f}")
    print()
    print("ILP <= greedy <= original is the expected ordering; greedy often fails to")
    print("realise the merge because the shared merged matmul is double-counted.")


if __name__ == "__main__":
    main()
