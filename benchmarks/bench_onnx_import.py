"""Benchmark for the ONNX import front door.

Imports the two tiny checked-in ONNX models (``tests/data/onnx/``), runs
each through the full TENSAT pipeline (import -> saturation -> extraction),
and round-trips one of them through the optimization service daemon so
imported models exercise the exact path external users take:

* per-model import time, node counts, original/optimized cost, speedup;
* service submission: a cache miss (first submission) and a canonical-
  fingerprint cache hit (identical resubmission under renamed node ids is
  covered by the service test suite; here we resubmit verbatim).

The regenerated table puts imported models side by side with the registry
benchmarks' reporting format, so ``benchmarks/results/onnx_import.json``
is the machine-readable record that imported models optimize end to end.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict

from benchmarks.common import cost_model, format_table, write_result
from repro.core import TensatConfig, optimize
from repro.models import load_onnx_model
from repro.service import ServiceClient, ServiceConfig
from repro.service.server import ServerThread

ONNX_DIR = Path(__file__).parent.parent / "tests" / "data" / "onnx"

MODELS = ["mlp_tiny", "convnet_tiny"]

CONFIG = TensatConfig(node_limit=2_000, iter_limit=5, k_multi=1, extraction="greedy")


def bench_model(name: str) -> Dict[str, object]:
    path = ONNX_DIR / f"{name}.onnx"
    start = time.perf_counter()
    graph = load_onnx_model(path)
    import_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = optimize(graph, cost_model=cost_model(), config=CONFIG)
    optimize_seconds = time.perf_counter() - start

    return {
        "model": name,
        "source": f"tests/data/onnx/{name}.onnx",
        "compute_nodes": sum(1 for n in graph.nodes if n.op.is_compute),
        "import_seconds": import_seconds,
        "original_cost_ms": result.stats.original_cost,
        "optimized_cost_ms": result.stats.optimized_cost,
        "speedup_percent": result.speedup_percent,
        "optimize_seconds": optimize_seconds,
        "stop_reason": result.stats.stop_reason,
    }


def bench_service(name: str) -> Dict[str, object]:
    """Submit an imported model to a resident daemon: one miss, one hit."""
    graph = load_onnx_model(ONNX_DIR / f"{name}.onnx")
    with ServerThread(service_config=ServiceConfig(port=0)) as server:
        client = ServiceClient(port=server.port)
        miss = client.optimize(graph=graph)
        hit = client.optimize(graph=graph)
        client.shutdown()
    assert miss["cache"] == "miss" and hit["cache"] == "hit"
    return {
        "model": name,
        "miss_cache": miss["cache"],
        "miss_optimize_seconds": miss["optimize_seconds"],
        "hit_cache": hit["cache"],
        "optimized_cost_ms": miss["optimized_cost_ms"],
    }


def main() -> None:
    runs = [bench_model(name) for name in MODELS]
    service = bench_service(MODELS[-1])

    rows = [
        (
            run["model"],
            run["compute_nodes"],
            f"{run['import_seconds'] * 1000.0:.1f}",
            f"{run['original_cost_ms']:.4f}",
            f"{run['optimized_cost_ms']:.4f}",
            f"{run['speedup_percent']:+.1f}%",
            run["stop_reason"],
        )
        for run in runs
    ]
    table = format_table(
        ["model", "nodes", "import ms", "orig ms", "opt ms", "speedup", "stop"], rows
    )
    text = (
        "ONNX import benchmark (import -> optimize -> extract)\n\n"
        + table
        + "\n\nservice round-trip ("
        + f"{service['model']}): first submit {service['miss_cache']} "
        + f"in {service['miss_optimize_seconds']:.3f}s, resubmit {service['hit_cache']}"
    )
    write_result("onnx_import", text, data={"models": runs, "service": service})


if __name__ == "__main__":
    main()
