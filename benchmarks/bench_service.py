"""Load benchmark for the optimization service daemon.

Measures end-to-end request latency (client socket to response line) for the
same workload at the service's three temperature tiers:

* ``cold``       -- a fresh daemon per request: pays rule-trie compilation
                    and the full optimization on every submission (what a
                    one-shot ``python -m repro optimize`` costs).
* ``warm-trie``  -- one resident daemon, result cache cleared between
                    requests: pays the optimization but reuses the compiled
                    rule trie and warm process (what a cache *miss* costs a
                    long-lived service).
* ``cache-hit``  -- one resident daemon, identical resubmissions: the
                    canonical-fingerprint cache answers from memory.

The regenerated table reports requests/sec and p50/p99 latency per tier;
the JSON payload also carries the warm daemon's final status counters
(cache hits/misses/evictions, queue wait) for the results archive.
"""

from __future__ import annotations

import time
from typing import Dict, List

from benchmarks.common import bench_scale, format_table, write_result
from repro.models import build_model
from repro.service import ServiceClient, ServiceConfig
from repro.service.server import ServerThread

#: Requests per tier, scaled with the workload.
TIER_REQUESTS = {"tiny": 6, "small": 12, "full": 24}

MODEL = "nasrnn"


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (no numpy needed for a handful of samples)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def summarize(tier: str, latencies: List[float]) -> Dict[str, float]:
    total = sum(latencies)
    return {
        "tier": tier,
        "requests": len(latencies),
        "requests_per_sec": len(latencies) / total if total else float("inf"),
        "p50_ms": percentile(latencies, 50) * 1000.0,
        "p99_ms": percentile(latencies, 99) * 1000.0,
        "total_seconds": total,
    }


def bench_cold(graph, n: int) -> Dict[str, float]:
    latencies = []
    for _ in range(n):
        with ServerThread(service_config=ServiceConfig(port=0)) as server:
            client = ServiceClient(port=server.port)
            start = time.perf_counter()
            response = client.optimize(graph=graph)
            latencies.append(time.perf_counter() - start)
            assert response["cache"] == "miss"
            client.shutdown()
    return summarize("cold", latencies)


def bench_warm(graph, n: int):
    """Warm-trie misses and cache hits on one resident daemon."""
    with ServerThread(service_config=ServiceConfig(port=0)) as server:
        client = ServiceClient(port=server.port)
        client.optimize(graph=graph)  # compile the trie outside the timings

        miss_latencies = []
        for _ in range(n):
            server.service.cache.clear()  # force a miss on the warm daemon
            start = time.perf_counter()
            response = client.optimize(graph=graph)
            miss_latencies.append(time.perf_counter() - start)
            assert response["cache"] == "miss"

        hit_latencies = []
        for _ in range(n):
            start = time.perf_counter()
            response = client.optimize(graph=graph)
            hit_latencies.append(time.perf_counter() - start)
            assert response["cache"] == "hit"

        status = client.status()
        client.shutdown()
    return summarize("warm-trie", miss_latencies), summarize("cache-hit", hit_latencies), status


def main() -> None:
    scale = bench_scale()
    n = TIER_REQUESTS.get(scale, 6)
    graph = build_model(MODEL, scale if scale in ("tiny", "small") else "small")

    cold = bench_cold(graph, n)
    warm, hit, status = bench_warm(graph, n)

    rows = [
        (
            tier["tier"],
            tier["requests"],
            f"{tier['requests_per_sec']:.1f}",
            f"{tier['p50_ms']:.2f}",
            f"{tier['p99_ms']:.2f}",
        )
        for tier in (cold, warm, hit)
    ]
    table = format_table(["tier", "requests", "req/s", "p50 ms", "p99 ms"], rows)
    text = (
        f"Service load benchmark ({MODEL}, scale={scale}, {n} requests/tier)\n\n"
        + table
        + "\n\nwarm daemon final status: "
        + f"cache hits={status['cache']['hits']} misses={status['cache']['misses']} "
        + f"evictions={status['cache']['evictions']}, "
        + f"queue wait mean={status['queue']['queue_seconds_mean']:.4f}s "
        + f"(total {status['queue']['queue_seconds_total']:.4f}s)"
    )
    write_result(
        "service_load",
        text,
        data={
            "model": MODEL,
            "scale": scale,
            "tiers": [cold, warm, hit],
            "warm_status": status,
        },
    )


if __name__ == "__main__":
    main()
