"""Figure 5: optimization time (log scale) -- TASO total, TASO best, TENSAT.

"TASO total" is the full backtracking-search time with the default budget,
"TASO best" is when the search first reached the graph it eventually returns
(the oracle stopping time), and TENSAT is exploration + extraction.  The paper
annotates each model with the TASO-total / TENSAT speed ratio; the regenerated
table does the same.
"""

import pytest

from benchmarks.common import PAPER_MODELS, format_table, run_model, write_result


def _generate_fig5():
    rows = []
    data = {}
    for model in PAPER_MODELS:
        run = run_model(model)
        ratio = run.taso.total_seconds / max(run.tensat_seconds, 1e-9)
        rows.append(
            [
                model,
                f"{run.taso.total_seconds:.2f}",
                f"{run.taso.best_seconds:.2f}",
                f"{run.tensat_seconds:.2f}",
                f"{ratio:.1f}x",
            ]
        )
        data[model] = {
            "taso_total_seconds": run.taso.total_seconds,
            "taso_best_seconds": run.taso.best_seconds,
            "tensat_seconds": run.tensat_seconds,
            "speed_ratio_taso_total_over_tensat": ratio,
        }
    table = format_table(
        ["model", "TASO total (s)", "TASO best (s)", "TENSAT (s)", "TASO total / TENSAT"],
        rows,
    )
    write_result("fig5_opt_time", table, data)
    return data


@pytest.mark.benchmark(group="fig5")
def test_fig5_optimization_time(benchmark):
    data = benchmark.pedantic(_generate_fig5, rounds=1, iterations=1)
    for model in data:
        # "TASO best" can never exceed "TASO total".
        assert data[model]["taso_best_seconds"] <= data[model]["taso_total_seconds"] + 1e-9
    # On the models with many shared-input operators the sequential search pays
    # a large time penalty relative to equality saturation (paper: 9.5x-379x).
    assert data["nasrnn"]["speed_ratio_taso_total_over_tensat"] > 1.0
