"""Table 6: vanilla versus efficient cycle filtering (exploration-phase time).

Vanilla filtering runs a full reachability pass per candidate substitution;
the efficient algorithm (paper Algorithm 2) builds one descendants map per
iteration and post-processes the few cycles that slip through.  The paper
reports up to 2000x exploration speedups; the regenerated table shows the same
ordering on the scaled-down workloads.
"""

import pytest

from benchmarks.common import bench_scale, cost_model, format_table, tensat_config, write_result
from repro.core import OptimizationSession
from repro.models import build_model

TABLE6_MODELS = ["bert", "nasrnn", "nasnet"]
K_VALUES = (1, 2)


def _explore_seconds(model, k_multi, cycle_filter):
    cm = cost_model()
    graph = build_model(model, bench_scale())
    config = tensat_config(model, k_multi=k_multi, cycle_filter=cycle_filter)
    session = OptimizationSession(graph, cost_model=cm, config=config)
    report = session.explore()
    return report.total_seconds, report.n_enodes


def _generate_table6():
    rows = []
    data = {}
    for model in TABLE6_MODELS:
        data[model] = {}
        for k in K_VALUES:
            vanilla_s, vanilla_nodes = _explore_seconds(model, k, "vanilla")
            efficient_s, efficient_nodes = _explore_seconds(model, k, "efficient")
            rows.append(
                [
                    model,
                    k,
                    f"{vanilla_s:.2f}",
                    f"{efficient_s:.2f}",
                    f"{vanilla_s / max(efficient_s, 1e-9):.1f}x",
                ]
            )
            data[model][k] = {
                "vanilla_seconds": vanilla_s,
                "efficient_seconds": efficient_s,
                "vanilla_enodes": vanilla_nodes,
                "efficient_enodes": efficient_nodes,
            }
    table = format_table(
        ["model", "k_multi", "vanilla (s)", "efficient (s)", "vanilla / efficient"], rows
    )
    write_result("table6_cycle_filtering", table, data)
    return data


@pytest.mark.benchmark(group="table6")
def test_table6_cycle_filtering(benchmark):
    data = benchmark.pedantic(_generate_table6, rounds=1, iterations=1)
    # Shape: the efficient algorithm is never slower in aggregate, and wins
    # clearly on the larger k_multi = 2 e-graphs.
    total_vanilla = sum(entry["vanilla_seconds"] for per_k in data.values() for entry in per_k.values())
    total_efficient = sum(entry["efficient_seconds"] for per_k in data.values() for entry in per_k.values())
    assert total_efficient <= total_vanilla * 1.05
    k2_vanilla = sum(data[m][2]["vanilla_seconds"] for m in data)
    k2_efficient = sum(data[m][2]["efficient_seconds"] for m in data)
    assert k2_efficient <= k2_vanilla
