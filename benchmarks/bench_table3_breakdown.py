"""Table 3: TENSAT optimization-time breakdown (exploration vs extraction)."""

import pytest

from benchmarks.common import PAPER_MODELS, format_table, run_model, write_result


def _generate_table3():
    rows = []
    data = {}
    for model in PAPER_MODELS:
        run = run_model(model)
        stats = run.tensat.stats
        rows.append(
            [
                model,
                f"{stats.exploration_seconds:.2f}",
                f"{stats.extraction_seconds:.2f}",
                f"{stats.num_enodes}",
                stats.stop_reason,
            ]
        )
        data[model] = {
            "exploration_seconds": stats.exploration_seconds,
            "extraction_seconds": stats.extraction_seconds,
            "num_enodes": stats.num_enodes,
            "stop_reason": stats.stop_reason,
        }
    table = format_table(
        ["model", "exploration (s)", "extraction (s)", "e-nodes", "stop reason"], rows
    )
    write_result("table3_breakdown", table, data)
    return data


@pytest.mark.benchmark(group="table3")
def test_table3_time_breakdown(benchmark):
    data = benchmark.pedantic(_generate_table3, rounds=1, iterations=1)
    for model, entry in data.items():
        assert entry["exploration_seconds"] > 0
        assert entry["extraction_seconds"] > 0
        assert entry["num_enodes"] > 0
