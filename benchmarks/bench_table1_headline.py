"""Table 1: optimization time and runtime speedup, TASO vs TENSAT, on all seven models.

Regenerates the paper's headline comparison.  For every benchmark model the
harness runs the TASO-style backtracking baseline and TENSAT over the same
rules and cost model, then reports search time and the cost-model speedup of
the optimized graph over the original.  Paper numbers are printed alongside
for qualitative comparison (absolute values are not expected to match -- see
EXPERIMENTS.md).
"""

import pytest

from benchmarks.common import (
    PAPER_MODELS,
    PAPER_TABLE1,
    bench_scale,
    format_table,
    run_model,
    write_result,
)


def _generate_table1():
    rows = []
    data = {}
    for model in PAPER_MODELS:
        run = run_model(model)
        paper = PAPER_TABLE1[model]
        rows.append(
            [
                model,
                f"{run.taso.total_seconds:.2f}",
                f"{run.tensat_seconds:.2f}",
                f"{run.taso_speedup:.1f}",
                f"{run.tensat_speedup:.1f}",
                f"{paper[2]:.1f}",
                f"{paper[3]:.1f}",
            ]
        )
        data[model] = {
            "taso_seconds": run.taso.total_seconds,
            "tensat_seconds": run.tensat_seconds,
            "taso_speedup_percent": run.taso_speedup,
            "tensat_speedup_percent": run.tensat_speedup,
            "original_cost_ms": run.original_cost,
            "scale": run.scale,
        }
    table = format_table(
        [
            "model",
            "TASO time (s)",
            "TENSAT time (s)",
            "TASO speedup %",
            "TENSAT speedup %",
            "paper TASO %",
            "paper TENSAT %",
        ],
        rows,
    )
    write_result("table1_headline", table, data)
    return data


@pytest.mark.benchmark(group="table1")
def test_table1_headline(benchmark):
    data = benchmark.pedantic(_generate_table1, rounds=1, iterations=1)
    # Qualitative shape of Table 1: TENSAT finds graphs at least as good as the
    # sequential baseline on every model it improves, and NasRNN shows the
    # largest gain among all models (as in the paper).
    assert data["nasrnn"]["tensat_speedup_percent"] >= data["nasrnn"]["taso_speedup_percent"]
    best = max(data, key=lambda m: data[m]["tensat_speedup_percent"])
    assert best == "nasrnn"
    for model in data:
        assert data[model]["tensat_speedup_percent"] >= -1e-6
