"""Figure 6: speedup versus optimization time trade-off on Inception-v3.

The paper plots, for a 60-second budget, how the best-known speedup of TASO's
backtracking search evolves over time, against TENSAT's (time, speedup)
points.  The backtracking search already records its incumbent trajectory;
TENSAT contributes one point per ``k_multi`` setting.
"""

import pytest

from benchmarks.common import bench_scale, cost_model, format_table, run_model, taso_budget, write_result
from repro.models import build_model
from repro.search import BacktrackingSearch

TIMEOUT_SECONDS = 60.0


def _generate_fig6():
    cm = cost_model()
    graph = build_model("inception", bench_scale())
    original = cm.graph_cost(graph)

    taso = BacktrackingSearch(cm, budget=10 * taso_budget(), time_limit=TIMEOUT_SECONDS).optimize(graph)
    taso_curve = [
        (round(t, 3), round((original / c - 1.0) * 100.0, 2)) for t, c in taso.trajectory
    ]

    tensat_points = []
    for k_multi in (1, 2):
        run = run_model("inception", k_multi=k_multi)
        tensat_points.append(
            {"k_multi": k_multi, "seconds": run.tensat_seconds, "speedup_percent": run.tensat_speedup}
        )

    rows = [["TASO", f"{t:.2f}", f"{s:.1f}"] for t, s in taso_curve]
    rows += [
        ["TENSAT (k=%d)" % p["k_multi"], f"{p['seconds']:.2f}", f"{p['speedup_percent']:.1f}"]
        for p in tensat_points
    ]
    table = format_table(["optimizer", "time (s)", "best speedup %"], rows)
    data = {"taso_trajectory": taso_curve, "tensat_points": tensat_points, "timeout": TIMEOUT_SECONDS}
    write_result("fig6_tradeoff", table, data)
    return data


@pytest.mark.benchmark(group="fig6")
def test_fig6_tradeoff_curve(benchmark):
    data = benchmark.pedantic(_generate_fig6, rounds=1, iterations=1)
    speedups = [s for _, s in data["taso_trajectory"]]
    # The incumbent speedup of the sequential search is non-decreasing over time.
    assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
    # TENSAT reaches at least the baseline's final speedup (better trade-off curve).
    final_taso = speedups[-1]
    best_tensat = max(p["speedup_percent"] for p in data["tensat_points"])
    assert best_tensat >= final_taso - 1e-6
