"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  Because
the reproduction runs a pure-Python e-graph and an open-source MIP solver
instead of the paper's Rust + SCIP + GPU stack, the default workload scale is
``tiny`` so the full suite completes in minutes; set ``REPRO_BENCH_SCALE=small``
(or ``full``) for larger runs.  Absolute numbers differ from the paper; the
*shapes* (who wins, by roughly what factor, where the crossovers are) are what
the harness reproduces -- see EXPERIMENTS.md.

Each module writes a plain-text table to ``benchmarks/results/`` so the
regenerated rows survive pytest's output capture.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core import OptimizationSession, TensatConfig, compare
from repro.core.events import PhaseTimingObserver
from repro.core.optimizer import OptimizationResult
from repro.costs import AnalyticCostModel
from repro.ir.graph import TensorGraph
from repro.models import build_model
from repro.search.backtracking import BacktrackingResult

RESULTS_DIR = Path(__file__).parent / "results"

#: The seven models of the paper's evaluation (plus the order they appear in Table 1).
PAPER_MODELS = ["nasrnn", "bert", "resnext", "nasnet", "squeezenet", "vgg", "inception"]

#: Paper-reported numbers, used by EXPERIMENTS.md and printed next to measured
#: values so the qualitative comparison is visible in the regenerated tables.
PAPER_TABLE1 = {
    # model: (taso_search_s, tensat_search_s, taso_speedup_%, tensat_speedup_%)
    "nasrnn": (177.3, 0.5, 45.4, 68.9),
    "bert": (13.6, 1.4, 8.5, 9.2),
    "resnext": (25.3, 0.7, 5.5, 8.8),
    "nasnet": (1226.0, 10.6, 1.9, 7.3),
    "squeezenet": (16.4, 0.3, 6.7, 24.5),
    "vgg": (8.9, 0.4, 8.9, 8.9),
    "inception": (68.6, 5.1, 6.3, 10.0),
}


def bench_scale() -> str:
    """Workload scale for the benchmark suite (env-overridable)."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def taso_budget() -> int:
    """Backtracking-search budget (queue pops), scaled with the workload."""
    return {"tiny": 30, "small": 60, "full": 100}[bench_scale()]


def cost_model() -> AnalyticCostModel:
    return AnalyticCostModel()


def tensat_config(model: str, **overrides) -> TensatConfig:
    """Per-model TENSAT configuration used by the benchmarks.

    Mirrors the paper's setup (k_multi = 1 by default, efficient cycle
    filtering, ILP without cycle constraints) with limits sized for the
    pure-Python substrate; BERT gets a longer ILP budget because HiGHS needs
    it to reach the strong incumbent (see EXPERIMENTS.md).
    """
    base = dict(
        node_limit=4_000,
        iter_limit=8,
        k_multi=1,
        ilp_time_limit=30.0,
        ilp_mip_gap=0.01,
        exploration_time_limit=300.0,
    )
    if model == "bert":
        base["ilp_time_limit"] = 60.0
    if model == "nasnet":
        base["ilp_time_limit"] = 45.0
    base.update(overrides)
    return TensatConfig(**base)


@dataclass
class ModelRun:
    """One model optimized by both TENSAT and the TASO-style baseline."""

    model: str
    scale: str
    original_cost: float
    tensat: OptimizationResult
    tensat_seconds: float
    taso: BacktrackingResult
    #: Per-phase timing observer attached to the TENSAT run: phase_seconds
    #: plus the search/apply/rebuild breakdown, without touching the result.
    timing: Optional[PhaseTimingObserver] = None

    @property
    def tensat_speedup(self) -> float:
        return self.tensat.speedup_percent

    @property
    def taso_speedup(self) -> float:
        return self.taso.speedup_percent


#: Cache of completed runs so benchmarks that share workloads (Table 1, Figures
#: 4 and 5, Table 3) do not repeat the same optimizations.
_RUN_CACHE: Dict[tuple, "ModelRun"] = {}


def run_model(
    model: str,
    scale: Optional[str] = None,
    k_multi: int = 1,
    run_taso: bool = True,
    **config_overrides,
) -> ModelRun:
    """Optimize one benchmark model with TENSAT and (optionally) the baseline."""
    scale = scale or bench_scale()
    cache_key = (model, scale, k_multi, run_taso, tuple(sorted(config_overrides.items())))
    cached = _RUN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    cm = cost_model()
    graph = build_model(model, scale)
    config = tensat_config(model, k_multi=k_multi, **config_overrides)
    timing = PhaseTimingObserver()

    if run_taso:
        # The shared compare() front door is the same implementation the
        # CLI's `compare` subcommand uses.
        comparison = compare(
            graph,
            cost_model=cm,
            config=config,
            observers=[timing],
            taso_budget=taso_budget(),
            taso_time_limit=600.0,
            taso_alpha=1.0,
        )
        tensat_result = comparison.tensat
        tensat_seconds = comparison.tensat_seconds
        taso_result = comparison.taso
    else:
        # Session construction seeds the e-graph, so it belongs inside the
        # timer (as it does in compare() and in the pre-session harness).
        start = time.perf_counter()
        session = OptimizationSession(graph, cost_model=cm, config=config, observers=[timing])
        tensat_result = session.result()
        tensat_seconds = time.perf_counter() - start
        taso_result = BacktrackingResult(
            original=graph,
            optimized=graph,
            original_cost=cm.graph_cost(graph),
            optimized_cost=cm.graph_cost(graph),
            total_seconds=0.0,
            best_seconds=0.0,
            iterations=0,
            graphs_evaluated=0,
        )

    run = ModelRun(
        model=model,
        scale=scale,
        original_cost=cm.graph_cost(graph),
        tensat=tensat_result,
        tensat_seconds=tensat_seconds,
        taso=taso_result,
        timing=timing,
    )
    _RUN_CACHE[cache_key] = run
    return run


# --------------------------------------------------------------------- #
# Result table output
# --------------------------------------------------------------------- #


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width plain-text table."""
    columns = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def write_result(name: str, text: str, data: Optional[dict] = None) -> None:
    """Persist a regenerated table under benchmarks/results/ (and echo it)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(data, indent=2, default=float) + "\n")
    print(f"\n=== {name} (scale={bench_scale()}) ===")
    print(text)
