"""Table 4: greedy versus ILP extraction (BERT, NasRNN, NasNet-A).

The paper reports the runtime of the original graph and of the graphs
extracted greedily and by ILP from the same e-graph (k_multi = 1).  Greedy
fails to realise the concat/split merges because it ignores sharing, so its
graphs are no better (sometimes worse) than the original, while ILP improves
on both.
"""

import pytest

from benchmarks.common import bench_scale, cost_model, format_table, tensat_config, write_result
from repro.core import OptimizationSession
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.ir.convert import recexpr_to_graph
from repro.models import build_model

TABLE4_MODELS = ["bert", "nasrnn", "nasnet"]


def _generate_table4():
    cm = cost_model()
    rows = []
    data = {}
    for model in TABLE4_MODELS:
        graph = build_model(model, bench_scale())
        original = cm.graph_cost(graph)
        session = OptimizationSession(graph, cost_model=cm, config=tensat_config(model, k_multi=1))
        session.explore()
        egraph, root, cycle_filter = session.egraph, session.root, session.cycle_filter
        node_cost = cm.extraction_cost_function()

        greedy_expr = GreedyExtractor(node_cost, filter_list=cycle_filter.filter_list).extract(egraph, root)
        greedy_cost = cm.graph_cost(recexpr_to_graph(greedy_expr.expr))
        ilp_expr = ILPExtractor(
            node_cost,
            filter_list=cycle_filter.filter_list,
            time_limit=tensat_config(model).ilp_time_limit,
            mip_rel_gap=0.01,
        ).extract(egraph, root)
        ilp_cost = cm.graph_cost(recexpr_to_graph(ilp_expr.expr))

        # As in the end-to-end optimizer, a greedy pick worse than the input graph
        # would simply be discarded; report the raw extraction value to expose the
        # failure mode the paper describes.
        rows.append([model, f"{original:.4f}", f"{greedy_cost:.4f}", f"{ilp_cost:.4f}"])
        data[model] = {
            "original_cost_ms": original,
            "greedy_cost_ms": greedy_cost,
            "ilp_cost_ms": ilp_cost,
        }
    table = format_table(["model", "original (ms)", "greedy (ms)", "ILP (ms)"], rows)
    write_result("table4_extraction", table, data)
    return data


@pytest.mark.benchmark(group="table4")
def test_table4_greedy_vs_ilp(benchmark):
    data = benchmark.pedantic(_generate_table4, rounds=1, iterations=1)
    for model, entry in data.items():
        # ILP never loses to greedy, and never loses to the original graph.
        assert entry["ilp_cost_ms"] <= entry["greedy_cost_ms"] + 1e-9
        assert entry["ilp_cost_ms"] <= entry["original_cost_ms"] + 1e-9
    # On the paper-sized workloads greedy fails to beat the original graph on
    # BERT / NasNet-A because it cannot account for sharing; at the default
    # "tiny" benchmark scale fusion alone already helps, so this stronger check
    # only applies to the larger scales.
    if bench_scale() != "tiny":
        assert any(
            entry["greedy_cost_ms"] >= entry["original_cost_ms"] - 1e-9 for entry in data.values()
        )
