"""Table 4: greedy versus ILP extraction (BERT, NasRNN, NasNet-A).

The paper reports the runtime of the original graph and of the graphs
extracted greedily and by ILP from the same e-graph (k_multi = 1).  Greedy
fails to realise the concat/split merges because it ignores sharing, so its
graphs are no better (sometimes worse) than the original, while ILP improves
on both.

On top of the paper's comparison this module records the extraction-at-scale
instrumentation (see docs/extraction.md): the dominated-node prune ratio,
cold- versus warm-started ILP wall time, cold- versus warm-started BnB on
NasRNN, and the portfolio extractor's winning stage -- all persisted to
``benchmarks/results/table4_extraction.json`` (uploaded as a CI artifact).
"""

import time

import pytest

from benchmarks.common import bench_scale, cost_model, format_table, tensat_config, write_result
from repro.core import OptimizationSession
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.portfolio import PortfolioExtractor
from repro.ir.convert import recexpr_to_graph
from repro.models import build_model

TABLE4_MODELS = ["bert", "nasrnn", "nasnet"]

#: BnB is the pure-Python exact backend; on bench-scale problems it only gets
#: a slice this long (the point is the warm/cold comparison, not optimality).
BNB_TIME_LIMIT = 10.0


def _timed_extract(extractor, egraph, root):
    start = time.perf_counter()
    result = extractor.extract(egraph, root)
    return result, time.perf_counter() - start


def _generate_table4():
    cm = cost_model()
    rows = []
    data = {}
    for model in TABLE4_MODELS:
        graph = build_model(model, bench_scale())
        original = cm.graph_cost(graph)
        session = OptimizationSession(graph, cost_model=cm, config=tensat_config(model, k_multi=1))
        session.explore()
        egraph, root, cycle_filter = session.egraph, session.root, session.cycle_filter
        node_cost = cm.extraction_cost_function()
        flist = cycle_filter.filter_list
        ilp_time_limit = tensat_config(model).ilp_time_limit

        greedy_res, greedy_s = _timed_extract(
            GreedyExtractor(node_cost, filter_list=flist), egraph, root
        )
        greedy_cost = cm.graph_cost(recexpr_to_graph(greedy_res.expr))

        cold = ILPExtractor(
            node_cost, filter_list=flist, time_limit=ilp_time_limit, mip_rel_gap=0.01,
            reduce_problem=False, warm_start=False,
        )
        cold_res, cold_s = _timed_extract(cold, egraph, root)
        cold_cost = cm.graph_cost(recexpr_to_graph(cold_res.expr))

        warm = ILPExtractor(
            node_cost, filter_list=flist, time_limit=ilp_time_limit, mip_rel_gap=0.01,
            reduce_problem=True, warm_start=True,
        )
        warm_res, warm_s = _timed_extract(warm, egraph, root)
        warm_cost = cm.graph_cost(recexpr_to_graph(warm_res.expr))

        portfolio_res, portfolio_s = _timed_extract(
            PortfolioExtractor(
                node_cost, deadline=ilp_time_limit, filter_list=flist, mip_rel_gap=0.01
            ),
            egraph, root,
        )

        rows.append([
            model, f"{original:.4f}", f"{greedy_cost:.4f}", f"{warm_cost:.4f}",
            f"{warm.last_solve_info.prune_ratio:.2f}x", f"{cold_s:.2f}s", f"{warm_s:.2f}s",
        ])
        data[model] = {
            "original_cost_ms": original,
            "greedy_cost_ms": greedy_cost,
            "ilp_cost_ms": warm_cost,
            "ilp_cold_cost_ms": cold_cost,
            "greedy_seconds": greedy_s,
            "ilp_cold_seconds": cold_s,
            "ilp_warm_seconds": warm_s,
            "prune_ratio": warm.last_solve_info.prune_ratio,
            "num_variables_cold": cold.last_solve_info.num_variables,
            "num_variables_warm": warm.last_solve_info.num_variables,
            "warm_started": warm.last_solve_info.warm_started,
            "extraction_stages": {k: round(v, 4) for k, v in warm_res.stages.items()},
            "portfolio_cost_ms": cm.graph_cost(recexpr_to_graph(portfolio_res.expr)),
            "portfolio_seconds": portfolio_s,
            "portfolio_status": portfolio_res.status,
        }

        if model == "nasrnn":
            # BnB cold-vs-warm on the model the paper's Table 4 centres on:
            # the greedy incumbent lets the search prune from the first node.
            bnb_cold = ILPExtractor(
                node_cost, filter_list=flist, backend="bnb", time_limit=BNB_TIME_LIMIT,
                reduce_problem=False, warm_start=False,
            )
            _, bnb_cold_s = _timed_extract(bnb_cold, egraph, root)
            bnb_warm = ILPExtractor(
                node_cost, filter_list=flist, backend="bnb", time_limit=BNB_TIME_LIMIT,
                reduce_problem=True, warm_start=True,
            )
            _, bnb_warm_s = _timed_extract(bnb_warm, egraph, root)
            data[model]["bnb_cold_seconds"] = bnb_cold_s
            data[model]["bnb_warm_seconds"] = bnb_warm_s
            data[model]["bnb_cold_status"] = bnb_cold.last_solve_info.status
            data[model]["bnb_warm_status"] = bnb_warm.last_solve_info.status
            data[model]["bnb_warm_incumbent_used"] = bnb_warm.last_solve_info.warm_started

    table = format_table(
        ["model", "original (ms)", "greedy (ms)", "ILP (ms)", "prune", "ILP cold", "ILP warm"],
        rows,
    )
    write_result("table4_extraction", table, data)
    return data


def _check_table4(data):
    for model, entry in data.items():
        # ILP never loses to greedy, and never loses to the original graph.
        assert entry["ilp_cost_ms"] <= entry["greedy_cost_ms"] + 1e-9
        assert entry["ilp_cost_ms"] <= entry["original_cost_ms"] + 1e-9
        # Warm-starting and pruning are optimum-preserving.
        assert entry["ilp_cost_ms"] == pytest.approx(entry["ilp_cold_cost_ms"], rel=0.02)
        assert entry["portfolio_cost_ms"] <= entry["greedy_cost_ms"] + 1e-9
    # Dominated-node pruning must actually shrink the NasRNN variable space.
    assert data["nasrnn"]["prune_ratio"] > 1.0
    assert data["nasrnn"]["num_variables_warm"] < data["nasrnn"]["num_variables_cold"]
    # On the paper-sized workloads greedy fails to beat the original graph on
    # BERT / NasNet-A because it cannot account for sharing; at the default
    # "tiny" benchmark scale fusion alone already helps, so this stronger check
    # only applies to the larger scales.
    if bench_scale() != "tiny":
        assert any(
            entry["greedy_cost_ms"] >= entry["original_cost_ms"] - 1e-9 for entry in data.values()
        )


@pytest.mark.benchmark(group="table4")
def test_table4_greedy_vs_ilp(benchmark):
    data = benchmark.pedantic(_generate_table4, rounds=1, iterations=1)
    _check_table4(data)


if __name__ == "__main__":
    _check_table4(_generate_table4())
