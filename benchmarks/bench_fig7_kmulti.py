"""Figure 7: effect of the number of multi-pattern rewrite iterations (k_multi).

Sweeps ``k_multi`` over 0..3 for every model and reports the speedup of the
extracted graph, the optimizer time, and the final e-graph size.  The paper's
headline observation -- the e-graph grows (double-)exponentially with k_multi
while speedups improve for most models -- is what the regenerated series shows.
"""

import pytest

from benchmarks.common import PAPER_MODELS, format_table, run_model, write_result

K_VALUES = (0, 1, 2, 3)
#: Models in the sweep; override the full list via the module-level constant if
#: a quicker run is needed.
SWEEP_MODELS = PAPER_MODELS


def _generate_fig7():
    rows = []
    data = {}
    for model in SWEEP_MODELS:
        data[model] = {}
        for k in K_VALUES:
            # A tighter ILP budget keeps the 28-point sweep tractable; the series of
            # interest (e-graph size / optimizer time growth with k_multi) is unaffected.
            run = run_model(model, k_multi=k, run_taso=False, ilp_time_limit=20.0)
            stats = run.tensat.stats
            rows.append(
                [
                    model,
                    k,
                    f"{run.tensat_speedup:.1f}",
                    f"{run.tensat_seconds:.2f}",
                    stats.num_enodes,
                ]
            )
            data[model][k] = {
                "speedup_percent": run.tensat_speedup,
                "optimizer_seconds": run.tensat_seconds,
                "num_enodes": stats.num_enodes,
            }
    table = format_table(
        ["model", "k_multi", "speedup %", "optimizer time (s)", "e-nodes"], rows
    )
    write_result("fig7_kmulti", table, data)
    return data


@pytest.mark.benchmark(group="fig7")
def test_fig7_kmulti_sweep(benchmark):
    data = benchmark.pedantic(_generate_fig7, rounds=1, iterations=1)
    for model, series in data.items():
        # The e-graph never shrinks as k_multi grows (it explodes for the models
        # with many shared-input operators).
        sizes = [series[k]["num_enodes"] for k in K_VALUES]
        assert all(a <= b + 1 for a, b in zip(sizes, sizes[1:])), (model, sizes)
        # Multi-pattern rules are what unlock the merges: k_multi >= 1 is never
        # worse than k_multi = 0.
        assert series[1]["speedup_percent"] >= series[0]["speedup_percent"] - 1e-6
