"""Ablation (DESIGN.md): HiGHS (scipy.milp) versus the pure-Python branch-and-bound ILP backend.

Not a paper experiment.  The branch-and-bound fallback exists so extraction
works even without a functioning HiGHS build and to cross-check the
formulation; this ablation verifies both backends find the same optimum on a
small e-graph and reports their solve times.
"""

import time

import pytest

from benchmarks.common import cost_model, format_table, write_result
from repro.core import OptimizationSession, TensatConfig
from repro.egraph.extraction.ilp import ILPExtractor
from repro.ir.convert import recexpr_to_graph
from repro.models import build_model


def _generate():
    cm = cost_model()
    graph = build_model("nasrnn", "tiny", steps=1, gates=2)
    config = TensatConfig(node_limit=400, iter_limit=4, k_multi=1, ilp_time_limit=30)
    session = OptimizationSession(graph, cost_model=cm, config=config)
    session.explore()
    egraph, root, cycle_filter = session.egraph, session.root, session.cycle_filter
    node_cost = cm.extraction_cost_function()

    rows = []
    data = {}
    for backend in ("scipy", "bnb"):
        extractor = ILPExtractor(
            node_cost, filter_list=cycle_filter.filter_list, backend=backend, time_limit=60
        )
        start = time.perf_counter()
        result = extractor.extract(egraph, root)
        elapsed = time.perf_counter() - start
        graph_cost = cm.graph_cost(recexpr_to_graph(result.expr))
        rows.append([backend, f"{graph_cost:.5f}", f"{elapsed:.3f}", result.status])
        data[backend] = {"cost_ms": graph_cost, "seconds": elapsed, "status": result.status}
    table = format_table(["backend", "extracted cost (ms)", "solve time (s)", "status"], rows)
    write_result("ablation_ilp_backend", table, data)
    return data


@pytest.mark.benchmark(group="ablation-ilp-backend")
def test_ilp_backend_ablation(benchmark):
    data = benchmark.pedantic(_generate, rounds=1, iterations=1)
    assert data["scipy"]["cost_ms"] == pytest.approx(data["bnb"]["cost_ms"], rel=1e-6)
