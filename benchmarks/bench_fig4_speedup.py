"""Figure 4: speedup percentage of the optimized graph, TASO vs TENSAT.

The paper measures each optimized graph five times on the GPU and plots the
mean and standard error of the speedup over the original graph, including an
extra Inception-v3 point with ``k_multi = 2``.  Here graph "runtime" is the
cost model value perturbed by multiplicative measurement noise, repeated five
times, which reproduces the error-bar protocol on the simulated backend.
"""

import numpy as np
import pytest

from benchmarks.common import PAPER_MODELS, cost_model, format_table, run_model, write_result
from repro.backend.runtime import measure_graph_runtime, speedup_percent

REPETITIONS = 5
NOISE = 0.02


def _measure_speedups(run, rng):
    cm = cost_model()
    original = [
        measure_graph_runtime(run.tensat.original, cm, noise=NOISE, rng=rng) for _ in range(REPETITIONS)
    ]
    rows = {}
    for name, graph in (("taso", run.taso.optimized), ("tensat", run.tensat.optimized)):
        speedups = [
            speedup_percent(o, measure_graph_runtime(graph, cm, noise=NOISE, rng=rng))
            for o in original
        ]
        rows[name] = (float(np.mean(speedups)), float(np.std(speedups) / np.sqrt(REPETITIONS)))
    return rows


def _generate_fig4():
    rng = np.random.default_rng(0)
    rows = []
    data = {}
    labels = list(PAPER_MODELS) + ["inception-k2"]
    for label in labels:
        if label == "inception-k2":
            run = run_model("inception", k_multi=2)
        else:
            run = run_model(label)
        measured = _measure_speedups(run, rng)
        rows.append(
            [
                label,
                f"{measured['taso'][0]:.1f} ± {measured['taso'][1]:.1f}",
                f"{measured['tensat'][0]:.1f} ± {measured['tensat'][1]:.1f}",
            ]
        )
        data[label] = {
            "taso_mean": measured["taso"][0],
            "taso_stderr": measured["taso"][1],
            "tensat_mean": measured["tensat"][0],
            "tensat_stderr": measured["tensat"][1],
        }
    table = format_table(["model", "TASO speedup % (mean ± se)", "TENSAT speedup % (mean ± se)"], rows)
    write_result("fig4_speedup", table, data)
    return data


@pytest.mark.benchmark(group="fig4")
def test_fig4_speedup(benchmark):
    data = benchmark.pedantic(_generate_fig4, rounds=1, iterations=1)
    # Shape checks: NasRNN is TENSAT's biggest win; increasing k_multi for
    # Inception does not hurt it (paper: it overtakes TASO at k=2).
    assert data["nasrnn"]["tensat_mean"] >= data["nasrnn"]["taso_mean"]
    assert data["inception-k2"]["tensat_mean"] >= data["inception"]["tensat_mean"] - 1.0
