"""E-matching benchmark: naive matcher vs. per-rule VM vs. shared-prefix trie.

The exploration phase dominates optimization time, and within it the search
for rule matches dominates (paper Section 6).  This benchmark runs the
search -> plan -> apply pipeline on the seed models three times -- with the
interpretive backtracking matcher, with one compiled program per rule, and
with all rule programs merged into the shared-prefix trie -- and reports the
per-phase timing (search / apply / rebuild).  All three search paths produce
identical ordered match lists, so the three runs follow the exact same
trajectory (same e-nodes, same iterations, same stop reason); the table
asserts this before reporting any timing.

A second section times one-shot full-graph searches of every rule's source
pattern over the final (saturated) e-graph, isolating the wins on the search
itself from the delta seeding: the VM's win over the interpreter, and the
trie's win over R independent per-rule sweeps.

A third section benchmarks the multi-pattern *join*: combining each
multi-pattern rule's per-source match lists into compatible combinations,
once with the Cartesian-product spec and once with the indexed hash join
(``docs/multipattern.md``), on the same saturated e-graph.  Both joins must
return identical combination lists; the speedup is the quadratic product
enumeration the hash join never materialises.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from benchmarks.common import bench_scale, format_table, write_result
from repro.core.config import TensatConfig
from repro.core.events import PhaseTimingObserver
from repro.core.session import OptimizationSession
from repro.egraph.ematch import naive_search_pattern, search_pattern
from repro.egraph.machine import TrieMatcher, build_rule_trie
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.models import build_model
from repro.rules import default_ruleset

#: Models named by the acceptance criterion; nasrnn is the e-graph-heavy one.
BENCH_MODELS = ["nasrnn", "resnext"]

#: Exploration-only configuration: greedy extraction keeps the run dominated
#: by the phase this benchmark measures.
BENCH_CONFIG = dict(
    node_limit=6_000,
    iter_limit=10,
    k_multi=1,
    extraction="greedy",
)

#: The three search paths behind the pipeline's one search contract.
MODES = {
    "naive": dict(matcher="naive"),
    "per-rule": dict(matcher="vm", search_mode="per-rule"),
    "trie": dict(matcher="vm", search_mode="trie"),
}


def _explore(model: str, scale: str, mode: str):
    """One full run; per-phase timings come from an attached observer."""
    graph = build_model(model, scale)
    config = TensatConfig(**MODES[mode], **BENCH_CONFIG)
    timing = PhaseTimingObserver()
    start = time.perf_counter()
    session = OptimizationSession(graph, config=config, observers=[timing])
    result = session.result()
    seconds = time.perf_counter() - start
    return result, seconds, timing


def _trajectory(result) -> tuple:
    report = result.runner_report
    return (
        result.stats.num_enodes,
        result.stats.stop_reason,
        report.num_iterations,
        tuple(it.n_matches for it in report.iterations),
        tuple(it.n_applied for it in report.iterations),
        tuple(it.n_deduped for it in report.iterations),
    )


def _one_shot_seconds(egraph, search_fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` timing of one full-graph search of every rule."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        search_fn(egraph)
        best = min(best, time.perf_counter() - t0)
    return best


def _multi_join_seconds(searcher, egraph, canonical, join: str, repeats: int) -> float:
    """Best-of-``repeats`` timing of combining every multi rule's matches."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        searcher.combine_matches(egraph, canonical, join=join)
        best = min(best, time.perf_counter() - t0)
    return best


def _generate_bench_ematch():
    scale = "small" if bench_scale() == "tiny" else bench_scale()
    patterns = [rw.lhs for rw in default_ruleset().rewrites]
    sharing = build_rule_trie(patterns).sharing_stats()

    rows: List[list] = []
    shot_rows: List[list] = []
    join_rows: List[list] = []
    data: Dict[str, dict] = {"trie_sharing": sharing}
    for model in BENCH_MODELS:
        results = {mode: _explore(model, scale, mode) for mode in MODES}

        # Headline criterion: every search path must walk the identical
        # trajectory -- same match sets, same plan, same growth, same stop.
        golden = _trajectory(results["naive"][0])
        for mode in ("per-rule", "trie"):
            assert _trajectory(results[mode][0]) == golden, (model, mode)

        reports = {mode: results[mode][0].runner_report for mode in MODES}
        # Per-phase timings come from the observers, not report fields.
        timings = {mode: results[mode][2] for mode in MODES}
        search = {mode: timings[mode].search_seconds for mode in MODES}
        n_iters = timings["trie"].iterations
        delta_iters = sum(1 for it in reports["trie"].iterations if not it.full_search)

        # One-shot comparison on the saturated e-graph (no delta seeding);
        # the session keeps the explored e-graph inspectable.
        explore_session = OptimizationSession(
            build_model(model, scale), config=TensatConfig(**MODES["trie"], **BENCH_CONFIG)
        )
        explore_session.explore()
        egraph = explore_session.egraph
        trie_matcher = TrieMatcher(patterns)

        def _per_rule_sweep(eg):
            for pattern in patterns:
                search_pattern(eg, pattern)

        def _naive_sweep(eg):
            for pattern in patterns:
                naive_search_pattern(eg, pattern)

        shots = {
            "naive": _one_shot_seconds(egraph, _naive_sweep),
            "per-rule": _one_shot_seconds(egraph, _per_rule_sweep),
            "trie": _one_shot_seconds(egraph, lambda eg: trie_matcher.search_all(eg)),
        }

        # Multi-pattern join on the saturated e-graph: Cartesian-product spec
        # vs. the indexed hash join, over identical per-source match lists.
        # Timed twice -- end-to-end (with each rule's MultiCondition shape
        # check, what the runner pays) and condition-free (isolating the
        # enumeration the hash join eliminates; the shape check costs both
        # paths the same, since they evaluate identical combination lists).
        multi_rules = default_ruleset().multi_rewrites
        searcher = MultiPatternSearcher(multi_rules)
        bare_searcher = MultiPatternSearcher(
            [
                MultiPatternRewrite(
                    name=r.name,
                    sources=r.sources,
                    targets=r.targets,
                    condition=None,
                    skip_identical=r.skip_identical,
                )
                for r in multi_rules
            ]
        )
        canonical = searcher.search_canonical(egraph)
        product_results = searcher.combine_matches(egraph, canonical, join="product")
        hash_results = searcher.combine_matches(egraph, canonical, join="hash")
        assert hash_results == product_results, model  # bit-identical combination lists
        assert bare_searcher.combine_matches(egraph, canonical, join="hash") == (
            bare_searcher.combine_matches(egraph, canonical, join="product")
        ), model
        n_source_matches = sum(len(m) for m in canonical.values())
        n_combinations = sum(len(combos) for _, combos in hash_results)
        joins = {
            # The product side is timed once: it is the slow side, so
            # run-to-run noise is negligible next to the gap.
            "product": _multi_join_seconds(searcher, egraph, canonical, "product", repeats=1),
            "hash": _multi_join_seconds(searcher, egraph, canonical, "hash", repeats=3),
            "product_no_condition": _multi_join_seconds(
                bare_searcher, egraph, canonical, "product", repeats=1
            ),
            "hash_no_condition": _multi_join_seconds(
                bare_searcher, egraph, canonical, "hash", repeats=3
            ),
        }

        rows.append(
            [
                model,
                n_iters,
                delta_iters,
                f"{search['naive'] * 1000:.1f}",
                f"{search['per-rule'] * 1000:.1f}",
                f"{search['trie'] * 1000:.1f}",
                f"{search['naive'] / max(search['trie'], 1e-9):.2f}x",
                f"{search['per-rule'] / max(search['trie'], 1e-9):.2f}x",
                f"{timings['trie'].apply_seconds * 1000:.1f}",
                f"{timings['trie'].rebuild_seconds * 1000:.1f}",
            ]
        )
        shot_rows.append(
            [
                model,
                f"{shots['naive'] * 1000:.1f}",
                f"{shots['per-rule'] * 1000:.1f}",
                f"{shots['trie'] * 1000:.1f}",
                f"{shots['naive'] / max(shots['per-rule'], 1e-9):.2f}x",
                f"{shots['per-rule'] / max(shots['trie'], 1e-9):.2f}x",
            ]
        )
        join_rows.append(
            [
                model,
                n_source_matches,
                n_combinations,
                f"{joins['product'] * 1000:.1f}",
                f"{joins['hash'] * 1000:.1f}",
                f"{joins['product'] / max(joins['hash'], 1e-9):.2f}x",
                f"{joins['product_no_condition'] * 1000:.1f}",
                f"{joins['hash_no_condition'] * 1000:.1f}",
                f"{joins['product_no_condition'] / max(joins['hash_no_condition'], 1e-9):.2f}x",
            ]
        )
        data[model] = {
            "scale": scale,
            "iterations": n_iters,
            "delta_iterations": delta_iters,
            "search_seconds": {mode: search[mode] for mode in MODES},
            "apply_seconds": {mode: timings[mode].apply_seconds for mode in MODES},
            "rebuild_seconds": {mode: timings[mode].rebuild_seconds for mode in MODES},
            "exploration_search_speedup": search["naive"] / max(search["per-rule"], 1e-9),
            "trie_exploration_search_speedup": search["per-rule"] / max(search["trie"], 1e-9),
            "one_shot_seconds": shots,
            "one_shot_speedup": shots["naive"] / max(shots["per-rule"], 1e-9),
            "trie_one_shot_speedup": shots["per-rule"] / max(shots["trie"], 1e-9),
            "per_iteration_search_ms": {
                mode: [it["search_seconds"] * 1000 for it in timings[mode].per_iteration]
                for mode in MODES
            },
            "total_seconds": {mode: results[mode][1] for mode in MODES},
            "multi_join": {
                "source_matches": n_source_matches,
                "combinations": n_combinations,
                "seconds": joins,
                "speedup": joins["product"] / max(joins["hash"], 1e-9),
                "enumeration_speedup": joins["product_no_condition"]
                / max(joins["hash_no_condition"], 1e-9),
            },
        }

    table = format_table(
        [
            "model",
            "iters",
            "delta iters",
            "naive search (ms)",
            "per-rule search (ms)",
            "trie search (ms)",
            "trie vs naive",
            "trie vs per-rule",
            "apply (ms)",
            "rebuild (ms)",
        ],
        rows,
    )
    shot_table = format_table(
        [
            "model",
            "naive 1-shot (ms)",
            "per-rule 1-shot (ms)",
            "trie 1-shot (ms)",
            "VM vs naive",
            "trie vs per-rule",
        ],
        shot_rows,
    )
    join_table = format_table(
        [
            "model",
            "source matches",
            "combinations",
            "product join (ms)",
            "hash join (ms)",
            "hash vs product",
            "product enum (ms)",
            "hash enum (ms)",
            "enum speedup",
        ],
        join_rows,
    )
    sharing_line = (
        f"rule trie: {sharing['buckets']} op buckets, "
        f"{sharing['insts_unshared']} -> {sharing['insts_shared']} instructions "
        f"({sharing['insts_saved']} shared away)"
    )
    write_result(
        "bench_ematch",
        table + "\n\n" + shot_table + "\n\n" + join_table + "\n\n" + sharing_line,
        data,
    )
    return data


@pytest.mark.benchmark(group="ematch")
def test_bench_ematch(benchmark):
    data = benchmark.pedantic(_generate_bench_ematch, rounds=1, iterations=1)
    for model in BENCH_MODELS:
        # The compiled VM + delta search must reduce exploration search time,
        # and merging the rule programs must beat running them one by one.
        assert data[model]["exploration_search_speedup"] > 1.0
        assert data[model]["trie_exploration_search_speedup"] > 1.0
        assert data[model]["one_shot_speedup"] > 1.0
        assert data[model]["trie_one_shot_speedup"] > 1.0
        # The indexed join must beat the Cartesian-product enumeration it
        # replaces.  (The end-to-end "speedup" includes the per-combination
        # shape checks both joins pay identically, so it is reported but not
        # asserted -- on combination-dense graphs it approaches 1.0.)
        assert data[model]["multi_join"]["enumeration_speedup"] > 1.0


if __name__ == "__main__":
    _generate_bench_ematch()
