"""E-matching benchmark: naive matcher vs. per-rule VM vs. shared-prefix trie.

The exploration phase dominates optimization time, and within it the search
for rule matches dominates (paper Section 6).  This benchmark runs the
search -> plan -> apply pipeline on the seed models three times -- with the
interpretive backtracking matcher, with one compiled program per rule, and
with all rule programs merged into the shared-prefix trie -- and reports the
per-phase timing (search / apply / rebuild).  All three search paths produce
identical ordered match lists, so the three runs follow the exact same
trajectory (same e-nodes, same iterations, same stop reason); the table
asserts this before reporting any timing.

A second section times one-shot full-graph searches of every rule's source
pattern over the final (saturated) e-graph, isolating the wins on the search
itself from the delta seeding: the VM's win over the interpreter, and the
trie's win over R independent per-rule sweeps.

A third section benchmarks the multi-pattern *join*: combining each
multi-pattern rule's per-source match lists into compatible combinations,
once with the Cartesian-product spec and once with the indexed hash join
(``docs/multipattern.md``), on the same saturated e-graph.  Both joins must
return identical combination lists; the speedup is the quadratic product
enumeration the hash join never materialises.

A fourth section benchmarks the *e-class shape analysis*
(``docs/shape_analysis.md``): full exploration runs with
``shape_analysis="off"`` (on-demand inference per candidate binding, the
pre-analysis behaviour) and ``"on"`` (compiled condition programs over
interned per-class facts), each under the ``condition_cache="auto"``
default, so the two runs are exactly the before/after of the default
pipeline.  The trajectories must be bit-identical; reported is the
condition-check and multi-join time each side pays.

A fifth section benchmarks the *condition-check cache*
(``docs/apply_plan.md``) with the shape analysis on: full exploration runs
with ``condition_cache="memo"`` and ``"off"``, with multi-pattern rules
active for two iterations so the join re-checks the previous iteration's
combinations.  The trajectories must be bit-identical (the cache is
invalidated whenever a bound e-class changes, so it can never alter a
verdict); reported are the condition/multi-join/rebuild time and the cache
hit rate.  With compiled per-class facts a direct check is about as cheap
as the memo's key construction, which is why ``"auto"`` resolves to
``"off"`` in this regime -- the recorded numbers document that resolution.

A sixth section benchmarks the *sharded search* (``docs/parallel.md``): the
same trie-mode exploration with the per-iteration bucket sweep fanned out
across 1 / 2 / 4 / 8 worker shards, once per executor (``thread`` and
``process``).  Sharding never changes results -- every run must walk the
serial trajectory bit-for-bit, asserted before any timing is reported --
so the curve is pure wall-clock: search seconds per worker count, speedup
over the unsharded sweep, and the pool utilisation the timing observer
derives from the per-shard busy times.  A companion table times
``optimize_many`` fanning whole sessions over the full eight-model batch
(``jobs=1`` vs. ``jobs=4``, thread and process).  Both tables record the
host's core count: on a single-core runner the GIL (thread) and the
single core (process) make slowdowns the *expected* honest result, which
is why the assertions gate on parity and bookkeeping, not on speedup.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, List

import pytest

from benchmarks.common import bench_scale, format_table, write_result
from repro.core.batch import optimize_many
from repro.core.config import TensatConfig
from repro.core.events import PhaseTimingObserver
from repro.core.session import OptimizationSession
from repro.egraph.ematch import naive_search_pattern, search_pattern
from repro.egraph.machine import TrieMatcher, build_rule_trie
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.models import MODEL_NAMES, build_model
from repro.rules import default_ruleset

#: Models named by the acceptance criterion; nasrnn is the e-graph-heavy one.
BENCH_MODELS = ["nasrnn", "resnext"]

#: Exploration-only configuration: greedy extraction keeps the run dominated
#: by the phase this benchmark measures.
BENCH_CONFIG = dict(
    node_limit=6_000,
    iter_limit=10,
    k_multi=1,
    extraction="greedy",
)

#: The three search paths behind the pipeline's one search contract.
MODES = {
    "naive": dict(matcher="naive"),
    "per-rule": dict(matcher="vm", search_mode="per-rule"),
    "trie": dict(matcher="vm", search_mode="trie"),
}

#: Condition-cache section: two multi-pattern iterations so iteration 1
#: re-joins (and the cache re-serves) iteration 0's combinations.
CACHE_CONFIG = dict(BENCH_CONFIG, k_multi=2)

#: Cores-vs-speedup curve for the sharded search; 1 is the unsharded
#: baseline (reused from the trie-mode run above, same configuration).
PARALLEL_JOBS = (1, 2, 4, 8)
PARALLEL_EXECUTORS = ("thread", "process")

#: Session-level fan-out width for the eight-model ``optimize_many`` batch.
BATCH_JOBS = 4


def _explore_cache(model: str, scale: str, condition_cache: str):
    """One trie-mode run with the condition cache pinned on or off.

    The shape analysis stays at its "on" default, so this measures the
    cache in the regime the pipeline actually runs.  The per-stage timings
    and cache counters come straight off ``result.stats``; no observer
    needed.
    """
    gc.collect()  # don't let the previous run's garbage land mid-measurement
    graph = build_model(model, scale)
    config = TensatConfig(**MODES["trie"], **CACHE_CONFIG, condition_cache=condition_cache)
    return OptimizationSession(graph, config=config).result()


def _explore_shape(model: str, scale: str, shape_analysis: str):
    """One trie-mode run with the shape analysis on or off.

    ``condition_cache`` stays at its "auto" default, which resolves to
    "off" with the analysis on and "memo" with it off -- so the two runs
    are exactly the before/after of the default pipeline.
    """
    gc.collect()  # don't let the previous run's garbage land mid-measurement
    graph = build_model(model, scale)
    config = TensatConfig(**MODES["trie"], **CACHE_CONFIG, shape_analysis=shape_analysis)
    return OptimizationSession(graph, config=config).result()


def _explore_parallel(model: str, scale: str, jobs: int, executor: str):
    """One trie-mode run with the search sharded across ``jobs`` workers."""
    gc.collect()  # don't let the previous run's garbage land mid-measurement
    graph = build_model(model, scale)
    config = TensatConfig(
        **MODES["trie"], **BENCH_CONFIG, search_jobs=jobs, search_executor=executor
    )
    timing = PhaseTimingObserver()
    result = OptimizationSession(graph, config=config, observers=[timing]).result()
    return result, timing


def _batch_seconds(scale: str, jobs: int, executor: str):
    """Wall time (and per-model costs) of ``optimize_many`` over the full batch."""
    gc.collect()
    graphs = [build_model(name, scale) for name in MODEL_NAMES]
    config = TensatConfig(**MODES["trie"], **BENCH_CONFIG)
    t0 = time.perf_counter()
    results = optimize_many(graphs, config=config, jobs=jobs, executor=executor)
    seconds = time.perf_counter() - t0
    return seconds, [r.stats.optimized_cost for r in results]


def _explore(model: str, scale: str, mode: str):
    """One full run; per-phase timings come from an attached observer."""
    gc.collect()  # don't let the previous run's garbage land mid-measurement
    graph = build_model(model, scale)
    config = TensatConfig(**MODES[mode], **BENCH_CONFIG)
    timing = PhaseTimingObserver()
    start = time.perf_counter()
    session = OptimizationSession(graph, config=config, observers=[timing])
    result = session.result()
    seconds = time.perf_counter() - start
    return result, seconds, timing


def _trajectory(result) -> tuple:
    report = result.runner_report
    return (
        result.stats.num_enodes,
        result.stats.stop_reason,
        report.num_iterations,
        tuple(it.n_matches for it in report.iterations),
        tuple(it.n_applied for it in report.iterations),
        tuple(it.n_deduped for it in report.iterations),
    )


def _one_shot_seconds(egraph, search_fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` timing of one full-graph search of every rule."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        search_fn(egraph)
        best = min(best, time.perf_counter() - t0)
    return best


def _multi_join_seconds(searcher, egraph, canonical, join: str, repeats: int) -> float:
    """Best-of-``repeats`` timing of combining every multi rule's matches."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        searcher.combine_matches(egraph, canonical, join=join)
        best = min(best, time.perf_counter() - t0)
    return best


def _generate_bench_ematch():
    scale = "small" if bench_scale() == "tiny" else bench_scale()
    patterns = [rw.lhs for rw in default_ruleset().rewrites]
    sharing = build_rule_trie(patterns).sharing_stats()

    rows: List[list] = []
    shot_rows: List[list] = []
    join_rows: List[list] = []
    shape_rows: List[list] = []
    cache_rows: List[list] = []
    parallel_rows: List[list] = []
    data: Dict[str, dict] = {"trie_sharing": sharing}
    for model in BENCH_MODELS:
        results = {mode: _explore(model, scale, mode) for mode in MODES}

        # Headline criterion: every search path must walk the identical
        # trajectory -- same match sets, same plan, same growth, same stop.
        golden = _trajectory(results["naive"][0])
        for mode in ("per-rule", "trie"):
            assert _trajectory(results[mode][0]) == golden, (model, mode)

        reports = {mode: results[mode][0].runner_report for mode in MODES}
        # Per-phase timings come from the observers, not report fields.
        timings = {mode: results[mode][2] for mode in MODES}
        search = {mode: timings[mode].search_seconds for mode in MODES}
        n_iters = timings["trie"].iterations
        delta_iters = sum(1 for it in reports["trie"].iterations if not it.full_search)

        # One-shot comparison on the saturated e-graph (no delta seeding);
        # the session keeps the explored e-graph inspectable.
        explore_session = OptimizationSession(
            build_model(model, scale), config=TensatConfig(**MODES["trie"], **BENCH_CONFIG)
        )
        explore_session.explore()
        egraph = explore_session.egraph
        trie_matcher = TrieMatcher(patterns)

        def _per_rule_sweep(eg):
            for pattern in patterns:
                search_pattern(eg, pattern)

        def _naive_sweep(eg):
            for pattern in patterns:
                naive_search_pattern(eg, pattern)

        shots = {
            "naive": _one_shot_seconds(egraph, _naive_sweep),
            "per-rule": _one_shot_seconds(egraph, _per_rule_sweep),
            "trie": _one_shot_seconds(egraph, lambda eg: trie_matcher.search_all(eg)),
        }

        # Multi-pattern join on the saturated e-graph: Cartesian-product spec
        # vs. the indexed hash join, over identical per-source match lists.
        # Timed twice -- end-to-end (with each rule's MultiCondition shape
        # check, what the runner pays) and condition-free (isolating the
        # enumeration the hash join eliminates; the shape check costs both
        # paths the same, since they evaluate identical combination lists).
        multi_rules = default_ruleset().multi_rewrites
        searcher = MultiPatternSearcher(multi_rules)
        bare_searcher = MultiPatternSearcher(
            [
                MultiPatternRewrite(
                    name=r.name,
                    sources=r.sources,
                    targets=r.targets,
                    condition=None,
                    skip_identical=r.skip_identical,
                )
                for r in multi_rules
            ]
        )
        canonical = searcher.search_canonical(egraph)
        product_results = searcher.combine_matches(egraph, canonical, join="product")
        hash_results = searcher.combine_matches(egraph, canonical, join="hash")
        assert hash_results == product_results, model  # bit-identical combination lists
        assert bare_searcher.combine_matches(egraph, canonical, join="hash") == (
            bare_searcher.combine_matches(egraph, canonical, join="product")
        ), model
        n_source_matches = sum(len(m) for m in canonical.values())
        n_combinations = sum(len(combos) for _, combos in hash_results)
        joins = {
            # The product side is timed once: it is the slow side, so
            # run-to-run noise is negligible next to the gap.
            "product": _multi_join_seconds(searcher, egraph, canonical, "product", repeats=1),
            "hash": _multi_join_seconds(searcher, egraph, canonical, "hash", repeats=3),
            "product_no_condition": _multi_join_seconds(
                bare_searcher, egraph, canonical, "product", repeats=1
            ),
            "hash_no_condition": _multi_join_seconds(
                bare_searcher, egraph, canonical, "hash", repeats=3
            ),
        }

        # Shape analysis off/on under the condition_cache="auto" default:
        # the before/after of precomputing per-class facts.  Identical
        # trajectories (inference is a pure function of the bound classes'
        # facts), collapsed condition and multi-join time.
        shape_runs = {sa: _explore_shape(model, scale, sa) for sa in ("off", "on")}
        assert _trajectory(shape_runs["off"]) == _trajectory(shape_runs["on"]), model
        shape_stats = {sa: run.stats for sa, run in shape_runs.items()}
        condition_speedup = shape_stats["off"].condition_seconds / max(
            shape_stats["on"].condition_seconds, 1e-9
        )
        mjoin_speedup = shape_stats["off"].multi_join_seconds / max(
            shape_stats["on"].multi_join_seconds, 1e-9
        )

        # Condition-check cache on/off (shape analysis on): identical
        # trajectories (the memo is generation-invalidated, so it can never
        # serve a stale verdict), measured on the run each knob setting
        # actually pays for.
        # Sharded search cores-vs-speedup curve.  jobs=1 reuses the trie-mode
        # run above (identical configuration, unsharded sweep); every sharded
        # run must walk that run's trajectory bit-for-bit before its wall
        # clock counts.
        parallel_search: Dict[str, Dict[int, float]] = {}
        parallel_util: Dict[str, Dict[int, float]] = {}
        for p_executor in PARALLEL_EXECUTORS:
            parallel_search[p_executor] = {1: search["trie"]}
            parallel_util[p_executor] = {}
            for p_jobs in PARALLEL_JOBS[1:]:
                p_result, p_timing = _explore_parallel(model, scale, p_jobs, p_executor)
                assert _trajectory(p_result) == golden, (model, p_executor, p_jobs)
                parallel_search[p_executor][p_jobs] = p_timing.search_seconds
                parallel_util[p_executor][p_jobs] = p_timing.parallel_search_utilisation

        cache_runs = {cache: _explore_cache(model, scale, cache) for cache in ("memo", "off")}
        assert _trajectory(cache_runs["memo"]) == _trajectory(cache_runs["off"]), model
        cache_stats = {cache: result.stats for cache, result in cache_runs.items()}
        hits = cache_stats["memo"].condition_cache_hits
        checks = hits + cache_stats["memo"].condition_cache_misses

        rows.append(
            [
                model,
                n_iters,
                delta_iters,
                f"{search['naive'] * 1000:.1f}",
                f"{search['per-rule'] * 1000:.1f}",
                f"{search['trie'] * 1000:.1f}",
                f"{search['naive'] / max(search['trie'], 1e-9):.2f}x",
                f"{search['per-rule'] / max(search['trie'], 1e-9):.2f}x",
                f"{timings['trie'].apply_seconds * 1000:.1f}",
                f"{timings['trie'].rebuild_seconds * 1000:.1f}",
            ]
        )
        shot_rows.append(
            [
                model,
                f"{shots['naive'] * 1000:.1f}",
                f"{shots['per-rule'] * 1000:.1f}",
                f"{shots['trie'] * 1000:.1f}",
                f"{shots['naive'] / max(shots['per-rule'], 1e-9):.2f}x",
                f"{shots['per-rule'] / max(shots['trie'], 1e-9):.2f}x",
            ]
        )
        join_rows.append(
            [
                model,
                n_source_matches,
                n_combinations,
                f"{joins['product'] * 1000:.1f}",
                f"{joins['hash'] * 1000:.1f}",
                f"{joins['product'] / max(joins['hash'], 1e-9):.2f}x",
                f"{joins['product_no_condition'] * 1000:.1f}",
                f"{joins['hash_no_condition'] * 1000:.1f}",
                f"{joins['product_no_condition'] / max(joins['hash_no_condition'], 1e-9):.2f}x",
            ]
        )
        shape_rows.append(
            [
                model,
                f"{shape_stats['off'].condition_seconds * 1000:.1f}",
                f"{shape_stats['on'].condition_seconds * 1000:.1f}",
                f"{condition_speedup:.2f}x",
                f"{shape_stats['off'].multi_join_seconds * 1000:.1f}",
                f"{shape_stats['on'].multi_join_seconds * 1000:.1f}",
                f"{mjoin_speedup:.2f}x",
            ]
        )
        for p_executor in PARALLEL_EXECUTORS:
            secs = parallel_search[p_executor]
            parallel_rows.append(
                [
                    model,
                    p_executor,
                    f"{secs[1] * 1000:.1f}",
                    f"{secs[2] * 1000:.1f}",
                    f"{secs[4] * 1000:.1f}",
                    f"{secs[8] * 1000:.1f}",
                    f"{secs[1] / max(secs[4], 1e-9):.2f}x",
                    f"{parallel_util[p_executor][4]:.2f}",
                ]
            )
        cache_rows.append(
            [
                model,
                checks,
                f"{100.0 * hits / max(checks, 1):.1f}%",
                f"{cache_stats['off'].condition_seconds * 1000:.1f}",
                f"{cache_stats['memo'].condition_seconds * 1000:.1f}",
                f"{cache_stats['off'].multi_join_seconds * 1000:.1f}",
                f"{cache_stats['memo'].multi_join_seconds * 1000:.1f}",
                f"{cache_stats['memo'].rebuild_seconds * 1000:.1f}",
            ]
        )
        data[model] = {
            "scale": scale,
            "iterations": n_iters,
            "delta_iterations": delta_iters,
            "search_seconds": {mode: search[mode] for mode in MODES},
            "apply_seconds": {mode: timings[mode].apply_seconds for mode in MODES},
            "rebuild_seconds": {mode: timings[mode].rebuild_seconds for mode in MODES},
            "exploration_search_speedup": search["naive"] / max(search["per-rule"], 1e-9),
            "trie_exploration_search_speedup": search["per-rule"] / max(search["trie"], 1e-9),
            "one_shot_seconds": shots,
            "one_shot_speedup": shots["naive"] / max(shots["per-rule"], 1e-9),
            "trie_one_shot_speedup": shots["per-rule"] / max(shots["trie"], 1e-9),
            "per_iteration_search_ms": {
                mode: [it["search_seconds"] * 1000 for it in timings[mode].per_iteration]
                for mode in MODES
            },
            "total_seconds": {mode: results[mode][1] for mode in MODES},
            "multi_join": {
                "source_matches": n_source_matches,
                "combinations": n_combinations,
                "seconds": joins,
                "speedup": joins["product"] / max(joins["hash"], 1e-9),
                "enumeration_speedup": joins["product_no_condition"]
                / max(joins["hash_no_condition"], 1e-9),
            },
            "shape_analysis": {
                # "off" runs condition_cache=auto->memo (the old default
                # pipeline); "on" runs auto->off (the new default).
                "auto_condition_cache": {"off": "memo", "on": "off"},
                "condition_seconds": {
                    sa: shape_stats[sa].condition_seconds for sa in shape_stats
                },
                "multi_join_seconds": {
                    sa: shape_stats[sa].multi_join_seconds for sa in shape_stats
                },
                "rebuild_seconds": {
                    sa: shape_stats[sa].rebuild_seconds for sa in shape_stats
                },
                "condition_speedup": condition_speedup,
                "multi_join_speedup": mjoin_speedup,
            },
            "parallel_search": {
                "jobs": list(PARALLEL_JOBS),
                "search_seconds": {
                    ex: {str(j): parallel_search[ex][j] for j in PARALLEL_JOBS}
                    for ex in PARALLEL_EXECUTORS
                },
                "speedup_vs_serial": {
                    ex: {
                        str(j): parallel_search[ex][1] / max(parallel_search[ex][j], 1e-9)
                        for j in PARALLEL_JOBS[1:]
                    }
                    for ex in PARALLEL_EXECUTORS
                },
                "utilisation": {
                    ex: {str(j): parallel_util[ex][j] for j in PARALLEL_JOBS[1:]}
                    for ex in PARALLEL_EXECUTORS
                },
            },
            "condition_cache": {
                "shape_analysis": "on",
                "auto_resolves_to": "off",
                "checks": checks,
                "hits": hits,
                "hit_rate": hits / max(checks, 1),
                "condition_seconds": {
                    cache: cache_stats[cache].condition_seconds for cache in cache_stats
                },
                "multi_join_seconds": {
                    cache: cache_stats[cache].multi_join_seconds for cache in cache_stats
                },
                "rebuild_seconds": {
                    cache: cache_stats[cache].rebuild_seconds for cache in cache_stats
                },
            },
        }

    # Session-level fan-out: the whole eight-model batch through
    # optimize_many, sequential vs. jobs=BATCH_JOBS per executor.  Per-model
    # costs must be identical -- fan-out changes wall clock only.
    batch_rows: List[list] = []
    base_seconds, base_costs = _batch_seconds(scale, jobs=1, executor="thread")
    batch_data: Dict[str, dict] = {
        "models": list(MODEL_NAMES),
        "jobs": BATCH_JOBS,
        "seconds": {"serial": base_seconds},
        "speedup_vs_serial": {},
    }
    for b_executor in PARALLEL_EXECUTORS:
        fan_seconds, fan_costs = _batch_seconds(scale, jobs=BATCH_JOBS, executor=b_executor)
        assert fan_costs == base_costs, b_executor  # fan-out never changes results
        batch_data["seconds"][b_executor] = fan_seconds
        batch_data["speedup_vs_serial"][b_executor] = base_seconds / max(fan_seconds, 1e-9)
        batch_rows.append(
            [
                f"{len(MODEL_NAMES)} models",
                b_executor,
                f"{base_seconds:.2f}",
                f"{fan_seconds:.2f}",
                f"{base_seconds / max(fan_seconds, 1e-9):.2f}x",
            ]
        )
    data["parallel_batch"] = batch_data
    data["hardware"] = {"cpu_count": os.cpu_count() or 1}

    table = format_table(
        [
            "model",
            "iters",
            "delta iters",
            "naive search (ms)",
            "per-rule search (ms)",
            "trie search (ms)",
            "trie vs naive",
            "trie vs per-rule",
            "apply (ms)",
            "rebuild (ms)",
        ],
        rows,
    )
    shot_table = format_table(
        [
            "model",
            "naive 1-shot (ms)",
            "per-rule 1-shot (ms)",
            "trie 1-shot (ms)",
            "VM vs naive",
            "trie vs per-rule",
        ],
        shot_rows,
    )
    join_table = format_table(
        [
            "model",
            "source matches",
            "combinations",
            "product join (ms)",
            "hash join (ms)",
            "hash vs product",
            "product enum (ms)",
            "hash enum (ms)",
            "enum speedup",
        ],
        join_rows,
    )
    shape_table = format_table(
        [
            "model",
            "cond inference (ms)",
            "cond analysis (ms)",
            "cond speedup",
            "mjoin inference (ms)",
            "mjoin analysis (ms)",
            "mjoin speedup",
        ],
        shape_rows,
    )
    cache_table = format_table(
        [
            "model",
            "condition checks",
            "hit rate",
            "cond off (ms)",
            "cond memo (ms)",
            "mjoin off (ms)",
            "mjoin memo (ms)",
            "rebuild (ms)",
        ],
        cache_rows,
    )
    parallel_table = format_table(
        [
            "model",
            "executor",
            "search x1 (ms)",
            "search x2 (ms)",
            "search x4 (ms)",
            "search x8 (ms)",
            "speedup @4",
            "util @4",
        ],
        parallel_rows,
    )
    batch_table = format_table(
        [
            "batch",
            "executor",
            "jobs=1 (s)",
            f"jobs={BATCH_JOBS} (s)",
            "speedup",
        ],
        batch_rows,
    )
    sharing_line = (
        f"rule trie: {sharing['buckets']} op buckets, "
        f"{sharing['insts_unshared']} -> {sharing['insts_shared']} instructions "
        f"({sharing['insts_saved']} shared away)"
    )
    hardware_line = (
        f"host cores: {data['hardware']['cpu_count']} -- sharded-search and batch "
        "fan-out speedups need cores to spread across; on a single-core host the "
        "parity assertions are the result and slowdowns are expected"
    )
    write_result(
        "bench_ematch",
        table
        + "\n\n"
        + shot_table
        + "\n\n"
        + join_table
        + "\n\n"
        + shape_table
        + "\n\n"
        + cache_table
        + "\n\n"
        + parallel_table
        + "\n\n"
        + batch_table
        + "\n\n"
        + sharing_line
        + "\n"
        + hardware_line,
        data,
    )
    return data


@pytest.mark.benchmark(group="ematch")
def test_bench_ematch(benchmark):
    data = benchmark.pedantic(_generate_bench_ematch, rounds=1, iterations=1)
    for model in BENCH_MODELS:
        # The compiled VM + delta search must reduce exploration search time,
        # and merging the rule programs must beat running them one by one.
        assert data[model]["exploration_search_speedup"] > 1.0
        assert data[model]["trie_exploration_search_speedup"] > 1.0
        assert data[model]["one_shot_speedup"] > 1.0
        assert data[model]["trie_one_shot_speedup"] > 1.0
        # The indexed join must beat the Cartesian-product enumeration it
        # replaces.  (The end-to-end "speedup" includes the per-combination
        # shape checks both joins pay identically, so it is reported but not
        # asserted -- on combination-dense graphs it approaches 1.0.)
        assert data[model]["multi_join"]["enumeration_speedup"] > 1.0
        # Precomputed per-class shape facts must collapse condition-check
        # time relative to on-demand inference (the acceptance criterion:
        # >= 3x on nasrnn, the condition-heavy model; resnext is recorded
        # and must at least not regress).
        assert data[model]["shape_analysis"]["condition_speedup"] > 1.0
        # The condition cache must actually serve verdicts (the trajectory
        # parity with cache off is asserted during generation; the timing
        # deltas are recorded but not asserted -- per-check evaluation cost
        # varies too much across models to gate CI on).
        assert data[model]["condition_cache"]["hits"] > 0
        # Sharded search: correctness is asserted during generation (every
        # worker-count / executor combination walks the serial trajectory
        # bit-for-bit).  Speedup is a property of the host's core count, not
        # of the code -- a single-core CI runner *should* see ~1x or worse --
        # so the gate here is the bookkeeping: the full curve was measured
        # and the pool utilisation is a sane fraction.
        curve = data[model]["parallel_search"]
        for ex in ("thread", "process"):
            assert sorted(curve["search_seconds"][ex]) == ["1", "2", "4", "8"]
            for jobs_key, util in curve["utilisation"][ex].items():
                assert 0.0 < util <= 1.0, (model, ex, jobs_key)
    assert data["nasrnn"]["shape_analysis"]["condition_speedup"] > 3.0
    # Batch fan-out: per-model costs are asserted identical during
    # generation; both executors' timings must be recorded.
    assert sorted(data["parallel_batch"]["seconds"]) == ["process", "serial", "thread"]


if __name__ == "__main__":
    _generate_bench_ematch()
