"""E-matching benchmark: compiled VM + delta search vs. the naive matcher.

The exploration phase dominates optimization time, and within it the search
for rule matches dominates (paper Section 6).  This benchmark runs the
exploration loop on the seed models twice -- once with the interpretive
backtracking matcher, once with the compiled e-matching VM seeded from
iteration deltas -- and reports per-iteration search time.  Both matchers
produce identical match lists, so the two runs follow the exact same
trajectory (same e-nodes, same iterations, same stop reason); the table below
asserts this before reporting any timing.

A second section times one-shot full-graph searches of every rule's source
pattern over the final (saturated) e-graph, isolating the VM's win on the
search itself from the delta seeding.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from benchmarks.common import bench_scale, format_table, write_result
from repro.core.config import TensatConfig
from repro.core.optimizer import TensatOptimizer
from repro.egraph.ematch import naive_search_pattern, search_pattern
from repro.models import build_model
from repro.rules import default_ruleset

#: Models named by the acceptance criterion; nasrnn is the e-graph-heavy one.
BENCH_MODELS = ["nasrnn", "resnext"]

#: Exploration-only configuration: greedy extraction keeps the run dominated
#: by the phase this benchmark measures.
BENCH_CONFIG = dict(
    node_limit=6_000,
    iter_limit=10,
    k_multi=1,
    extraction="greedy",
)


def _explore(model: str, scale: str, matcher: str):
    graph = build_model(model, scale)
    config = TensatConfig(matcher=matcher, **BENCH_CONFIG)
    optimizer = TensatOptimizer(config=config)
    start = time.perf_counter()
    result = optimizer.optimize(graph)
    seconds = time.perf_counter() - start
    return result, seconds


def _trajectory(result) -> tuple:
    report = result.runner_report
    return (
        result.stats.num_enodes,
        result.stats.stop_reason,
        report.num_iterations,
        tuple(it.n_matches for it in report.iterations),
        tuple(it.n_applied for it in report.iterations),
    )


def _one_shot_search_seconds(egraph, use_vm: bool, repeats: int = 3) -> float:
    """Full-graph search of every rule's source pattern, best of ``repeats``."""
    patterns = [rw.lhs for rw in default_ruleset().rewrites]
    search = search_pattern if use_vm else naive_search_pattern
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for pattern in patterns:
            search(egraph, pattern)
        best = min(best, time.perf_counter() - t0)
    return best


def _generate_bench_ematch():
    scale = "small" if bench_scale() == "tiny" else bench_scale()
    rows: List[list] = []
    data: Dict[str, dict] = {}
    for model in BENCH_MODELS:
        naive_result, naive_total = _explore(model, scale, "naive")
        vm_result, vm_total = _explore(model, scale, "vm")

        # Headline criterion: the compiled path must walk the identical
        # trajectory -- same match sets, same growth, same stop reason.
        assert _trajectory(naive_result) == _trajectory(vm_result), model

        naive_search = naive_result.runner_report.search_seconds
        vm_search = vm_result.runner_report.search_seconds
        n_iters = vm_result.runner_report.num_iterations
        delta_iters = sum(1 for it in vm_result.runner_report.iterations if not it.full_search)

        # One-shot comparison on the saturated e-graph.
        optimizer = TensatOptimizer(config=TensatConfig(matcher="vm", **BENCH_CONFIG))
        egraph, _root, _filter, _report = optimizer.explore(build_model(model, scale))
        naive_shot = _one_shot_search_seconds(egraph, use_vm=False)
        vm_shot = _one_shot_search_seconds(egraph, use_vm=True)

        rows.append(
            [
                model,
                n_iters,
                delta_iters,
                f"{naive_search * 1000:.1f}",
                f"{vm_search * 1000:.1f}",
                f"{naive_search / max(vm_search, 1e-9):.2f}x",
                f"{naive_shot * 1000:.1f}",
                f"{vm_shot * 1000:.1f}",
                f"{naive_shot / max(vm_shot, 1e-9):.2f}x",
            ]
        )
        data[model] = {
            "scale": scale,
            "iterations": n_iters,
            "delta_iterations": delta_iters,
            "naive_search_seconds": naive_search,
            "vm_search_seconds": vm_search,
            "exploration_search_speedup": naive_search / max(vm_search, 1e-9),
            "naive_one_shot_seconds": naive_shot,
            "vm_one_shot_seconds": vm_shot,
            "one_shot_speedup": naive_shot / max(vm_shot, 1e-9),
            "per_iteration_search_ms": {
                "naive": [it.search_seconds * 1000 for it in naive_result.runner_report.iterations],
                "vm": [it.search_seconds * 1000 for it in vm_result.runner_report.iterations],
            },
            "naive_total_seconds": naive_total,
            "vm_total_seconds": vm_total,
        }

    table = format_table(
        [
            "model",
            "iters",
            "delta iters",
            "naive search (ms)",
            "VM search (ms)",
            "speedup",
            "naive 1-shot (ms)",
            "VM 1-shot (ms)",
            "1-shot speedup",
        ],
        rows,
    )
    write_result("bench_ematch", table, data)
    return data


@pytest.mark.benchmark(group="ematch")
def test_bench_ematch(benchmark):
    data = benchmark.pedantic(_generate_bench_ematch, rounds=1, iterations=1)
    for model in BENCH_MODELS:
        # The compiled VM + delta search must reduce exploration search time.
        assert data[model]["exploration_search_speedup"] > 1.0
        assert data[model]["one_shot_speedup"] > 1.0


if __name__ == "__main__":
    _generate_bench_ematch()
