"""Ablation (DESIGN.md): simple versus backoff rule scheduling.

Not a paper experiment.  The paper runs every rule every iteration ("simple");
an egg-style backoff scheduler throttles rules whose match count explodes.
With the much smaller node budgets this Python reproduction uses, the backoff
scheduler keeps the node budget for useful rewrites, so it should never lose
badly and typically shrinks the e-graph at equal-or-better speedup.
"""

import pytest

from benchmarks.common import format_table, run_model, write_result

ABLATION_MODELS = ["nasrnn", "bert", "inception"]


def _generate():
    rows = []
    data = {}
    for model in ABLATION_MODELS:
        simple = run_model(model, run_taso=False, scheduler="simple")
        backoff = run_model(
            model, run_taso=False, scheduler="backoff", scheduler_match_limit=100, scheduler_ban_length=3
        )
        rows.append(
            [
                model,
                f"{simple.tensat_speedup:.1f}",
                f"{backoff.tensat_speedup:.1f}",
                simple.tensat.stats.num_enodes,
                backoff.tensat.stats.num_enodes,
                f"{simple.tensat_seconds:.2f}",
                f"{backoff.tensat_seconds:.2f}",
            ]
        )
        data[model] = {
            "simple_speedup": simple.tensat_speedup,
            "backoff_speedup": backoff.tensat_speedup,
            "simple_enodes": simple.tensat.stats.num_enodes,
            "backoff_enodes": backoff.tensat.stats.num_enodes,
            "simple_seconds": simple.tensat_seconds,
            "backoff_seconds": backoff.tensat_seconds,
        }
    table = format_table(
        [
            "model",
            "speedup % (simple)",
            "speedup % (backoff)",
            "e-nodes (simple)",
            "e-nodes (backoff)",
            "time s (simple)",
            "time s (backoff)",
        ],
        rows,
    )
    write_result("ablation_scheduler", table, data)
    return data


@pytest.mark.benchmark(group="ablation-scheduler")
def test_scheduler_ablation(benchmark):
    data = benchmark.pedantic(_generate, rounds=1, iterations=1)
    for model, entry in data.items():
        # The backoff scheduler never explodes the e-graph beyond the simple scheduler.
        assert entry["backoff_enodes"] <= entry["simple_enodes"] * 1.05 + 10
        # And it gives up at most a few points of speedup on these workloads.
        assert entry["backoff_speedup"] >= entry["simple_speedup"] - 5.0
