"""Table 5: ILP solve time with and without cycle constraints.

The paper compares extraction time when the ILP carries the topological-order
(cycle) constraints -- with real or integer order variables -- against the ILP
without them (possible because cycle filtering kept the e-graph acyclic), for
k_multi in {1, 2}.  Removing the constraints is the key scalability lever
(10x-1000x in the paper).
"""

import time

import pytest

from benchmarks.common import bench_scale, cost_model, format_table, tensat_config, write_result
from repro.core import OptimizationSession
from repro.egraph.extraction.ilp import ILPExtractor
from repro.models import build_model

TABLE5_MODELS = ["bert", "nasrnn", "nasnet"]
K_VALUES = (1, 2)
#: Per-solve time limit; the paper uses 3600 s, which is far beyond this harness's budget.
SOLVE_TIME_LIMIT = 30.0


def _solve(egraph, root, cycle_filter, node_cost, **kwargs):
    extractor = ILPExtractor(
        node_cost,
        filter_list=cycle_filter.filter_list,
        time_limit=SOLVE_TIME_LIMIT,
        mip_rel_gap=0.01,
        **kwargs,
    )
    start = time.perf_counter()
    extractor.extract(egraph, root)
    elapsed = time.perf_counter() - start
    status = extractor.last_solve_info.status if extractor.last_solve_info else "unknown"
    return elapsed, status


def _generate_table5():
    cm = cost_model()
    node_cost = cm.extraction_cost_function()
    rows = []
    data = {}
    for model in TABLE5_MODELS:
        data[model] = {}
        for k in K_VALUES:
            graph = build_model(model, bench_scale())
            config = tensat_config(model, k_multi=k)
            session = OptimizationSession(graph, cost_model=cm, config=config)
            session.explore()
            egraph, root, cycle_filter = session.egraph, session.root, session.cycle_filter

            with_real, status_real = _solve(
                egraph, root, cycle_filter, node_cost, with_cycle_constraints=True, integer_topo=False
            )
            with_int, status_int = _solve(
                egraph, root, cycle_filter, node_cost, with_cycle_constraints=True, integer_topo=True
            )
            without, status_without = _solve(
                egraph, root, cycle_filter, node_cost, with_cycle_constraints=False
            )
            rows.append(
                [
                    model,
                    k,
                    egraph.num_enodes,
                    f"{with_real:.2f} ({status_real})",
                    f"{with_int:.2f} ({status_int})",
                    f"{without:.2f} ({status_without})",
                ]
            )
            data[model][k] = {
                "num_enodes": egraph.num_enodes,
                "with_cycle_real_seconds": with_real,
                "with_cycle_integer_seconds": with_int,
                "without_cycle_seconds": without,
            }
    table = format_table(
        ["model", "k_multi", "e-nodes", "ILP + cycle (real t)", "ILP + cycle (int t)", "ILP w/o cycle"],
        rows,
    )
    write_result("table5_ilp_cycles", table, data)
    return data


@pytest.mark.benchmark(group="table5")
def test_table5_cycle_constraint_ablation(benchmark):
    data = benchmark.pedantic(_generate_table5, rounds=1, iterations=1)
    # Shape: dropping the cycle constraints does not slow extraction down; on the
    # larger e-graphs it is markedly faster (the paper's 10x-1000x observation,
    # attenuated here by the smaller workloads).
    slower = 0
    for model, per_k in data.items():
        for k, entry in per_k.items():
            assert entry["without_cycle_seconds"] <= max(
                entry["with_cycle_real_seconds"], entry["with_cycle_integer_seconds"]
            ) * 1.5 + 0.5
            if entry["without_cycle_seconds"] < entry["with_cycle_real_seconds"]:
                slower += 1
    assert slower >= 1
