#!/usr/bin/env python
"""Regenerate the tiny checked-in ONNX test models under ``tests/data/onnx/``.

Two models, both a few KB, synthesized with the self-contained wire encoder
in :mod:`repro.ir.onnx_proto` (no ``onnx`` dependency):

* ``mlp_tiny.onnx`` -- an 8x16 residual MLP: Gemm (transB=1, explicit
  all-zero C), Relu, Transpose of a weight, MatMul, residual Add, Tanh.
* ``convnet_tiny.onnx`` -- a small CNN: Conv with auto_pad SAME_UPPER,
  Relu, VALID MaxPool, Conv with explicit SAME-equivalent pads, Concat,
  global AveragePool, Reshape whose target comes from a Constant node
  (with 0 / -1 entries), and a final MatMul classifier head.

Weights are deterministic (a fixed linear congruential generator), so the
files are reproducible byte-for-byte.  The CI leg with ``onnx`` installed
cross-checks both files with ``onnx.checker`` and ``onnx.shape_inference``.

Run from the repository root::

    PYTHONPATH=src python tools/make_test_onnx.py
"""

from __future__ import annotations

import struct
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ir.onnx_proto import (  # noqa: E402
    AttributeKind,
    AttrLite,
    DT_FLOAT,
    DT_INT64,
    GraphLite,
    ModelLite,
    NodeLite,
    TensorLite,
    ValueInfoLite,
    encode_model,
)

OUT_DIR = REPO_ROOT / "tests" / "data" / "onnx"


def _lcg_floats(count: int, seed: int) -> tuple:
    """Deterministic small weights in [-0.5, 0.5)."""
    state = seed
    values = []
    for _ in range(count):
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        values.append((state >> 40) / float(1 << 24) - 0.5)
    return tuple(values)


def _weight(name: str, dims: tuple, seed: int, raw: bool) -> TensorLite:
    count = 1
    for d in dims:
        count *= d
    values = _lcg_floats(count, seed)
    if raw:
        return TensorLite(name=name, dims=dims, data_type=DT_FLOAT,
                          raw_data=b"".join(struct.pack("<f", v) for v in values))
    return TensorLite(name=name, dims=dims, data_type=DT_FLOAT, float_data=values)


def _zeros(name: str, dims: tuple) -> TensorLite:
    count = 1
    for d in dims:
        count *= d
    return TensorLite(name=name, dims=dims, data_type=DT_FLOAT,
                      float_data=tuple(0.0 for _ in range(count)))


def _attr_i(name: str, value: int) -> AttrLite:
    return AttrLite(name=name, type=AttributeKind.INT, i=value)


def _attr_ints(name: str, values: tuple) -> AttrLite:
    return AttrLite(name=name, type=AttributeKind.INTS, ints=tuple(values))


def _attr_s(name: str, value: str) -> AttrLite:
    return AttrLite(name=name, type=AttributeKind.STRING, s=value.encode("utf-8"))


def _vi(name: str, dims: tuple) -> ValueInfoLite:
    return ValueInfoLite(name=name, elem_type=DT_FLOAT, dims=dims)


def build_mlp_tiny() -> ModelLite:
    """8x16 residual MLP: Gemm(transB, zero C) -> Relu -> MatMul(Transpose(W)) -> Add -> Tanh."""
    graph = GraphLite(
        name="mlp_tiny",
        inputs=[_vi("x", (8, 16))],
        outputs=[_vi("y", (8, 16))],
        initializers=[
            _weight("w1", (32, 16), seed=1, raw=True),     # Gemm B, transB=1
            _zeros("c1", (8, 32)),                          # all-zero C (skipped)
            _weight("w2t", (16, 32), seed=2, raw=False),    # transposed by a Transpose node
        ],
        nodes=[
            NodeLite(op_type="Gemm", name="gemm1", inputs=("x", "w1", "c1"),
                     outputs=("h1",),
                     attrs={"transB": _attr_i("transB", 1)}),
            NodeLite(op_type="Relu", name="relu1", inputs=("h1",), outputs=("h1r",)),
            NodeLite(op_type="Transpose", name="tw2", inputs=("w2t",), outputs=("w2",),
                     attrs={"perm": _attr_ints("perm", (1, 0))}),
            NodeLite(op_type="MatMul", name="mm2", inputs=("h1r", "w2"), outputs=("h2",)),
            NodeLite(op_type="Add", name="residual", inputs=("h2", "x"), outputs=("h3",)),
            NodeLite(op_type="Tanh", name="tanh1", inputs=("h3",), outputs=("y",)),
        ],
    )
    return ModelLite(ir_version=7, opset={"": 13}, graph=graph)


def build_convnet_tiny() -> ModelLite:
    """Small CNN: SAME conv, VALID pool, explicit-pads conv, Concat, global pool, Reshape, head."""
    graph = GraphLite(
        name="convnet_tiny",
        inputs=[_vi("x", (1, 8, 14, 14))],
        outputs=[_vi("y", (1, 10))],
        initializers=[
            _weight("k1", (16, 8, 3, 3), seed=3, raw=True),
            _weight("k2", (16, 16, 3, 3), seed=4, raw=False),
            _weight("head", (32, 10), seed=5, raw=True),
        ],
        nodes=[
            NodeLite(op_type="Conv", name="conv1", inputs=("x", "k1"), outputs=("c1",),
                     attrs={"auto_pad": _attr_s("auto_pad", "SAME_UPPER"),
                            "strides": _attr_ints("strides", (1, 1)),
                            "kernel_shape": _attr_ints("kernel_shape", (3, 3))}),
            NodeLite(op_type="Relu", name="relu1", inputs=("c1",), outputs=("c1r",)),
            NodeLite(op_type="MaxPool", name="pool1", inputs=("c1r",), outputs=("p1",),
                     attrs={"kernel_shape": _attr_ints("kernel_shape", (2, 2)),
                            "strides": _attr_ints("strides", (2, 2))}),
            NodeLite(op_type="Conv", name="conv2", inputs=("p1", "k2"), outputs=("c2",),
                     attrs={"pads": _attr_ints("pads", (1, 1, 1, 1)),
                            "strides": _attr_ints("strides", (1, 1)),
                            "kernel_shape": _attr_ints("kernel_shape", (3, 3))}),
            NodeLite(op_type="Concat", name="cat", inputs=("c2", "p1"), outputs=("cc",),
                     attrs={"axis": _attr_i("axis", 1)}),
            NodeLite(op_type="AveragePool", name="gap", inputs=("cc",), outputs=("g",),
                     attrs={"kernel_shape": _attr_ints("kernel_shape", (7, 7)),
                            "strides": _attr_ints("strides", (1, 1))}),
            # Reshape target from a Constant node, exercising 0 (copy) and -1 (infer).
            NodeLite(op_type="Constant", name="flat_shape", inputs=(), outputs=("shape",),
                     attrs={"value": AttrLite(
                         name="value", type=AttributeKind.TENSOR,
                         t=TensorLite(name="shape_t", dims=(2,), data_type=DT_INT64,
                                      int64_data=(0, -1)))}),
            NodeLite(op_type="Reshape", name="flatten", inputs=("g", "shape"),
                     outputs=("f",)),
            NodeLite(op_type="MatMul", name="clf", inputs=("f", "head"), outputs=("y",)),
        ],
    )
    return ModelLite(ir_version=7, opset={"": 13}, graph=graph)


BUILDERS = {
    "mlp_tiny": build_mlp_tiny,
    "convnet_tiny": build_convnet_tiny,
}


def main() -> int:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    for name, build in BUILDERS.items():
        data = encode_model(build())
        path = OUT_DIR / f"{name}.onnx"
        path.write_bytes(data)
        print(f"wrote {path} ({len(data)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
