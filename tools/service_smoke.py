#!/usr/bin/env python
"""CI smoke test for the optimization service daemon.

Starts ``python -m repro serve`` as a real subprocess on an ephemeral port,
submits the same model twice through the line-JSON protocol, asserts the
second response is a cache hit with a byte-identical graph document, checks
the status counters, and shuts the daemon down cleanly.  Exit code 0 means
the whole daemon lifecycle works outside the test harness.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.models import build_model  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

READY_LINE = re.compile(r"repro service listening on (\S+):(\d+)")


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly annotation
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    try:
        # The serve command prints its listening address once bound.
        deadline = time.monotonic() + 60.0
        host, port = None, None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = READY_LINE.search(line)
            if match:
                host, port = match.group(1), int(match.group(2))
                break
        if port is None:
            fail("daemon never printed its listening address")
        print(f"daemon up on {host}:{port}")

        client = ServiceClient(host=host, port=port, timeout=120.0)
        if not client.ping():
            fail("ping failed")

        graph = build_model("nasrnn", "tiny")
        first = client.optimize(graph=graph)
        if first["cache"] != "miss":
            fail(f"first submission should miss, got {first['cache']!r}")
        second = client.optimize(graph=graph)
        if second["cache"] != "hit":
            fail(f"second submission should hit, got {second['cache']!r}")
        if second["graph"] != first["graph"]:
            fail("cache hit returned a different graph document")
        if second["fingerprint"] != first["fingerprint"]:
            fail("fingerprint changed between identical submissions")
        print(
            f"optimize ok: cost {first['original_cost_ms']:.3f} -> "
            f"{first['optimized_cost_ms']:.3f} ms, second submission served from cache"
        )

        status = client.status()
        if status["cache"]["hits"] != 1 or status["cache"]["misses"] != 1:
            fail(f"unexpected cache counters: {status['cache']}")
        if status["requests"].get("optimize") != 2:
            fail(f"unexpected request counters: {status['requests']}")
        print(f"status ok: {status['cache']}")

        client.shutdown()
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit after shutdown request")
        if proc.returncode != 0:
            fail(f"daemon exited with code {proc.returncode}")
        print("clean shutdown; smoke test passed")
        return 0
    except ServiceError as exc:
        fail(f"service error: {exc}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return 1


if __name__ == "__main__":
    sys.exit(main())
