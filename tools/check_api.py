#!/usr/bin/env python
"""Fail when the public API surface drifts from its sources of truth.

Four checks:

1. every name in ``repro.__all__`` actually imports (no stale exports),
2. every CLI ``choices=`` list for a strategy knob equals the corresponding
   component registry's names (no hand-maintained tuples),
3. the legacy ``*_CHOICES`` snapshot tuples in ``repro.core.config`` match
   the registries they snapshot,
4. the extraction-at-scale lockstep: ``"portfolio"`` is registered in
   ``EXTRACTORS`` and the CLI defaults for ``--extraction-deadline`` /
   ``--no-extraction-prune`` / ``--no-ilp-warm-start`` equal the
   ``TensatConfig`` field defaults (the config dataclass is the single
   source of truth for engine-knob defaults),
5. the operator-spec registry lockstep: every ``OpKind`` has a complete
   ``OPS`` spec, every registered symbol round-trips through
   ``resolve_symbol``, ``serialize.valid_ops()`` mirrors ``OPS.names()``,
   the ONNX importer's handler table equals the union of every spec's
   ``onnx_ops`` plus its frontend-only ops, and the CLI exposes the
   ``import`` subcommand with ``--onnx`` on ``optimize`` / ``submit``.

Run from anywhere::

    python tools/check_api.py

Exit status 0 when the surface is consistent, 1 otherwise (problems listed
on stderr).  CI runs this in the ``docs`` job next to the link check.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.cli import build_parser  # noqa: E402
from repro.core import config as config_module  # noqa: E402
from repro.core.registry import (  # noqa: E402
    CONDITION_CACHES,
    CYCLE_FILTERS,
    EXTRACTORS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    SCHEDULERS,
    SEARCH_EXECUTORS,
    SEARCH_MODES,
    SHAPE_ANALYSES,
)
from repro.models import MODEL_NAMES  # noqa: E402

#: CLI argument dest -> the registry its choices must equal.
CLI_REGISTRY_KNOBS = {
    "matcher": MATCHERS,
    "search_mode": SEARCH_MODES,
    "search_executor": SEARCH_EXECUTORS,
    "scheduler": SCHEDULERS,
    "multipattern_join": MULTIPATTERN_JOINS,
    "condition_cache": CONDITION_CACHES,
    "shape_analysis": SHAPE_ANALYSES,
    "extraction": EXTRACTORS,
    "cycle_filter": CYCLE_FILTERS,
}

#: config-module snapshot tuple -> the registry it snapshots.
CONFIG_SNAPSHOTS = {
    "MATCHER_CHOICES": MATCHERS,
    "SCHEDULER_CHOICES": SCHEDULERS,
    "SEARCH_MODE_CHOICES": SEARCH_MODES,
    "SEARCH_EXECUTOR_CHOICES": SEARCH_EXECUTORS,
    "MULTIPATTERN_JOIN_CHOICES": MULTIPATTERN_JOINS,
    "CONDITION_CACHE_CHOICES": CONDITION_CACHES,
    "CYCLE_FILTER_CHOICES": CYCLE_FILTERS,
    "EXTRACTION_CHOICES": EXTRACTORS,
    "SHAPE_ANALYSIS_CHOICES": SHAPE_ANALYSES,
}


def check_exports() -> list:
    """Every ``repro.__all__`` name resolves to a real attribute."""
    problems = []
    for name in repro.__all__:
        if not hasattr(repro, name):
            problems.append(f"repro.__all__ exports {name!r} but repro has no such attribute")
    return problems


def _subcommand_parsers(parser):
    for action in parser._actions:
        choices = getattr(action, "choices", None)
        if isinstance(choices, dict):
            return choices
    return {}


def check_cli_choices() -> list:
    """Every strategy knob's CLI ``choices=`` equals its registry's names."""
    problems = []
    subcommands = _subcommand_parsers(build_parser())
    if not subcommands:
        return ["CLI parser has no subcommands"]
    seen = set()
    for command, subparser in subcommands.items():
        for action in subparser._actions:
            registry = CLI_REGISTRY_KNOBS.get(action.dest)
            if registry is None:
                continue
            seen.add(action.dest)
            choices = tuple(action.choices or ())
            if choices != registry.names():
                problems.append(
                    f"CLI '{command} --{action.dest.replace('_', '-')}' choices {choices} "
                    f"!= {registry.kind} registry {registry.names()}"
                )
        model_action = next((a for a in subparser._actions if a.dest == "model"), None)
        if model_action is not None and tuple(model_action.choices or ()) != tuple(MODEL_NAMES):
            problems.append(f"CLI '{command} --model' choices drifted from MODEL_NAMES")
    missing = set(CLI_REGISTRY_KNOBS) - seen
    if missing:
        problems.append(f"no CLI flag exposes the registry-backed knob(s): {sorted(missing)}")
    return problems


def check_config_snapshots() -> list:
    """The legacy ``*_CHOICES`` tuples still mirror the registries."""
    problems = []
    for attr, registry in CONFIG_SNAPSHOTS.items():
        snapshot = getattr(config_module, attr, None)
        if snapshot != registry.names():
            problems.append(
                f"repro.core.config.{attr} == {snapshot!r} != {registry.kind} "
                f"registry {registry.names()!r}"
            )
    return problems


def check_extraction_lockstep() -> list:
    """The extraction-at-scale knobs stay consistent across all surfaces."""
    problems = []
    if "portfolio" not in EXTRACTORS:
        problems.append("EXTRACTORS registry is missing the 'portfolio' entry")
    defaults = config_module.TensatConfig()
    subcommands = _subcommand_parsers(build_parser())
    optimize = subcommands.get("optimize")
    if optimize is None:
        return problems + ["CLI has no 'optimize' subcommand"]
    cli_defaults = {a.dest: a.default for a in optimize._actions}
    for dest, config_value in (
        ("extraction_deadline", defaults.extraction_deadline),
        ("extraction_prune", defaults.extraction_prune),
        ("ilp_warm_start", defaults.ilp_warm_start),
    ):
        if dest not in cli_defaults:
            problems.append(f"CLI 'optimize' has no flag wired to config.{dest}")
        elif cli_defaults[dest] != config_value:
            problems.append(
                f"CLI 'optimize' default for {dest} is {cli_defaults[dest]!r} "
                f"!= TensatConfig().{dest} == {config_value!r}"
            )
    return problems


def check_service_lockstep() -> list:
    """The ``serve`` CLI defaults stay in lockstep with ServiceConfig."""
    from dataclasses import fields as dataclass_fields

    from repro.service import ServiceConfig

    problems = []
    defaults = ServiceConfig()
    subcommands = _subcommand_parsers(build_parser())
    serve = subcommands.get("serve")
    if serve is None:
        return ["CLI has no 'serve' subcommand"]
    cli_defaults = {a.dest: a.default for a in serve._actions}
    for field in dataclass_fields(ServiceConfig):
        if field.name not in cli_defaults:
            problems.append(f"CLI 'serve' has no flag wired to ServiceConfig.{field.name}")
        elif cli_defaults[field.name] != getattr(defaults, field.name):
            problems.append(
                f"CLI 'serve' default for {field.name} is {cli_defaults[field.name]!r} "
                f"!= ServiceConfig().{field.name} == {getattr(defaults, field.name)!r}"
            )
    if "submit" not in subcommands:
        problems.append("CLI has no 'submit' subcommand")
    return problems


def check_ops_lockstep() -> list:
    """The operator-spec registry stays consistent across every consumer."""
    from repro.ir import serialize
    from repro.ir.onnx_import import FRONTEND_OPS, _Importer
    from repro.ir.ops import OpKind
    from repro.ir.opspec import OPS

    problems = []
    for kind in OpKind:
        try:
            spec = OPS.spec(kind)
        except ValueError:
            problems.append(f"OpKind.{kind.name} has no registered OpSpec")
            continue
        for field in ("infer", "flops", "op_bytes"):
            if not callable(getattr(spec, field)):
                problems.append(f"OPS spec {spec.name!r} has non-callable {field}")
    for symbol in OPS.symbols():
        spec = OPS.for_symbol(symbol)
        try:
            kind, _ = OPS.resolve_symbol(symbol, strict=True)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(f"registered symbol {symbol!r} fails strict resolution: {exc}")
            continue
        if spec is None or kind != spec.kind:
            problems.append(f"registered symbol {symbol!r} resolves to {kind!r}, not its spec")
    if tuple(serialize.valid_ops()) != OPS.names():
        problems.append(
            f"serialize.valid_ops() {tuple(serialize.valid_ops())!r} != OPS.names() {OPS.names()!r}"
        )

    # ONNX importer coverage is registry-derived: the handler table must be
    # exactly the union of every spec's onnx_ops plus the frontend-only ops.
    declared = {op for spec in OPS for op in spec.onnx_ops} | set(FRONTEND_OPS)
    handlers = set(_Importer.HANDLERS)
    if declared != handlers:
        problems.append(
            f"ONNX handler table {sorted(handlers)} != registry-declared ops {sorted(declared)}"
        )

    subcommands = _subcommand_parsers(build_parser())
    if "import" not in subcommands:
        problems.append("CLI has no 'import' subcommand")
    for command in ("optimize", "submit", "import"):
        subparser = subcommands.get(command)
        if subparser is None:
            continue
        dests = {a.dest for a in subparser._actions}
        if "onnx" not in dests:
            problems.append(f"CLI '{command}' has no --onnx flag")
    return problems


def main() -> int:
    problems = (
        check_exports()
        + check_cli_choices()
        + check_config_snapshots()
        + check_extraction_lockstep()
        + check_service_lockstep()
        + check_ops_lockstep()
    )
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"\n{len(problems)} API-surface problem(s)", file=sys.stderr)
        return 1
    n_knobs = len(CLI_REGISTRY_KNOBS)
    print(
        f"ok: {len(repro.__all__)} exports import, {n_knobs} CLI strategy knobs "
        "match their registries, config snapshots consistent, extraction "
        "deadline/prune/warm-start defaults in lockstep, serve flags match "
        "ServiceConfig, OPS registry / serializer / ONNX importer / CLI in lockstep"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
