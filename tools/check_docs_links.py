#!/usr/bin/env python
"""Fail on broken relative links in the repo's markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for markdown links and verifies that
every *relative* target resolves to an existing file or directory (external
``http(s)``/``mailto`` links and pure in-page ``#anchors`` are skipped;
a ``path#fragment`` target is checked for the path part only).

Run from anywhere::

    python tools/check_docs_links.py

Exit status 0 when every link resolves, 1 otherwise (broken links listed on
stderr).  CI runs this in the ``docs`` job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Images ![alt](target) match too
#: via the optional leading "!".  Targets with spaces or "(" are not used in
#: this repo's docs, so the simple "no closing paren" body is sufficient.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes (and scheme-like prefixes) that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(doc: Path) -> list[str]:
    """Return one problem description per broken link in ``doc``."""
    problems: list[str] = []
    text = doc.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            try:
                resolved.relative_to(REPO_ROOT)
            except ValueError:
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}:{lineno}: link escapes the repo: {target}"
                )
                continue
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}:{lineno}: broken link: {target}"
                )
    return problems


def main() -> int:
    docs = iter_doc_files()
    if not docs:
        print("no documentation files found", file=sys.stderr)
        return 1
    problems: list[str] = []
    n_links = 0
    for doc in docs:
        text = doc.read_text(encoding="utf-8")
        n_links += sum(1 for _ in _LINK_RE.finditer(text))
        problems.extend(check_file(doc))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"\n{len(problems)} broken link(s) across {len(docs)} file(s)", file=sys.stderr)
        return 1
    print(f"ok: {n_links} links across {len(docs)} markdown files all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
