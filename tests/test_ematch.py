"""Tests for e-matching."""

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import count_matches, search_eclass, search_pattern
from repro.egraph.language import ENode
from repro.egraph.pattern import Pattern


def build_simple_egraph():
    eg = EGraph()
    root = eg.add_term("(ewadd (matmul 0 x w1) (matmul 0 x w2))")
    return eg, root


class TestSearchPattern:
    def test_single_match(self):
        eg, root = build_simple_egraph()
        matches = search_pattern(eg, Pattern.parse("(ewadd ?a ?b)"))
        assert len(matches) == 1
        assert matches[0].eclass == eg.find(root)

    def test_multiple_matches(self):
        eg, _ = build_simple_egraph()
        matches = search_pattern(eg, Pattern.parse("(matmul 0 ?a ?b)"))
        assert len(matches) == 2

    def test_shared_variable_constrains(self):
        eg, root = build_simple_egraph()
        # Both matmuls share x, so this matches.
        matches = search_pattern(eg, Pattern.parse("(ewadd (matmul 0 ?a ?b) (matmul 0 ?a ?c))"))
        assert len(matches) == 1
        subst = matches[0].subst
        assert eg.analysis_data(subst["a"]) is None  # trivially valid access

    def test_shared_variable_mismatch_yields_no_match(self):
        eg = EGraph()
        eg.add_term("(ewadd (matmul 0 x w1) (matmul 0 y w2))")
        matches = search_pattern(eg, Pattern.parse("(ewadd (matmul 0 ?a ?b) (matmul 0 ?a ?c))"))
        assert matches == []

    def test_no_match_for_absent_operator(self):
        eg, _ = build_simple_egraph()
        assert search_pattern(eg, Pattern.parse("(conv ?a ?b ?c ?d ?e ?f)")) == []

    def test_match_after_union_sees_both_alternatives(self):
        eg = EGraph()
        mul = eg.add_term("(* a 2)")
        shift = eg.add_term("(<< a 1)")
        eg.union(mul, shift)
        eg.rebuild()
        assert count_matches(eg, Pattern.parse("(* ?x 2)")) == 1
        assert count_matches(eg, Pattern.parse("(<< ?x 1)")) == 1

    def test_variable_pattern_matches_every_class(self):
        eg, _ = build_simple_egraph()
        matches = search_pattern(eg, Pattern.parse("?x"))
        assert len(matches) == eg.num_eclasses

    def test_ground_pattern(self):
        eg, _ = build_simple_egraph()
        matches = search_pattern(eg, Pattern.parse("(matmul 0 x w1)"))
        assert len(matches) == 1

    def test_substitutions_are_canonical(self):
        eg, _ = build_simple_egraph()
        extra = eg.add(ENode("z"))
        x = eg.lookup(ENode("x"))
        eg.union(x, extra)
        eg.rebuild()
        matches = search_pattern(eg, Pattern.parse("(matmul 0 ?a ?b)"))
        for m in matches:
            for cls in m.subst.values():
                assert eg.find(cls) == cls


class TestSearchEclass:
    def test_search_specific_class(self):
        eg, root = build_simple_egraph()
        assert search_eclass(eg, Pattern.parse("(ewadd ?a ?b)"), root)
        matmul_class = eg.lookup(ENode("matmul", tuple()))  # not present: arity mismatch
        assert matmul_class is None

    def test_deduplicates_identical_substitutions(self):
        eg = EGraph()
        root = eg.add_term("(ewadd a a)")
        matches = search_eclass(eg, Pattern.parse("(ewadd ?x ?x)"), root)
        assert len(matches) == 1
