"""Tests for ILP extraction (formulation, backends, cycle constraints, filter list)."""

import numpy as np
import pytest

from repro.egraph.cycles import EfficientCycleFilter, FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.problem import build_extraction_problem
from repro.egraph.language import ENode
from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import Runner, RunnerLimits


def cost_table(table, default=1.0):
    return lambda enode, egraph: table.get(enode.op, default)


def shared_plan_egraph():
    """E-graph where the optimal plan shares one expensive node between two outputs."""
    eg = EGraph()
    shared = eg.add_term("(shared x)")
    p0 = eg.add(ENode("p0", (shared,)))
    p1 = eg.add(ENode("p1", (shared,)))
    a0 = eg.add_term("(alt0 x)")
    a1 = eg.add_term("(alt1 x)")
    eg.union(p0, a0)
    eg.union(p1, a1)
    eg.rebuild()
    root = eg.add(ENode("noop", (eg.find(p0), eg.find(p1))))
    costs = {"shared": 10.0, "p0": 0.0, "p1": 0.0, "alt0": 7.0, "alt1": 7.0, "noop": 0.0, "x": 0.0}
    return eg, root, costs


class TestFormulation:
    def test_variable_and_constraint_counts(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        problem = build_extraction_problem(eg, root, cost_table({}))
        # 4 e-nodes, no topo variables.
        assert problem.num_variables == 4
        assert problem.a_eq.shape == (1, 4)

    def test_cycle_constraints_add_topo_variables(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        problem = build_extraction_problem(eg, root, cost_table({}), with_cycle_constraints=True)
        assert problem.num_variables == 4 + 4  # one t per e-class
        assert problem.integrality[-1] == 0  # real topo variables by default

    def test_integer_topo_variables(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        problem = build_extraction_problem(
            eg, root, cost_table({}), with_cycle_constraints=True, integer_topo=True
        )
        assert problem.integrality[-1] == 1
        assert problem.upper[-1] == pytest.approx(problem.variables.num_classes - 1)

    def test_unreachable_classes_are_pruned(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        eg.add_term("(unrelated b)")
        problem = build_extraction_problem(eg, root, cost_table({}))
        assert problem.variables.num_classes == 2  # only f and a


class TestILPExtraction:
    def test_matches_greedy_on_tree(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        nc = cost_table({"*": 5.0, "<<": 1.0}, default=0.0)
        greedy = GreedyExtractor(nc).extract(eg, root)
        ilp = ILPExtractor(nc).extract(eg, root)
        assert str(ilp.expr) == str(greedy.expr) == "(<< a 1)"

    def test_ilp_beats_greedy_with_sharing(self):
        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        greedy = GreedyExtractor(nc).extract(eg, root)
        ilp = ILPExtractor(nc).extract(eg, root)
        assert greedy.cost == pytest.approx(14.0)
        assert ilp.cost == pytest.approx(10.0)
        assert ilp.cost < greedy.cost

    def test_bnb_backend_agrees_with_scipy(self):
        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        scipy_res = ILPExtractor(nc, backend="scipy").extract(eg, root)
        bnb_res = ILPExtractor(nc, backend="bnb").extract(eg, root)
        assert bnb_res.cost == pytest.approx(scipy_res.cost)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ILPExtractor(cost_table({}), backend="cplex")

    def test_filter_list_constraints(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        flist = FilterList()
        a = eg.add_term("a")
        one = eg.add_term("1")
        flist.add(eg, ENode("<<", (eg.find(a), eg.find(one))))
        nc = cost_table({"*": 5.0, "<<": 1.0}, default=0.0)
        result = ILPExtractor(nc, filter_list=flist).extract(eg, root)
        assert str(result.expr) == "(* a 2)"

    def test_solve_info_recorded(self):
        eg, root, costs = shared_plan_egraph()
        extractor = ILPExtractor(cost_table(costs))
        extractor.extract(eg, root)
        info = extractor.last_solve_info
        assert info is not None
        assert info.status == "optimal"
        assert info.num_variables > 0


class TestCycleHandling:
    def build_cyclic_egraph(self):
        """Create an e-graph with an e-class-level cycle via the merge rule (paper Figure 3)."""
        eg = EGraph()
        root = eg.add_term("(matmul 0 x (matmul 0 x y))")
        rule = MultiPatternRewrite.parse(
            "merge",
            sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
            targets=[
                "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            ],
        )
        for combo in rule.search(eg):
            rule.apply_match(eg, combo)
        eg.rebuild()
        return eg, root

    def test_ilp_with_cycle_constraints_returns_acyclic_graph(self):
        eg, root = self.build_cyclic_egraph()
        nc = cost_table({}, default=1.0)
        result = ILPExtractor(nc, with_cycle_constraints=True).extract(eg, root)
        # build_recexpr would raise on a cyclic selection, so reaching here is the point.
        assert result.expr.subterm_size() >= 3

    def test_ilp_with_integer_topo_matches_real_topo(self):
        eg, root = self.build_cyclic_egraph()
        nc = cost_table({}, default=1.0)
        real_res = ILPExtractor(nc, with_cycle_constraints=True, integer_topo=False).extract(eg, root)
        int_res = ILPExtractor(nc, with_cycle_constraints=True, integer_topo=True).extract(eg, root)
        assert real_res.cost == pytest.approx(int_res.cost)

    def test_without_cycle_constraints_on_filtered_egraph(self):
        eg = EGraph()
        root = eg.add_term("(matmul 0 x (matmul 0 x y))")
        rule = MultiPatternRewrite.parse(
            "merge",
            sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
            targets=[
                "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            ],
        )
        cycle_filter = EfficientCycleFilter()
        Runner(
            eg,
            multi_rewrites=[rule],
            limits=RunnerLimits(iter_limit=2, k_multi=2),
            cycle_filter=cycle_filter,
        ).run()
        nc = cost_table({}, default=1.0)
        result = ILPExtractor(
            nc, with_cycle_constraints=False, filter_list=cycle_filter.filter_list
        ).extract(eg, root)
        assert result.status in ("optimal", "feasible")


class TestProblemReduction:
    def make_dominated_egraph(self):
        """One e-class with two candidates over the same child: (f a) and the
        strictly more expensive (g a) -- g is dominated."""
        eg = EGraph()
        root = eg.add_term("(f a)")
        Rewrite.parse("worse", "(f ?x)", "(g ?x)").run(eg)
        eg.rebuild()
        nc = cost_table({"f": 1.0, "g": 2.0}, default=0.0)
        return eg, root, nc

    def test_dominated_node_is_pruned(self):
        eg, root, nc = self.make_dominated_egraph()
        raw = build_extraction_problem(eg, root, nc)
        reduced = build_extraction_problem(eg, root, nc, prune_dominated=True)
        assert raw.reduction is None
        assert reduced.reduction is not None
        assert reduced.reduction.dominated_pruned >= 1
        assert reduced.num_variables < raw.num_variables
        assert reduced.reduction.variable_ratio > 1.0
        ops = {node.op for _, node in reduced.variables.nodes}
        assert "g" not in ops  # the dominated candidate is gone

    def test_equal_cost_duplicates_collapse_deterministically(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        Rewrite.parse("twin", "(f ?x)", "(g ?x)").run(eg)
        eg.rebuild()
        nc = cost_table({"f": 1.0, "g": 1.0}, default=0.0)
        reduced = build_extraction_problem(eg, root, nc, prune_dominated=True)
        # Exact tie: earlier-registered candidate wins, exactly one survives.
        class_sizes = {}
        for cls_pos, _ in reduced.variables.nodes:
            class_sizes[cls_pos] = class_sizes.get(cls_pos, 0) + 1
        assert max(class_sizes.values()) == 1

    def test_singleton_chain_is_fixed(self):
        eg = EGraph()
        root = eg.add_term("(f (g (h a)))")  # pure chain: every class a singleton
        nc = cost_table({}, default=1.0)
        problem = build_extraction_problem(
            eg, root, nc, prune_dominated=True, collapse_singletons=True
        )
        assert problem.reduction.singletons_fixed == 4
        assert (problem.lower[: problem.variables.num_nodes] == 1.0).all()

    def test_pruning_preserves_the_optimum(self):
        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        pruned = ILPExtractor(nc, reduce_problem=True, warm_start=False).extract(eg, root)
        raw = ILPExtractor(nc, reduce_problem=False, warm_start=False).extract(eg, root)
        assert pruned.cost == pytest.approx(raw.cost) == pytest.approx(10.0)
        assert pruned.reduction is not None

    def test_reduction_stats_reach_solve_info(self):
        eg, root, nc = self.make_dominated_egraph()
        extractor = ILPExtractor(nc, reduce_problem=True)
        extractor.extract(eg, root)
        assert extractor.last_solve_info.prune_ratio > 1.0


class TestWarmStart:
    def test_warm_start_vector_is_feasible_and_greedy_cost(self):
        from repro.egraph.extraction.bnb import incumbent_is_feasible
        from repro.egraph.extraction.problem import warm_start_solution

        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        problem = build_extraction_problem(
            eg, root, nc, prune_dominated=True, collapse_singletons=True
        )
        x0, obj = warm_start_solution(problem)
        assert incumbent_is_feasible(
            x0, problem.a_ub, problem.b_ub, problem.a_eq, problem.b_eq,
            problem.lower, problem.upper,
        )
        greedy = GreedyExtractor(nc).extract(eg, root)
        assert obj == pytest.approx(greedy.cost)

    def test_warm_and_cold_solves_agree(self):
        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        for backend in ("scipy", "bnb"):
            warm = ILPExtractor(nc, backend=backend, warm_start=True).extract(eg, root)
            cold = ILPExtractor(nc, backend=backend, warm_start=False).extract(eg, root)
            assert warm.cost == pytest.approx(cold.cost) == pytest.approx(10.0)

    def test_warm_start_info_recorded(self):
        eg, root, costs = shared_plan_egraph()
        extractor = ILPExtractor(cost_table(costs), warm_start=True)
        extractor.extract(eg, root)
        info = extractor.last_solve_info
        assert info.warm_started
        assert info.warm_start_objective == pytest.approx(14.0)  # the greedy cost

    def test_bnb_incumbent_accepts_only_feasible_vectors(self):
        from repro.egraph.extraction.bnb import solve_branch_and_bound

        eg, root, costs = shared_plan_egraph()
        problem = build_extraction_problem(eg, root, cost_table(costs))
        bogus = np.full(problem.num_variables, 0.5)  # violates the eq row
        res = solve_branch_and_bound(
            problem.c, problem.a_ub, problem.b_ub, problem.a_eq, problem.b_eq,
            problem.lower, problem.upper, problem.integrality,
            incumbent=(bogus, 0.0),
        )
        # The infeasible incumbent is ignored, not returned.
        assert res.status == "optimal"
        assert res.objective == pytest.approx(10.0)

    def test_stage_timings_on_result(self):
        eg, root, costs = shared_plan_egraph()
        result = ILPExtractor(cost_table(costs)).extract(eg, root)
        assert "prune" in result.stages
        assert "greedy" in result.stages
        assert "ilp" in result.stages
        assert result.stage_costs["ilp"] == pytest.approx(10.0)
