"""Tests for ILP extraction (formulation, backends, cycle constraints, filter list)."""

import numpy as np
import pytest

from repro.egraph.cycles import EfficientCycleFilter, FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.problem import build_extraction_problem
from repro.egraph.language import ENode
from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import Runner, RunnerLimits


def cost_table(table, default=1.0):
    return lambda enode, egraph: table.get(enode.op, default)


def shared_plan_egraph():
    """E-graph where the optimal plan shares one expensive node between two outputs."""
    eg = EGraph()
    shared = eg.add_term("(shared x)")
    p0 = eg.add(ENode("p0", (shared,)))
    p1 = eg.add(ENode("p1", (shared,)))
    a0 = eg.add_term("(alt0 x)")
    a1 = eg.add_term("(alt1 x)")
    eg.union(p0, a0)
    eg.union(p1, a1)
    eg.rebuild()
    root = eg.add(ENode("noop", (eg.find(p0), eg.find(p1))))
    costs = {"shared": 10.0, "p0": 0.0, "p1": 0.0, "alt0": 7.0, "alt1": 7.0, "noop": 0.0, "x": 0.0}
    return eg, root, costs


class TestFormulation:
    def test_variable_and_constraint_counts(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        problem = build_extraction_problem(eg, root, cost_table({}))
        # 4 e-nodes, no topo variables.
        assert problem.num_variables == 4
        assert problem.a_eq.shape == (1, 4)

    def test_cycle_constraints_add_topo_variables(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        problem = build_extraction_problem(eg, root, cost_table({}), with_cycle_constraints=True)
        assert problem.num_variables == 4 + 4  # one t per e-class
        assert problem.integrality[-1] == 0  # real topo variables by default

    def test_integer_topo_variables(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        problem = build_extraction_problem(
            eg, root, cost_table({}), with_cycle_constraints=True, integer_topo=True
        )
        assert problem.integrality[-1] == 1
        assert problem.upper[-1] == pytest.approx(problem.variables.num_classes - 1)

    def test_unreachable_classes_are_pruned(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        eg.add_term("(unrelated b)")
        problem = build_extraction_problem(eg, root, cost_table({}))
        assert problem.variables.num_classes == 2  # only f and a


class TestILPExtraction:
    def test_matches_greedy_on_tree(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        nc = cost_table({"*": 5.0, "<<": 1.0}, default=0.0)
        greedy = GreedyExtractor(nc).extract(eg, root)
        ilp = ILPExtractor(nc).extract(eg, root)
        assert str(ilp.expr) == str(greedy.expr) == "(<< a 1)"

    def test_ilp_beats_greedy_with_sharing(self):
        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        greedy = GreedyExtractor(nc).extract(eg, root)
        ilp = ILPExtractor(nc).extract(eg, root)
        assert greedy.cost == pytest.approx(14.0)
        assert ilp.cost == pytest.approx(10.0)
        assert ilp.cost < greedy.cost

    def test_bnb_backend_agrees_with_scipy(self):
        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        scipy_res = ILPExtractor(nc, backend="scipy").extract(eg, root)
        bnb_res = ILPExtractor(nc, backend="bnb").extract(eg, root)
        assert bnb_res.cost == pytest.approx(scipy_res.cost)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ILPExtractor(cost_table({}), backend="cplex")

    def test_filter_list_constraints(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        flist = FilterList()
        a = eg.add_term("a")
        one = eg.add_term("1")
        flist.add(eg, ENode("<<", (eg.find(a), eg.find(one))))
        nc = cost_table({"*": 5.0, "<<": 1.0}, default=0.0)
        result = ILPExtractor(nc, filter_list=flist).extract(eg, root)
        assert str(result.expr) == "(* a 2)"

    def test_solve_info_recorded(self):
        eg, root, costs = shared_plan_egraph()
        extractor = ILPExtractor(cost_table(costs))
        extractor.extract(eg, root)
        info = extractor.last_solve_info
        assert info is not None
        assert info.status == "optimal"
        assert info.num_variables > 0


class TestCycleHandling:
    def build_cyclic_egraph(self):
        """Create an e-graph with an e-class-level cycle via the merge rule (paper Figure 3)."""
        eg = EGraph()
        root = eg.add_term("(matmul 0 x (matmul 0 x y))")
        rule = MultiPatternRewrite.parse(
            "merge",
            sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
            targets=[
                "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            ],
        )
        for combo in rule.search(eg):
            rule.apply_match(eg, combo)
        eg.rebuild()
        return eg, root

    def test_ilp_with_cycle_constraints_returns_acyclic_graph(self):
        eg, root = self.build_cyclic_egraph()
        nc = cost_table({}, default=1.0)
        result = ILPExtractor(nc, with_cycle_constraints=True).extract(eg, root)
        # build_recexpr would raise on a cyclic selection, so reaching here is the point.
        assert result.expr.subterm_size() >= 3

    def test_ilp_with_integer_topo_matches_real_topo(self):
        eg, root = self.build_cyclic_egraph()
        nc = cost_table({}, default=1.0)
        real_res = ILPExtractor(nc, with_cycle_constraints=True, integer_topo=False).extract(eg, root)
        int_res = ILPExtractor(nc, with_cycle_constraints=True, integer_topo=True).extract(eg, root)
        assert real_res.cost == pytest.approx(int_res.cost)

    def test_without_cycle_constraints_on_filtered_egraph(self):
        eg = EGraph()
        root = eg.add_term("(matmul 0 x (matmul 0 x y))")
        rule = MultiPatternRewrite.parse(
            "merge",
            sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
            targets=[
                "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            ],
        )
        cycle_filter = EfficientCycleFilter()
        Runner(
            eg,
            multi_rewrites=[rule],
            limits=RunnerLimits(iter_limit=2, k_multi=2),
            cycle_filter=cycle_filter,
        ).run()
        nc = cost_table({}, default=1.0)
        result = ILPExtractor(
            nc, with_cycle_constraints=False, filter_list=cycle_filter.filter_list
        ).extract(eg, root)
        assert result.status in ("optimal", "feasible")
