"""Regression tests for ``TensatOptimizer._materialize``'s fallback chain.

An extraction can select a term that fails shape inference when rebuilt into
a concrete graph (mixed split locations in one e-class; see the method's
docstring).  The safe response is staged: reject the candidate and re-extract
greedily, and if that also fails, keep the original graph.  These tests drive
each stage directly.
"""

from __future__ import annotations

import pytest

import repro.core.optimizer as optimizer_module
from repro.core.config import TensatConfig
from repro.core.optimizer import TensatOptimizer
from repro.egraph.extraction.base import ExtractionResult
from repro.egraph.language import RecExpr
from repro.ir.graph import GraphBuilder

CONFIG = TensatConfig.fast()

#: A term whose matmul inner dimensions disagree: converting it back to a
#: TensorGraph raises ShapeError.
BAD_EXPR = RecExpr.parse('(matmul 0 (input "x@8 64") (weight "w@7 5"))')


@pytest.fixture
def explored(shared_matmul_graph):
    optimizer = TensatOptimizer(config=CONFIG)
    egraph, root, cycle_filter, _report = optimizer.explore(shared_matmul_graph)
    return optimizer, shared_matmul_graph, egraph, root, cycle_filter


def _bad_extraction() -> ExtractionResult:
    return ExtractionResult(expr=BAD_EXPR, cost=1.0, status="ilp_optimal")


def test_rejected_ilp_falls_back_to_greedy(explored):
    optimizer, graph, egraph, root, cycle_filter = explored
    optimized, extraction = optimizer._materialize(graph, egraph, root, cycle_filter, _bad_extraction())
    # The greedy re-extraction succeeds and its provenance is recorded.
    assert extraction.status == "ilp_optimal_rejected_greedy_fallback"
    assert optimized is not graph
    assert optimized.name == f"{graph.name}-optimized"


def test_rejected_greedy_keeps_original(explored, monkeypatch):
    optimizer, graph, egraph, root, cycle_filter = explored

    class AlwaysBadGreedy:
        def __init__(self, *args, **kwargs):
            pass

        def extract(self, egraph, root):
            return _bad_extraction()

    monkeypatch.setattr(optimizer_module, "GreedyExtractor", AlwaysBadGreedy)
    extraction = _bad_extraction()
    optimized, returned = optimizer._materialize(graph, egraph, root, cycle_filter, extraction)
    # Both stages failed: the original graph is kept, the first extraction's
    # status records the terminal rejection.
    assert optimized is graph
    assert returned is extraction
    assert returned.status == "ilp_optimal_rejected_original_kept"


def test_healthy_extraction_passes_through(explored):
    optimizer, graph, egraph, root, cycle_filter = explored
    healthy = optimizer.extract(egraph, root, cycle_filter)
    optimized, returned = optimizer._materialize(graph, egraph, root, cycle_filter, healthy)
    assert returned is healthy
    assert "rejected" not in returned.status


def test_end_to_end_optimize_survives_bad_primary_extraction(shared_matmul_graph, monkeypatch):
    """The full pipeline stays correct when the primary extraction is rejected."""
    optimizer = TensatOptimizer(config=CONFIG)
    monkeypatch.setattr(
        TensatOptimizer, "extract", lambda self, egraph, root, cycle_filter: _bad_extraction()
    )
    result = optimizer.optimize(shared_matmul_graph)
    assert result.stats.extraction_status.startswith("ilp_optimal_rejected")
    # Whatever fallback stage won, the output must be a valid graph no more
    # expensive than the input.
    assert result.optimized_cost <= result.original_cost + 1e-9
