"""Regression tests for the materialization fallback chain.

An extraction can select a term that fails shape inference when rebuilt into
a concrete graph (mixed split locations in one e-class; see
:func:`repro.core.session.materialize_extraction`).  The safe response is
staged: reject the candidate and re-extract greedily, and if that also
fails, keep the original graph.  These tests drive each stage directly.
The effective status is *returned* alongside the result -- the passed-in
:class:`ExtractionResult` is never mutated in place.
"""

from __future__ import annotations

import pytest

import repro.core.session as session_module
from repro.core.config import TensatConfig
from repro.core.optimizer import TensatOptimizer
from repro.core.session import OptimizationSession, materialize_extraction
from repro.costs import AnalyticCostModel
from repro.egraph.extraction.base import ExtractionResult
from repro.egraph.language import RecExpr

CONFIG = TensatConfig.fast()

#: A term whose matmul inner dimensions disagree: converting it back to a
#: TensorGraph raises ShapeError.
BAD_EXPR = RecExpr.parse('(matmul 0 (input "x@8 64") (weight "w@7 5"))')


@pytest.fixture
def explored(shared_matmul_graph):
    session = OptimizationSession(shared_matmul_graph, config=CONFIG)
    session.explore()
    return session


def _bad_extraction() -> ExtractionResult:
    return ExtractionResult(expr=BAD_EXPR, cost=1.0, status="ilp_optimal")


def test_rejected_ilp_falls_back_to_greedy(explored):
    session = explored
    bad = _bad_extraction()
    optimized, extraction, status = materialize_extraction(
        session.graph, session.egraph, session.root, session.cycle_filter, bad, session.cost_model
    )
    # The greedy re-extraction succeeds; the provenance lives in the returned
    # status, and neither ExtractionResult was mutated to carry it.
    assert status == "ilp_optimal_rejected_greedy_fallback"
    assert bad.status == "ilp_optimal"
    assert extraction is not bad
    assert "rejected" not in extraction.status
    assert optimized is not session.graph
    assert optimized.name == f"{session.graph.name}-optimized"


def test_rejected_greedy_keeps_original(explored, monkeypatch):
    session = explored

    class AlwaysBadGreedy:
        def __init__(self, *args, **kwargs):
            pass

        def extract(self, egraph, root):
            return _bad_extraction()

    monkeypatch.setattr(session_module, "GreedyExtractor", AlwaysBadGreedy)
    bad = _bad_extraction()
    optimized, returned, status = materialize_extraction(
        session.graph, session.egraph, session.root, session.cycle_filter, bad, session.cost_model
    )
    # Both stages failed: the original graph is kept, the terminal rejection
    # is recorded in the returned status, and the extraction is untouched.
    assert optimized is session.graph
    assert returned is bad
    assert returned.status == "ilp_optimal"
    assert status == "ilp_optimal_rejected_original_kept"


def test_healthy_extraction_passes_through(explored):
    session = explored
    healthy = session.extract()
    optimized, returned, status = materialize_extraction(
        session.graph, session.egraph, session.root, session.cycle_filter, healthy, session.cost_model
    )
    assert returned is healthy
    assert status == healthy.status
    assert "rejected" not in status


def test_end_to_end_optimize_survives_bad_primary_extraction(shared_matmul_graph, monkeypatch):
    """The full pipeline stays correct when the primary extraction is rejected."""

    def bad_extract(self):
        if self.extraction is None:
            self.extraction = _bad_extraction()
            self.extraction_status = self.extraction.status
        return self.extraction

    monkeypatch.setattr(OptimizationSession, "extract", bad_extract)
    result = TensatOptimizer(config=CONFIG).optimize(shared_matmul_graph)
    assert result.stats.extraction_status.startswith("ilp_optimal_rejected")
    # Whatever fallback stage won, the output must be a valid graph no more
    # expensive than the input.
    assert result.optimized_cost <= result.original_cost + 1e-9


def test_regression_guard_records_status(shared_matmul_graph):
    """A cost-model regression on the materialized graph keeps the original
    and records the guard in the extraction status (it is never silent)."""

    class InflatingCostModel(AnalyticCostModel):
        # The materialized candidate is always named "<input>-optimized", so
        # inflating its graph cost forces the guard while extraction itself
        # (which uses the per-node cost function) behaves normally.
        def graph_cost(self, graph):
            cost = super().graph_cost(graph)
            if graph.name.endswith("-optimized"):
                return cost * 100.0
            return cost

    result = TensatOptimizer(cost_model=InflatingCostModel(), config=CONFIG).optimize(
        shared_matmul_graph
    )
    assert result.optimized is result.original
    assert result.optimized_cost == result.original_cost
    assert result.stats.extraction_status.endswith("_regression_guard_original_kept")
    # The ExtractionResult itself is not rewritten by the guard.
    assert "regression_guard" not in result.extraction.status
