"""Tests for greedy extraction."""

import pytest

from repro.egraph.cycles import FilterList
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.language import ENode
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import Runner, RunnerLimits


def cost_table(table, default=1.0):
    return lambda enode, egraph: table.get(enode.op, default)


class TestGreedyExtraction:
    def test_extracts_original_term_without_rewrites(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        result = GreedyExtractor(cost_table({})).extract(eg, root)
        assert str(result.expr) == "(f (g a) b)"

    def test_picks_cheaper_alternative(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        result = GreedyExtractor(cost_table({"*": 5.0, "<<": 1.0}, default=0.0)).extract(eg, root)
        assert str(result.expr) == "(<< a 1)"
        assert result.cost == pytest.approx(1.0)

    def test_keeps_original_when_alternative_is_costlier(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        result = GreedyExtractor(cost_table({"*": 1.0, "<<": 5.0}, default=0.0)).extract(eg, root)
        assert str(result.expr) == "(* a 2)"

    def test_respects_filter_list(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)").run(eg)
        eg.rebuild()
        flist = FilterList()
        a = eg.add_term("a")
        one = eg.add_term("1")
        flist.add(eg, ENode("<<", (eg.find(a), eg.find(one))))
        result = GreedyExtractor(
            cost_table({"*": 5.0, "<<": 1.0}, default=0.0), filter_list=flist
        ).extract(eg, root)
        # The cheap shift node is filtered, so greedy must pick the multiply.
        assert str(result.expr) == "(* a 2)"

    def test_shared_subgraph_extracted_once(self):
        eg = EGraph()
        root = eg.add_term("(noop (f a) (f a))")
        result = GreedyExtractor(cost_table({}, default=1.0)).extract(eg, root)
        f_nodes = [n for n in result.expr.nodes if n.op == "f"]
        assert len(f_nodes) == 1

    def test_greedy_ignores_sharing_in_cost_decision(self):
        """The paper's motivating weakness (Section 5.1 / 6.5).

        Class R has two choices: an expensive standalone node, or a cheap pair
        of projections of a shared expensive node.  Because greedy sums
        subtree costs independently, it sees the shared node's cost twice and
        wrongly prefers the standalone option.
        """
        eg = EGraph()
        # Build: root = noop(p0(shared), p1(shared)); alternatives a0, a1.
        shared = eg.add_term("(shared x)")
        p0 = eg.add(ENode("p0", (shared,)))
        p1 = eg.add(ENode("p1", (shared,)))
        a0 = eg.add_term("(alt0 x)")
        a1 = eg.add_term("(alt1 x)")
        eg.union(p0, a0)
        eg.union(p1, a1)
        eg.rebuild()
        root = eg.add(ENode("noop", (eg.find(p0), eg.find(p1))))

        costs = {"shared": 10.0, "p0": 0.0, "p1": 0.0, "alt0": 7.0, "alt1": 7.0, "noop": 0.0, "x": 0.0}
        result = GreedyExtractor(cost_table(costs)).extract(eg, root)
        ops = set(result.expr.ops())
        # Greedy picks the two standalone alternatives (total 14) instead of the
        # globally better shared plan (total 10).
        assert "alt0" in ops and "alt1" in ops
        assert result.cost == pytest.approx(14.0)

    def test_missing_root_raises(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        flist = FilterList()
        a = eg.add_term("a")
        flist.add(eg, ENode("f", (eg.find(a),)))
        with pytest.raises(ValueError):
            GreedyExtractor(cost_table({}), filter_list=flist).extract(eg, root)

    def test_cost_is_dag_aware_in_report(self):
        eg = EGraph()
        root = eg.add_term("(noop (f a) (f a))")
        result = GreedyExtractor(cost_table({}, default=1.0)).extract(eg, root)
        # noop + f + a = 3 distinct nodes -> cost 3, not 5.
        assert result.cost == pytest.approx(3.0)
