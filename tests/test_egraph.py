"""Tests for the e-graph data structure (hash-consing, union, rebuild, analyses)."""

import pytest

from repro.egraph.analysis import ConstantFoldAnalysis, DepthAnalysis
from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode, RecExpr


class TestAdd:
    def test_add_leaf(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        assert eg.num_eclasses == 1
        assert eg.num_enodes == 1
        assert eg.find(a) == a

    def test_add_is_hash_consed(self):
        eg = EGraph()
        first = eg.add(ENode("a"))
        second = eg.add(ENode("a"))
        assert first == second
        assert eg.num_enodes == 1

    def test_add_compound(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        f = eg.add(ENode("f", (a, b)))
        assert eg.num_eclasses == 3
        assert eg.find(f) != eg.find(a)

    def test_add_expr(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) (g a))")
        assert eg.num_eclasses == 3  # a, (g a), (f _ _)
        assert eg.represents(root, RecExpr.parse("(f (g a) (g a))"))

    def test_lookup(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        assert eg.lookup(ENode("a")) == a
        assert eg.lookup(ENode("missing")) is None


class TestUnion:
    def test_union_merges_classes(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        eg.union(a, b)
        assert eg.equivalent(a, b)
        assert eg.num_eclasses == 1
        assert eg.num_enodes == 2

    def test_union_same_class_is_noop(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        before = eg.num_unions
        eg.union(a, a)
        assert eg.num_unions == before

    def test_congruence_closure_via_rebuild(self):
        # If a == b then f(a) == f(b) after rebuilding.
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        fa = eg.add(ENode("f", (a,)))
        fb = eg.add(ENode("f", (b,)))
        assert not eg.equivalent(fa, fb)
        eg.union(a, b)
        eg.rebuild()
        assert eg.equivalent(fa, fb)

    def test_congruence_propagates_upwards(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        fa = eg.add(ENode("f", (a,)))
        fb = eg.add(ENode("f", (b,)))
        gfa = eg.add(ENode("g", (fa,)))
        gfb = eg.add(ENode("g", (fb,)))
        eg.union(a, b)
        eg.rebuild()
        assert eg.equivalent(gfa, gfb)

    def test_rebuild_returns_extra_union_count(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        eg.add(ENode("f", (a,)))
        eg.add(ENode("f", (b,)))
        eg.union(a, b)
        assert eg.rebuild() == 1

    def test_is_clean(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        assert eg.is_clean()
        eg.union(a, b)
        assert not eg.is_clean()
        eg.rebuild()
        assert eg.is_clean()


class TestBirthStamps:
    def test_repair_inherits_stamp_without_burning_counter(self):
        # Regression: _repair used next() as an eagerly evaluated dict.get
        # default, so every repaired parent consumed a birth stamp even when
        # the canonical node inherited one -- making later stamps (and the
        # cycle filter's "newest node" choice) depend on rebuild order.
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        fa = eg.add(ENode("f", (a,)))
        eg.add(ENode("f", (b,)))
        eg.union(a, b)
        eg.rebuild()
        # The canonical repaired parent f(find(a)) inherits the stamp of one
        # of the original f-nodes instead of minting a new one.
        canonical = eg.canonicalize(ENode("f", (a,)))
        assert eg._node_birth[canonical] in (2, 3)  # stamps of f(a) / f(b)
        # The counter was not burned during the repair: the next added node
        # gets the next contiguous stamp.
        g = eg.add(ENode("g"))
        assert eg._node_birth[eg.canonicalize(ENode("g"))] == 4

    def test_node_birth_survives_chained_repairs(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        fa = eg.add(ENode("f", (a,)))
        fb = eg.add(ENode("f", (b,)))
        gfa = eg.add(ENode("g", (fa,)))
        eg.add(ENode("g", (fb,)))
        eg.union(a, b)
        eg.rebuild()
        assert eg.node_birth(ENode("g", (eg.find(fa),))) >= 0
        # All stamps are within the range the adds produced (6 nodes).
        assert all(stamp < 6 for stamp in eg._node_birth.values())


class TestEnodeCounter:
    def test_counter_tracks_repair_dedup(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        eg.add(ENode("f", (a,)))
        eg.add(ENode("f", (b,)))
        assert eg.num_enodes == 4
        eg.union(a, b)
        eg.rebuild()
        # f(a) and f(b) became one canonical node; a and b merged classes.
        assert eg.num_enodes == sum(len(c.nodes) for c in eg.classes()) == 3


class TestRepresents:
    def test_initial_term_is_represented(self):
        eg = EGraph()
        root = eg.add_term("(/ (* a 2) 2)")
        assert eg.represents(root, RecExpr.parse("(/ (* a 2) 2)"))

    def test_rewritten_term_becomes_represented(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        shifted = eg.add_term("(<< a 1)")
        assert not eg.represents(root, RecExpr.parse("(<< a 1)"))
        eg.union(root, shifted)
        eg.rebuild()
        assert eg.represents(root, RecExpr.parse("(<< a 1)"))
        assert eg.represents(root, RecExpr.parse("(* a 2)"))


class TestAnalyses:
    def test_depth_analysis(self):
        eg = EGraph(analysis=DepthAnalysis())
        root = eg.add_term("(f (g a))")
        assert eg.analysis_data(root) == 3

    def test_depth_analysis_merge_takes_min(self):
        eg = EGraph(analysis=DepthAnalysis())
        deep = eg.add_term("(f (g a))")
        shallow = eg.add_term("b")
        eg.union(deep, shallow)
        eg.rebuild()
        assert eg.analysis_data(deep) == 1

    def test_constant_folding(self):
        eg = EGraph(analysis=ConstantFoldAnalysis())
        root = eg.add_term("(+ (* 2 3) 4)")
        assert eg.analysis_data(root) == 10
        # modify() adds the folded constant into the class.
        assert eg.represents(root, RecExpr.parse("10"))

    def test_constant_folding_partial(self):
        eg = EGraph(analysis=ConstantFoldAnalysis())
        root = eg.add_term("(+ x 1)")
        assert eg.analysis_data(root) is None

    def test_rebuild_repairs_classes_created_by_reentrant_modify(self):
        # ConstantFoldAnalysis.modify re-enters the e-graph (add + union of
        # the folded constant) *while the rebuild's analysis wave is in
        # flight*.  The contract (repro.egraph.analysis module docstring):
        # everything created or merged by such reentrant hooks is itself
        # repaired before rebuild() returns.  Regression shape: unioning x
        # with 3 folds (+ x 2) to 5 during the wave, whose modify unions in
        # a fresh "5" class; the outer (* (+ x 2) 4) must still be folded
        # to 20 -- and its own modify's "20" class repaired -- in the same
        # rebuild call.
        eg = EGraph(analysis=ConstantFoldAnalysis())
        plus = eg.add_term("(+ x 2)")
        outer = eg.add_term("(* (+ x 2) 4)")
        assert eg.analysis_data(plus) is None
        assert eg.analysis_data(outer) is None

        eg.union(eg.add_term("x"), eg.add_term("3"))
        eg.rebuild()

        assert eg.analysis_data(eg.find(plus)) == 5
        assert eg.analysis_data(eg.find(outer)) == 20
        # modify's folded constants landed in the right classes.
        assert eg.represents(eg.find(plus), RecExpr.parse("5"))
        assert eg.represents(eg.find(outer), RecExpr.parse("20"))
        # Fixpoint: no class's data improves if we re-make its nodes now --
        # i.e. the rebuild did not drop any repair queued mid-wave.
        for eclass_id, node in eg.enodes():
            data = eg.analysis_data(eg.find(eclass_id))
            remade = eg.analysis.make(eg, eg.canonicalize(node))
            _, changed = eg.analysis.merge(data, remade)
            assert not changed, f"stale analysis data in class {eg.find(eclass_id)}"


class TestExportAndSummary:
    def test_to_dot_contains_classes(self):
        eg = EGraph()
        eg.add_term("(f a b)")
        dot = eg.to_dot()
        assert dot.startswith("digraph")
        assert "cluster_" in dot

    def test_summary_keys(self):
        eg = EGraph()
        eg.add_term("(f a b)")
        summary = eg.summary()
        assert summary == {"eclasses": 3, "enodes": 3, "unions": 0}

    def test_extract_any_returns_represented_term(self):
        eg = EGraph()
        root = eg.add_term("(f (g a))")
        expr = eg.extract_any(root)
        assert str(expr) == "(f (g a))"
