"""Tests for operator kinds and symbol mapping."""

import pytest

from repro.ir.ops import CONCAT_MAX_INPUTS, Activation, OpKind, Padding, op_symbol, symbol_to_op


class TestOpKind:
    def test_compute_classification(self):
        assert OpKind.MATMUL.is_compute
        assert OpKind.CONV.is_compute
        assert not OpKind.INPUT.is_compute
        assert not OpKind.NUM.is_compute
        assert not OpKind.NOOP.is_compute

    def test_literal_classification(self):
        assert OpKind.NUM.is_literal and OpKind.STR.is_literal
        assert not OpKind.RELU.is_literal

    def test_identifier_classification(self):
        assert OpKind.INPUT.is_identifier and OpKind.WEIGHT.is_identifier

    def test_activation_classification(self):
        assert OpKind.RELU.is_activation and OpKind.TANH.is_activation
        assert not OpKind.MATMUL.is_activation


class TestOpSymbol:
    def test_simple_ops(self):
        assert op_symbol(OpKind.MATMUL) == "matmul"
        assert op_symbol(OpKind.EWADD) == "ewadd"

    def test_literals_use_value(self):
        assert op_symbol(OpKind.NUM, value=3) == "3"
        assert op_symbol(OpKind.STR, value="0 1") == "0 1"

    def test_concat_symbol_includes_arity(self):
        assert op_symbol(OpKind.CONCAT, num_inputs=3) == "concat2"
        assert op_symbol(OpKind.CONCAT, num_inputs=5) == "concat4"

    def test_concat_without_arity_rejected(self):
        with pytest.raises(ValueError):
            op_symbol(OpKind.CONCAT)

    def test_concat_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            op_symbol(OpKind.CONCAT, num_inputs=CONCAT_MAX_INPUTS + 2)


class TestSymbolToOp:
    def test_roundtrip_operators(self):
        for op in OpKind:
            if op in (OpKind.NUM, OpKind.STR, OpKind.CONCAT):
                continue
            found, literal = symbol_to_op(op.value)
            assert found == op
            assert literal is None

    def test_concat_arities(self):
        for n in range(2, CONCAT_MAX_INPUTS + 1):
            found, _ = symbol_to_op(f"concat{n}")
            assert found == OpKind.CONCAT

    def test_integer_literal(self):
        op, value = symbol_to_op("42")
        assert op == OpKind.NUM and value == 42

    def test_string_literal(self):
        op, value = symbol_to_op("x@8 64")
        assert op == OpKind.STR and value == "x@8 64"


class TestStrictSymbolToOp:
    """Regression: unknown symbols used to be silently classified as STR
    literals everywhere; the strict path now raises instead."""

    def test_default_mode_keeps_unknown_as_str(self):
        op, value = symbol_to_op("matmull")  # typo'd operator
        assert op == OpKind.STR and value == "matmull"

    def test_strict_mode_raises_on_unknown_operator(self):
        from repro.ir.opspec import UnknownOperatorError

        with pytest.raises(UnknownOperatorError):
            symbol_to_op("matmull", strict=True)

    def test_strict_mode_accepts_genuine_literals(self):
        # Identifier payloads and integer-token strings are real string
        # literals, not misspelled operators, even under strict.
        assert symbol_to_op("x@8 64", strict=True) == (OpKind.STR, "x@8 64")
        assert symbol_to_op("1 0", strict=True) == (OpKind.STR, "1 0")
        assert symbol_to_op("42", strict=True) == (OpKind.NUM, 42)

    def test_strict_mode_accepts_registered_operators(self):
        for op in OpKind:
            if op in (OpKind.NUM, OpKind.STR, OpKind.CONCAT):
                continue
            assert symbol_to_op(op.value, strict=True) == (op, None)


class TestEnums:
    def test_activation_values_match_taso_encoding(self):
        assert int(Activation.NONE) == 0
        assert int(Activation.RELU) == 1
        assert int(Activation.SIGMOID) == 2
        assert int(Activation.TANH) == 3

    def test_padding_values(self):
        assert int(Padding.SAME) == 0
        assert int(Padding.VALID) == 1
