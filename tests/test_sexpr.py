"""Tests for the S-expression reader/printer."""

import pytest

from repro import sexpr as sx


class TestParse:
    def test_atom(self):
        assert sx.parse("matmul") == "matmul"

    def test_integer_atom(self):
        assert sx.parse("42") == "42"

    def test_simple_list(self):
        assert sx.parse("(ewadd a b)") == ["ewadd", "a", "b"]

    def test_nested(self):
        assert sx.parse("(relu (matmul 0 x w))") == ["relu", ["matmul", "0", "x", "w"]]

    def test_quoted_string_atom(self):
        assert sx.parse('(input "x@8 64")') == ["input", "x@8 64"]

    def test_variables_preserved(self):
        assert sx.parse("(ewadd ?x ?y)") == ["ewadd", "?x", "?y"]

    def test_whitespace_insensitive(self):
        assert sx.parse("( ewadd   a\n  b )") == ["ewadd", "a", "b"]

    def test_comments_ignored(self):
        assert sx.parse("(ewadd a b) ; trailing comment") == ["ewadd", "a", "b"]

    def test_empty_input_raises(self):
        with pytest.raises(sx.SExprError):
            sx.parse("")

    def test_unbalanced_open_raises(self):
        with pytest.raises(sx.SExprError):
            sx.parse("(ewadd a b")

    def test_unbalanced_close_raises(self):
        with pytest.raises(sx.SExprError):
            sx.parse(")")

    def test_trailing_tokens_raise(self):
        with pytest.raises(sx.SExprError):
            sx.parse("(a b) extra")

    def test_unterminated_string_raises(self):
        with pytest.raises(sx.SExprError):
            sx.parse('(input "x@8')


class TestParseMany:
    def test_multiple_expressions(self):
        exprs = sx.parse_many("(a b) (c d) e")
        assert exprs == [["a", "b"], ["c", "d"], "e"]

    def test_empty(self):
        assert sx.parse_many("   ") == []


class TestToString:
    def test_roundtrip_simple(self):
        text = "(relu (matmul 0 x w))"
        assert sx.to_string(sx.parse(text)) == text

    def test_roundtrip_quoted(self):
        text = '(input "x@8 64")'
        assert sx.to_string(sx.parse(text)) == text

    def test_atom_with_space_gets_quoted(self):
        assert sx.to_string("a b") == '"a b"'

    def test_roundtrip_many(self):
        for text in ["a", "(f a)", "(f (g ?x) 1)", '(weight "w@3 3")']:
            assert sx.to_string(sx.parse(text)) == text


class TestIsVariable:
    def test_variable(self):
        assert sx.is_variable("?x")

    def test_not_variable(self):
        assert not sx.is_variable("x")

    def test_bare_question_mark(self):
        assert not sx.is_variable("?")

    def test_list_is_not_variable(self):
        assert not sx.is_variable(["?x"])
